//! Compiled predicate programs (DESIGN.md §4d).
//!
//! [`Database::eval_predicate_for`] re-interprets the predicate AST for
//! every candidate entity: it re-walks every map — including the
//! candidate-independent `Rhs::Constant` anchor images — once per atom per
//! candidate. [`PredicateProgram`] compiles a validated [`Predicate`] once
//! per query into a flat form that fixes all three per-candidate wastes:
//!
//! * **constant hoisting** — every `Rhs::Constant { anchors, map }` image
//!   is evaluated exactly once at compile time and stored; a constant-RHS
//!   atom drops from `O(|extent| · |anchors·map|)` to `O(|anchors·map|)`;
//! * **shared-map memoization** — distinct candidate-side maps (atom
//!   `lhs` and `Rhs::SelfMap` alike) are deduplicated into numbered slots;
//!   a per-candidate [`MemoTable`] walks each distinct map at most once
//!   per entity no matter how many atoms reference it;
//! * **short-circuit ordering** — within each clause, atoms are reordered
//!   by the optimizer's cost/selectivity estimate so DNF-AND clauses fail
//!   fast and CNF-OR clauses succeed fast. Only *infallible* atoms move:
//!   ordering-operator atoms (`<`, `≤`, `>`, `≥`) are the one comparison
//!   that can error (non-singleton / non-literal operands) and act as
//!   fixed barriers, which makes the reordering equivalence exact — for
//!   results *and* errors (see DESIGN.md §4d for the argument).
//!
//! Programs are shared by every evaluation consumer: the serial
//! [`crate::IndexService::evaluate`] residual filter, the parallel
//! evaluators in [`crate::parallel`], and [`crate::DerivedMaintainer`]'s
//! delta path. Staleness contract: slot and source images are evaluated
//! per candidate so they are always current; hoisted *identity*-map
//! constant images equal the anchor set stored in the predicate and can
//! never go stale; hoisted *mapped* constant images depend on attribute
//! values and must be re-hoisted via [`PredicateProgram::ensure_fresh`]
//! once the database's delta epoch has advanced.
//!
//! [`Database::eval_predicate_for`]: isis_core::Database::eval_predicate_for

use std::collections::HashMap;

use isis_core::{
    compare_single, AttrId, AttrRecord, ClassId, CoreError, Database, EntityId, Map, NormalForm,
    Operator, OrderedSet, Predicate, Result, Rhs, ValueClass, ValueRef,
};

use crate::optimizer::estimate_atom;
use crate::service::IndexService;

/// The right-hand side of one compiled atom.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CompiledRhs {
    /// A candidate-entity map slot (`Rhs::SelfMap`).
    SelfSlot(u32),
    /// A hoisted constant image (`Rhs::Constant`).
    Const(u32),
    /// A source-entity map slot (`Rhs::SourceMap`).
    Source(u32),
}

/// One atom, with its maps resolved to numbered slots.
#[derive(Debug, Clone)]
struct CompiledAtom {
    /// Candidate-map slot index of the left-hand side.
    lhs: u32,
    op: Operator,
    rhs: CompiledRhs,
}

/// A hoisted constant: the predicate's literal anchors, the map applied to
/// them, and the materialised image.
#[derive(Debug, Clone)]
struct ConstSlot {
    anchors: OrderedSet,
    map: Map,
    image: OrderedSet,
}

/// Candidates per inner batch: the streaming evaluator walks one column
/// per atom over runs of this many candidates, keeping the per-run index
/// scratch inside the cache while still amortising the per-atom setup.
pub const BATCH_ROWS: usize = 1024;

/// One streamable atom: a single-step candidate map over a non-naming,
/// Class-ranged attribute, compared against a hoisted constant image with
/// a non-ordering (hence infallible) operator. Everything the inner loop
/// needs is a column read plus a set compare.
#[derive(Debug, Clone, Copy)]
struct BatchAtom {
    attr: AttrId,
    op: Operator,
    const_idx: u32,
}

/// The batched form of a program whose every atom is streamable, plus the
/// parent class the program was compiled for (its extent bounds which
/// candidates are provably infallible — see [`PredicateProgram::eval_batch`]).
#[derive(Debug, Clone)]
struct BatchBody {
    parent: ClassId,
    clauses: Vec<Vec<BatchAtom>>,
}

/// Builds the batched form, or `None` if any atom is not streamable.
/// Streamability requires: constant rhs (hoisted image), non-ordering
/// operator, and a one-step lhs map whose attribute is non-naming and
/// Class-ranged — exactly the atoms whose scalar evaluation reduces to
/// "read the column cell, compare against a fixed set".
fn build_batch(
    db: &Database,
    parent: ClassId,
    clauses: &[Vec<CompiledAtom>],
    slots: &[Map],
) -> Option<BatchBody> {
    let mut out = Vec::with_capacity(clauses.len());
    for clause in clauses {
        let mut bc = Vec::with_capacity(clause.len());
        for atom in clause {
            let CompiledRhs::Const(ci) = atom.rhs else {
                return None;
            };
            if atom.op.op.is_ordering() {
                return None;
            }
            let steps = slots[atom.lhs as usize].steps();
            if steps.len() != 1 {
                return None;
            }
            let rec = db.attr(steps[0]).ok()?;
            if rec.naming || !matches!(rec.value_class, ValueClass::Class(_)) {
                return None;
            }
            bc.push(BatchAtom {
                attr: steps[0],
                op: atom.op,
                const_idx: ci,
            });
        }
        out.push(bc);
    }
    Some(BatchBody {
        parent,
        clauses: out,
    })
}

/// Evaluates one streamable atom for one candidate by reading the
/// attribute column directly. Exactly `eval_compiled_atom` for a member
/// of the atom's owner class: the column cell *is* `eval_map([e], lhs)`
/// (`None` ⇒ ∅, `Single(v)` ⇒ `{v}`, `Multi(s)` ⇒ `s`), and non-ordering
/// set compares cannot error.
fn stream_test(
    db: &Database,
    rec: &AttrRecord,
    e: EntityId,
    op: Operator,
    image: &OrderedSet,
) -> bool {
    let raw = match rec.values.get(e) {
        None => compare_single(EntityId::NULL, op.op, image),
        Some(ValueRef::Single(v)) => compare_single(v, op.op, image),
        Some(ValueRef::Multi(s)) => db.compare_sets(s, op.op, image).ok(),
    }
    .expect("streamable atoms use non-ordering operators");
    op.finish(raw)
}

/// A [`Predicate`] compiled for repeated evaluation over one parent class.
/// See the module docs for what compilation buys and when a program goes
/// stale.
#[derive(Debug, Clone)]
pub struct PredicateProgram {
    form: NormalForm,
    clauses: Vec<Vec<CompiledAtom>>,
    /// Deduplicated candidate-entity maps (atom lhs and self-map rhs).
    slots: Vec<Map>,
    /// Deduplicated source-entity maps.
    source_slots: Vec<Map>,
    /// Hoisted constant images.
    consts: Vec<ConstSlot>,
    /// Delta epoch the constant images were hoisted at.
    hoist_epoch: u64,
    /// Whether any hoisted constant applies a non-identity map (only those
    /// images can go stale under data changes).
    mapped_consts: bool,
    /// The batched (column-streaming) form, when every atom qualifies.
    batch: Option<BatchBody>,
}

fn intern(slots: &mut Vec<Map>, ids: &mut HashMap<Map, u32>, map: &Map) -> u32 {
    if let Some(&i) = ids.get(map) {
        return i;
    }
    let i = slots.len() as u32;
    slots.push(map.clone());
    ids.insert(map.clone(), i);
    i
}

/// Reorders a clause's atoms by the optimizer's short-circuit sort key,
/// permuting only runs of infallible atoms between ordering-op barriers
/// (the sort is stable, so ties keep source order).
fn reorder_clause<'a>(
    db: &Database,
    parent: ClassId,
    form: NormalForm,
    atoms: &'a [isis_core::Atom],
    indexes: Option<&IndexService>,
) -> Vec<&'a isis_core::Atom> {
    fn flush<'a>(run: &mut Vec<(&'a isis_core::Atom, f64)>, out: &mut Vec<&'a isis_core::Atom>) {
        run.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        out.extend(run.drain(..).map(|(a, _)| a));
    }
    let mut out = Vec::with_capacity(atoms.len());
    let mut run: Vec<(&isis_core::Atom, f64)> = Vec::new();
    for atom in atoms {
        if atom.op.op.is_ordering() {
            // Fallible barrier: keep its position relative to its run.
            flush(&mut run, &mut out);
            out.push(atom);
        } else {
            let e = estimate_atom(db, parent, atom, indexes);
            let key = match form {
                // AND clause: fail fast — most selective per unit cost.
                NormalForm::Dnf => e.selectivity * e.cost + e.cost * 0.01,
                // OR clause: succeed fast — most probable per unit cost.
                NormalForm::Cnf => (1.0 - e.selectivity) * e.cost + e.cost * 0.01,
            };
            run.push((atom, key));
        }
    }
    flush(&mut run, &mut out);
    out
}

impl PredicateProgram {
    /// Compiles `pred` for candidates drawn from `parent` (validating it
    /// first), without index statistics or source-entity support.
    pub fn compile(db: &Database, parent: ClassId, pred: &Predicate) -> Result<PredicateProgram> {
        Self::compile_with(db, parent, None, pred, None)
    }

    /// Compiles `pred` for candidates drawn from `parent`. Source-entity
    /// atoms are allowed iff `source_class` is given (derived-attribute
    /// predicates); `indexes` sharpens the reordering's selectivity
    /// estimates when available.
    pub fn compile_with(
        db: &Database,
        parent: ClassId,
        source_class: Option<ClassId>,
        pred: &Predicate,
        indexes: Option<&IndexService>,
    ) -> Result<PredicateProgram> {
        db.validate_predicate(parent, source_class, pred)?;
        let mut slots: Vec<Map> = Vec::new();
        let mut slot_ids: HashMap<Map, u32> = HashMap::new();
        let mut source_slots: Vec<Map> = Vec::new();
        let mut source_ids: HashMap<Map, u32> = HashMap::new();
        let mut consts: Vec<ConstSlot> = Vec::new();
        let mut clauses = Vec::with_capacity(pred.clauses.len());
        for clause in &pred.clauses {
            let ordered = reorder_clause(db, parent, pred.form, &clause.atoms, indexes);
            let mut compiled = Vec::with_capacity(ordered.len());
            for atom in ordered {
                let lhs = intern(&mut slots, &mut slot_ids, &atom.lhs);
                let rhs = match &atom.rhs {
                    Rhs::SelfMap(m) => CompiledRhs::SelfSlot(intern(&mut slots, &mut slot_ids, m)),
                    Rhs::SourceMap(m) => {
                        CompiledRhs::Source(intern(&mut source_slots, &mut source_ids, m))
                    }
                    Rhs::Constant { anchors, map, .. } => {
                        // Constants are few per predicate; linear dedup.
                        let i = consts
                            .iter()
                            .position(|c| {
                                c.map == *map && c.anchors.as_slice() == anchors.as_slice()
                            })
                            .unwrap_or_else(|| {
                                consts.push(ConstSlot {
                                    anchors: anchors.clone(),
                                    map: map.clone(),
                                    image: OrderedSet::new(),
                                });
                                consts.len() - 1
                            });
                        CompiledRhs::Const(i as u32)
                    }
                };
                compiled.push(CompiledAtom {
                    lhs,
                    op: atom.op,
                    rhs,
                });
            }
            clauses.push(compiled);
        }
        let mapped_consts = consts.iter().any(|c| !c.map.is_identity());
        let batch = build_batch(db, parent, &clauses, &slots);
        let mut prog = PredicateProgram {
            form: pred.form,
            clauses,
            slots,
            source_slots,
            consts,
            hoist_epoch: 0,
            mapped_consts,
            batch,
        };
        prog.hoist(db)?;
        isis_obs::global().count("query.program.compiles", 1);
        Ok(prog)
    }

    /// (Re)materialises every hoisted constant image from `db`.
    fn hoist(&mut self, db: &Database) -> Result<()> {
        for c in &mut self.consts {
            c.image = if c.map.is_identity() {
                c.anchors.clone()
            } else {
                db.eval_map(c.anchors.iter(), &c.map)?
            };
        }
        self.hoist_epoch = db.delta_epoch();
        Ok(())
    }

    /// Re-hoists mapped constant images when the database's delta epoch has
    /// advanced past the one they were hoisted at. Identity-map constants
    /// equal the anchor set stored in the predicate and never go stale, so
    /// a program without mapped constants refreshes for free. Long-lived
    /// holders (the delta-maintenance path) must call this before reuse;
    /// per-query compilation sidesteps it.
    pub fn ensure_fresh(&mut self, db: &Database) -> Result<()> {
        if self.mapped_consts && db.delta_epoch() != self.hoist_epoch {
            isis_obs::global().count("query.program.rehoists", 1);
            self.hoist(db)?;
        } else {
            self.hoist_epoch = db.delta_epoch();
        }
        Ok(())
    }

    /// The number of deduplicated candidate-map slots.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// The number of hoisted constant images.
    pub fn const_count(&self) -> usize {
        self.consts.len()
    }

    /// `true` when some hoisted constant applies a non-identity map (the
    /// only images [`PredicateProgram::ensure_fresh`] ever recomputes).
    pub fn has_mapped_consts(&self) -> bool {
        self.mapped_consts
    }

    fn ensure_slot(&self, db: &Database, e: EntityId, memo: &mut MemoTable, i: u32) -> Result<()> {
        let slot = &mut memo.slots[i as usize];
        if slot.is_some() {
            memo.hits += 1;
        } else {
            memo.misses += 1;
            *slot = Some(db.eval_map([e], &self.slots[i as usize])?);
        }
        Ok(())
    }

    fn ensure_source_slot(
        &self,
        db: &Database,
        x: EntityId,
        memo: &mut MemoTable,
        i: u32,
    ) -> Result<()> {
        let slot = &mut memo.source_slots[i as usize];
        if slot.is_some() {
            memo.hits += 1;
        } else {
            memo.misses += 1;
            *slot = Some(db.eval_map([x], &self.source_slots[i as usize])?);
        }
        Ok(())
    }

    fn eval_compiled_atom(
        &self,
        db: &Database,
        e: EntityId,
        source: Option<EntityId>,
        memo: &mut MemoTable,
        atom: &CompiledAtom,
    ) -> Result<bool> {
        self.ensure_slot(db, e, memo, atom.lhs)?;
        let rhs: &OrderedSet = match atom.rhs {
            CompiledRhs::Const(i) => &self.consts[i as usize].image,
            CompiledRhs::SelfSlot(i) => {
                self.ensure_slot(db, e, memo, i)?;
                memo.slots[i as usize].as_ref().expect("slot just filled")
            }
            CompiledRhs::Source(i) => {
                let x = source.ok_or_else(|| {
                    CoreError::Inconsistent(
                        "atom references the source entity x outside a derived-attribute predicate"
                            .into(),
                    )
                })?;
                self.ensure_source_slot(db, x, memo, i)?;
                memo.source_slots[i as usize]
                    .as_ref()
                    .expect("slot just filled")
            }
        };
        let lhs = memo.slots[atom.lhs as usize]
            .as_ref()
            .expect("lhs slot filled above");
        db.eval_prepared_atom(lhs, atom.op, rhs)
    }

    /// Evaluates the program for candidate `e` (with optional source `x`),
    /// honouring the DNF/CNF short-circuit semantics. Identical in results
    /// *and* errors to [`Database::eval_predicate_for`] on the predicate
    /// the program was compiled from.
    ///
    /// [`Database::eval_predicate_for`]: isis_core::Database::eval_predicate_for
    pub fn eval_for(
        &self,
        db: &Database,
        e: EntityId,
        source: Option<EntityId>,
        memo: &mut MemoTable,
    ) -> Result<bool> {
        memo.begin_candidate(source);
        match self.form {
            NormalForm::Dnf => {
                // OR of clauses; each clause an AND of atoms.
                for clause in &self.clauses {
                    let mut all = true;
                    for atom in clause {
                        if !self.eval_compiled_atom(db, e, source, memo, atom)? {
                            all = false;
                            break;
                        }
                    }
                    if all {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
            NormalForm::Cnf => {
                // AND of clauses; each clause an OR of atoms.
                for clause in &self.clauses {
                    let mut any = false;
                    for atom in clause {
                        if self.eval_compiled_atom(db, e, source, memo, atom)? {
                            any = true;
                            break;
                        }
                    }
                    if !any {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
        }
    }

    /// Serial driver: evaluates the program over the whole extent of the
    /// class it was compiled for, preserving extent order. Equivalent to
    /// [`Database::evaluate_derived_members`].
    ///
    /// [`Database::evaluate_derived_members`]: isis_core::Database::evaluate_derived_members
    pub fn evaluate_extent(&self, db: &Database, parent: ClassId) -> Result<OrderedSet> {
        let mut memo = MemoTable::new(self);
        let mut out = OrderedSet::new();
        for e in db.members(parent)?.iter().collect::<Vec<_>>() {
            if self.eval_for(db, e, None, &mut memo)? {
                out.insert(e);
            }
        }
        memo.flush_obs();
        Ok(out)
    }

    /// `true` when every atom of every clause is streamable, i.e.
    /// [`PredicateProgram::eval_batch`] will take the column-streaming
    /// path rather than falling back to the per-candidate interpreter.
    pub fn batch_compatible(&self) -> bool {
        self.batch.is_some()
    }

    /// The per-candidate scalar loop — the semantics every other driver is
    /// measured against.
    fn eval_scalar(
        &self,
        db: &Database,
        candidates: &[EntityId],
        source: Option<EntityId>,
        memo: &mut MemoTable,
        out: &mut Vec<EntityId>,
    ) -> Result<()> {
        for &e in candidates {
            if self.eval_for(db, e, source, memo)? {
                out.push(e);
            }
        }
        Ok(())
    }

    /// Evaluates the program over `candidates` (in order), streaming
    /// attribute columns in runs of [`BATCH_ROWS`] when the program is
    /// batch-compatible and falling back to the scalar loop otherwise.
    ///
    /// Exactness contract — results, order, *and* errors are identical to
    /// the scalar loop:
    ///
    /// * every streamed atom's attribute owner is an ancestor of the
    ///   compiled parent class (predicate validation), so
    ///   `members(parent) ⊆ members(owner)` and a candidate that is a
    ///   member of the parent cannot hit the scalar path's `NotAMember`
    ///   error; non-ordering set compares are infallible; hence batched
    ///   runs over member candidates cannot error at all;
    /// * any run containing a non-member candidate — or any evaluation
    ///   where the parent class or a streamed attribute has since died —
    ///   is handed to the scalar loop wholesale, in candidate order, so
    ///   the first failing candidate surfaces the scalar error.
    pub fn eval_batch(
        &self,
        db: &Database,
        candidates: &[EntityId],
        source: Option<EntityId>,
        memo: &mut MemoTable,
    ) -> Result<Vec<EntityId>> {
        let mut out = Vec::new();
        let Some(batch) = &self.batch else {
            self.eval_scalar(db, candidates, source, memo, &mut out)?;
            return Ok(out);
        };
        let members = match db.class(batch.parent) {
            Ok(c) => &c.members,
            Err(_) => {
                self.eval_scalar(db, candidates, source, memo, &mut out)?;
                return Ok(out);
            }
        };
        if batch
            .clauses
            .iter()
            .flatten()
            .any(|a| db.attr(a.attr).is_err())
        {
            self.eval_scalar(db, candidates, source, memo, &mut out)?;
            return Ok(out);
        }
        for chunk in candidates.chunks(BATCH_ROWS) {
            if chunk.iter().any(|&e| !members.contains(e)) {
                self.eval_scalar(db, chunk, source, memo, &mut out)?;
                continue;
            }
            // Pure column path: provably infallible for member candidates.
            let decided = match self.form {
                NormalForm::Dnf => {
                    let mut accepted = vec![false; chunk.len()];
                    let mut undecided: Vec<usize> = (0..chunk.len()).collect();
                    for clause in &batch.clauses {
                        let mut retain = undecided.clone();
                        for a in clause {
                            if retain.is_empty() {
                                break;
                            }
                            let rec = db.attr(a.attr).expect("streamed attr checked above");
                            let image = &self.consts[a.const_idx as usize].image;
                            retain.retain(|&i| stream_test(db, rec, chunk[i], a.op, image));
                        }
                        for &i in &retain {
                            accepted[i] = true;
                        }
                        undecided.retain(|i| !accepted[*i]);
                        if undecided.is_empty() {
                            break;
                        }
                    }
                    accepted
                }
                NormalForm::Cnf => {
                    let mut alive: Vec<usize> = (0..chunk.len()).collect();
                    for clause in &batch.clauses {
                        if alive.is_empty() {
                            break;
                        }
                        let mut satisfied = vec![false; chunk.len()];
                        let mut pending = alive.clone();
                        for a in clause {
                            if pending.is_empty() {
                                break;
                            }
                            let rec = db.attr(a.attr).expect("streamed attr checked above");
                            let image = &self.consts[a.const_idx as usize].image;
                            pending.retain(|&i| {
                                if stream_test(db, rec, chunk[i], a.op, image) {
                                    satisfied[i] = true;
                                    false
                                } else {
                                    true
                                }
                            });
                        }
                        alive.retain(|&i| satisfied[i]);
                    }
                    let mut accepted = vec![false; chunk.len()];
                    for &i in &alive {
                        accepted[i] = true;
                    }
                    accepted
                }
            };
            for (i, &e) in chunk.iter().enumerate() {
                if decided[i] {
                    out.push(e);
                }
            }
        }
        Ok(out)
    }
}

/// Per-candidate memoisation scratch for one [`PredicateProgram`]: each
/// distinct candidate map is walked at most once per entity, and source
/// images are reused across candidates while the source is unchanged.
/// Reusable across candidates and queries against the same program.
#[derive(Debug, Clone)]
pub struct MemoTable {
    slots: Vec<Option<OrderedSet>>,
    source_slots: Vec<Option<OrderedSet>>,
    source_for: Option<EntityId>,
    hits: u64,
    misses: u64,
}

impl MemoTable {
    /// A memo table sized for `prog`'s slots.
    pub fn new(prog: &PredicateProgram) -> MemoTable {
        MemoTable {
            slots: vec![None; prog.slots.len()],
            source_slots: vec![None; prog.source_slots.len()],
            source_for: None,
            hits: 0,
            misses: 0,
        }
    }

    fn begin_candidate(&mut self, source: Option<EntityId>) {
        for s in &mut self.slots {
            *s = None;
        }
        if self.source_for != source {
            for s in &mut self.source_slots {
                *s = None;
            }
            self.source_for = source;
        }
    }

    /// Slot lookups answered from the memo since construction / last flush.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Slot lookups that had to walk the map.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Publishes the accumulated hit/miss counts to the process-wide
    /// [`isis_obs`] registry (`query.program.memo_hits` / `.memo_misses`)
    /// and zeroes them. One call per evaluation run keeps the hot loop free
    /// of registry traffic.
    pub fn flush_obs(&mut self) {
        let obs = isis_obs::global();
        if obs.enabled() {
            obs.count("query.program.memo_hits", self.hits);
            obs.count("query.program.memo_misses", self.misses);
        }
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isis_core::{Atom, BaseKind, Clause, CompareOp, Multiplicity};
    use isis_sample::{instrumental_music, quartets_predicate};

    #[test]
    fn compiled_matches_interpreted_on_the_quartets_query() {
        let mut im = instrumental_music().unwrap();
        let pred = quartets_predicate(&mut im);
        let want = im
            .db
            .evaluate_derived_members(im.music_groups, &pred)
            .unwrap();
        let prog = PredicateProgram::compile(&im.db, im.music_groups, &pred).unwrap();
        let got = prog.evaluate_extent(&im.db, im.music_groups).unwrap();
        assert_eq!(got.as_slice(), want.as_slice());
    }

    #[test]
    fn shared_lhs_maps_are_memoised() {
        let mut im = instrumental_music().unwrap();
        let four = im.db.int(4);
        let two = im.db.int(2);
        let ints = im.db.predefined(BaseKind::Integers);
        // Two atoms over the same lhs map → one slot, memo hits > 0.
        let a = Atom::new(
            isis_core::Map::single(im.size),
            CompareOp::SetEq,
            Rhs::constant(ints, [four]),
        );
        let b = Atom::new(
            isis_core::Map::single(im.size),
            CompareOp::SetEq,
            Rhs::constant(ints, [two]),
        );
        let pred = Predicate::cnf(vec![Clause::new(vec![a, b])]);
        let prog = PredicateProgram::compile(&im.db, im.music_groups, &pred).unwrap();
        assert_eq!(prog.slot_count(), 1);
        assert_eq!(prog.const_count(), 2);
        let mut memo = MemoTable::new(&prog);
        let mut hits = 0;
        for e in im.db.members(im.music_groups).unwrap().iter() {
            let want = im.db.eval_predicate_for(e, &pred, None).unwrap();
            let got = prog.eval_for(&im.db, e, None, &mut memo).unwrap();
            assert_eq!(got, want);
            hits = memo.hits();
        }
        assert!(hits > 0, "second atom must reuse the memoised size image");
    }

    #[test]
    fn mapped_constants_rehoist_on_ensure_fresh() {
        let mut im = instrumental_music().unwrap();
        // Instruments in the same family as the flute — a mapped constant.
        let atom = Atom::new(
            isis_core::Map::single(im.family),
            CompareOp::SetEq,
            Rhs::Constant {
                class: im.instruments,
                anchors: [im.flute].into_iter().collect(),
                map: isis_core::Map::single(im.family),
            },
        );
        let pred = Predicate::dnf(vec![Clause::new(vec![atom])]);
        let mut prog = PredicateProgram::compile(&im.db, im.instruments, &pred).unwrap();
        assert!(prog.has_mapped_consts());
        let before = prog.evaluate_extent(&im.db, im.instruments).unwrap();
        assert_eq!(
            before.as_slice(),
            im.db
                .evaluate_derived_members(im.instruments, &pred)
                .unwrap()
                .as_slice()
        );
        // The seed mis-files the flute under brass; the §4.2 correction
        // moves it to woodwind, leaving the hoisted image stale until
        // ensure_fresh re-hoists it.
        im.db
            .assign_single(im.flute, im.family, im.woodwind)
            .unwrap();
        prog.ensure_fresh(&im.db).unwrap();
        let after = prog.evaluate_extent(&im.db, im.instruments).unwrap();
        assert_eq!(
            after.as_slice(),
            im.db
                .evaluate_derived_members(im.instruments, &pred)
                .unwrap()
                .as_slice()
        );
        assert_ne!(before.as_slice(), after.as_slice());
    }

    #[test]
    fn ordering_atoms_error_identically_and_stay_barriers() {
        let mut im = instrumental_music().unwrap();
        let one = im.db.int(1);
        let ints = im.db.predefined(BaseKind::Integers);
        // plays < {1} errors on any musician with a non-singleton or
        // non-literal plays image; an expensive infallible atom placed
        // before it must not be hoisted past the barrier in a way that
        // changes which side of the barrier short-circuits.
        let fallible = Atom::new(
            isis_core::Map::single(im.plays),
            CompareOp::Lt,
            Rhs::constant(ints, [one]),
        );
        let cheap_true = Atom::new(
            isis_core::Map::identity(),
            CompareOp::SetEq,
            Rhs::SelfMap(isis_core::Map::identity()),
        );
        let pred = Predicate::dnf(vec![Clause::new(vec![fallible, cheap_true])]);
        let prog = PredicateProgram::compile(&im.db, im.musicians, &pred).unwrap();
        let mut memo = MemoTable::new(&prog);
        for e in im.db.members(im.musicians).unwrap().iter() {
            let want = im.db.eval_predicate_for(e, &pred, None);
            let got = prog.eval_for(&im.db, e, None, &mut memo);
            match (want, got) {
                (Ok(a), Ok(b)) => assert_eq!(a, b),
                (Err(_), Err(_)) => {}
                (a, b) => panic!("divergent fallibility: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn batch_compatibility_is_detected_per_atom_shape() {
        let mut im = instrumental_music().unwrap();
        let four = im.db.int(4);
        let ints = im.db.predefined(BaseKind::Integers);
        // size = {4}: single-step lhs, constant rhs, non-ordering → batch.
        let streamable = Atom::new(
            isis_core::Map::single(im.size),
            CompareOp::SetEq,
            Rhs::constant(ints, [four]),
        );
        let pred = Predicate::dnf(vec![Clause::new(vec![streamable.clone()])]);
        let prog = PredicateProgram::compile(&im.db, im.music_groups, &pred).unwrap();
        assert!(prog.batch_compatible());
        // An ordering operator forces the scalar interpreter.
        let ordering = Atom::new(
            isis_core::Map::single(im.size),
            CompareOp::Lt,
            Rhs::constant(ints, [four]),
        );
        let pred = Predicate::dnf(vec![Clause::new(vec![ordering])]);
        let prog = PredicateProgram::compile(&im.db, im.music_groups, &pred).unwrap();
        assert!(!prog.batch_compatible());
        // A self-map rhs is candidate-dependent: not streamable.
        let self_rhs = Atom::new(
            isis_core::Map::single(im.size),
            CompareOp::SetEq,
            Rhs::SelfMap(isis_core::Map::single(im.size)),
        );
        let pred = Predicate::dnf(vec![Clause::new(vec![self_rhs])]);
        let prog = PredicateProgram::compile(&im.db, im.music_groups, &pred).unwrap();
        assert!(!prog.batch_compatible());
        // A two-step lhs map walks the network: not streamable.
        let two_step = Atom::new(
            isis_core::Map::new(vec![im.plays, im.family]),
            CompareOp::Match,
            Rhs::constant(im.families, [im.brass]),
        );
        let pred = Predicate::dnf(vec![Clause::new(vec![two_step])]);
        let prog = PredicateProgram::compile(&im.db, im.musicians, &pred).unwrap();
        assert!(!prog.batch_compatible());
    }

    #[test]
    fn batch_matches_scalar_on_every_member_subset() {
        let mut im = instrumental_music().unwrap();
        // Two clauses mixing a single-valued column (size) with a
        // multivalued one (members): DNF of
        // `{ members ∋ edith ∧ size = 4 }` ∨ `{ size = 2 }`.
        let four = im.db.int(4);
        let two = im.db.int(2);
        let ints = im.db.predefined(BaseKind::Integers);
        let pred = Predicate::dnf(vec![
            Clause::new(vec![
                Atom::new(
                    isis_core::Map::single(im.members),
                    CompareOp::Match,
                    Rhs::constant(im.musicians, [im.edith]),
                ),
                Atom::new(
                    isis_core::Map::single(im.size),
                    CompareOp::SetEq,
                    Rhs::constant(ints, [four]),
                ),
            ]),
            Clause::new(vec![Atom::new(
                isis_core::Map::single(im.size),
                CompareOp::SetEq,
                Rhs::constant(ints, [two]),
            )]),
        ]);
        let prog = PredicateProgram::compile(&im.db, im.music_groups, &pred).unwrap();
        assert!(prog.batch_compatible(), "single-step constant atoms stream");
        let members: Vec<EntityId> = im.db.members(im.music_groups).unwrap().iter().collect();
        // Whole extent, a strict prefix, and a strided subset must all
        // agree with the scalar loop, element for element, in order.
        let subsets: Vec<Vec<EntityId>> = vec![
            members.clone(),
            members[..members.len() / 2].to_vec(),
            members.iter().copied().step_by(2).collect(),
        ];
        for cands in subsets {
            let mut memo = MemoTable::new(&prog);
            let batch = prog.eval_batch(&im.db, &cands, None, &mut memo).unwrap();
            let mut scalar = Vec::new();
            for &e in &cands {
                if prog.eval_for(&im.db, e, None, &mut memo).unwrap() {
                    scalar.push(e);
                }
            }
            assert_eq!(batch, scalar);
        }
    }

    #[test]
    fn batch_surfaces_the_scalar_error_for_rogue_candidates() {
        let mut im = instrumental_music().unwrap();
        let four = im.db.int(4);
        let ints = im.db.predefined(BaseKind::Integers);
        let pred = Predicate::dnf(vec![Clause::new(vec![Atom::new(
            isis_core::Map::single(im.size),
            CompareOp::SetEq,
            Rhs::constant(ints, [four]),
        )])]);
        let prog = PredicateProgram::compile(&im.db, im.music_groups, &pred).unwrap();
        assert!(prog.batch_compatible());
        // A musician is not a member of music_groups: the scalar loop
        // errors NotAMember on it, and the batch path must surface the
        // identical error (not silently drop the candidate).
        let rogue = im.edith;
        let mut cands: Vec<EntityId> = im.db.members(im.music_groups).unwrap().iter().collect();
        cands.push(rogue);
        let mut memo = MemoTable::new(&prog);
        let want = (|| -> Result<Vec<EntityId>> {
            let mut out = Vec::new();
            for &e in &cands {
                if prog.eval_for(&im.db, e, None, &mut memo)? {
                    out.push(e);
                }
            }
            Ok(out)
        })();
        let got = prog.eval_batch(&im.db, &cands, None, &mut memo);
        match (want, got) {
            (Err(a), Err(b)) => assert_eq!(a, b, "identical error"),
            (a, b) => panic!("both paths must fail identically: {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn source_atoms_evaluate_against_the_source_entity() {
        let mut im = instrumental_music().unwrap();
        let colleagues = im
            .db
            .create_attribute(im.musicians, "similar", im.musicians, Multiplicity::Multi)
            .unwrap();
        let _ = colleagues;
        let atom = Atom::new(
            isis_core::Map::single(im.plays),
            CompareOp::Match,
            Rhs::SourceMap(isis_core::Map::single(im.plays)),
        );
        let pred = Predicate::dnf(vec![Clause::new(vec![atom])]);
        let prog =
            PredicateProgram::compile_with(&im.db, im.musicians, Some(im.musicians), &pred, None)
                .unwrap();
        let mut memo = MemoTable::new(&prog);
        let members: Vec<EntityId> = im.db.members(im.musicians).unwrap().iter().collect();
        for &x in &members {
            for &e in &members {
                let want = im.db.eval_predicate_for(e, &pred, Some(x)).unwrap();
                let got = prog.eval_for(&im.db, e, Some(x), &mut memo).unwrap();
                assert_eq!(got, want, "e={e:?} x={x:?}");
            }
        }
        // Evaluating a source atom without a source errors, as interpreted.
        assert!(prog.eval_for(&im.db, members[0], None, &mut memo).is_err());
    }
}
