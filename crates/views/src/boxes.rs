//! Shared box builders: the §3.2 graphical representation of classes and
//! groupings.
//!
//! "Classes have three parts: (1) a class name section, for baseclasses
//! this is in reverse video, (2) a characteristic fill pattern unique to
//! the class, … and (3) an attribute section containing a number of
//! attributes. Attributes … contain their name and the fill pattern of
//! their value class. If an attribute is multivalued, this fill pattern is
//! shown with a white border. … Groupings are represented in the same way
//! as classes, but they have no attribute sections and their characteristic
//! fill patterns have a white border."

use isis_core::{AttrId, ClassId, Database, GroupingId, Multiplicity, Result, ValueClass};

use crate::geometry::{Point, Rect};
use crate::scene::{Element, Emphasis, FrameStyle, Scene};

/// Width in cells a swatch occupies (including trailing space).
const SWATCH_W: i32 = 5;

/// Layout result for a class box: its rectangle and the row of each
/// attribute (so callers can attach follow-arrows).
#[derive(Debug, Clone, PartialEq)]
pub struct ClassBoxLayout {
    /// The outer rectangle.
    pub rect: Rect,
    /// `(attr, absolute row)` for every attribute drawn, in display order.
    pub attr_rows: Vec<(AttrId, i32)>,
}

/// Computes the attributes a class box shows.
pub fn box_attrs(db: &Database, class: ClassId, include_inherited: bool) -> Result<Vec<AttrId>> {
    if include_inherited {
        db.visible_attrs(class)
    } else {
        Ok(db
            .class(class)?
            .own_attrs
            .iter()
            .copied()
            .filter(|a| db.attr(*a).is_ok())
            .collect())
    }
}

/// The cell width a class box needs.
pub fn class_box_width(db: &Database, class: ClassId, include_inherited: bool) -> Result<i32> {
    let rec = db.class(class)?;
    let mut w = rec.name.chars().count() as i32 + SWATCH_W + 3;
    for a in box_attrs(db, class, include_inherited)? {
        let ar = db.attr(a)?;
        w = w.max(ar.name.chars().count() as i32 + SWATCH_W + 3);
    }
    Ok(w.max(12))
}

/// The cell height a class box needs.
pub fn class_box_height(db: &Database, class: ClassId, include_inherited: bool) -> Result<i32> {
    let n = box_attrs(db, class, include_inherited)?.len() as i32;
    // border + name row + separator + attrs + border (no separator when
    // there are no attributes).
    Ok(if n == 0 { 3 } else { 4 + n })
}

/// Draws a class box at `at`, returning its layout.
pub fn draw_class_box(
    db: &Database,
    class: ClassId,
    at: Point,
    include_inherited: bool,
    scene: &mut Scene,
) -> Result<ClassBoxLayout> {
    let rec = db.class(class)?;
    let w = class_box_width(db, class, include_inherited)?;
    let h = class_box_height(db, class, include_inherited)?;
    let rect = Rect::new(at.x, at.y, w, h);
    scene.push(Element::Frame {
        rect,
        title: None,
        style: FrameStyle::Window,
    });
    // Name section: swatch + name (reverse video for baseclasses).
    scene.push(Element::Swatch {
        at: Point::new(at.x + 1, at.y + 1),
        fill: rec.fill,
        set_border: false,
    });
    scene.push(Element::Text {
        at: Point::new(at.x + SWATCH_W + 1, at.y + 1),
        text: rec.name.clone(),
        emphasis: if rec.is_base() {
            Emphasis::Reverse
        } else {
            Emphasis::Plain
        },
    });
    // Attribute section.
    let attrs = box_attrs(db, class, include_inherited)?;
    let mut attr_rows = Vec::new();
    if !attrs.is_empty() {
        // Separator between name and attribute sections.
        scene.push(Element::Text {
            at: Point::new(at.x + 1, at.y + 2),
            text: "-".repeat((w - 2) as usize),
            emphasis: Emphasis::Plain,
        });
        for (i, a) in attrs.iter().enumerate() {
            let row = at.y + 3 + i as i32;
            let ar = db.attr(*a)?;
            scene.push(Element::Text {
                at: Point::new(at.x + 1, row),
                text: ar.name.clone(),
                emphasis: Emphasis::Plain,
            });
            // Value-class swatch at the right edge; white border when the
            // attribute value is a set (multivalued or grouping-ranged).
            let (fill, set) = match ar.value_class {
                ValueClass::Class(c) => (db.class(c)?.fill, ar.multiplicity == Multiplicity::Multi),
                ValueClass::Grouping(g) => (db.grouping(g)?.fill, true),
            };
            scene.push(Element::Swatch {
                at: Point::new(rect.right() - SWATCH_W, row),
                fill,
                set_border: set,
            });
            attr_rows.push((*a, row));
        }
    }
    Ok(ClassBoxLayout { rect, attr_rows })
}

/// Draws a grouping box: no attribute section, a set-bordered swatch, and —
/// per §2's network convention, "if a grouping node corresponds to a
/// grouping on attribute A, we label it with A" — the attribute label.
pub fn draw_grouping_box(
    db: &Database,
    grouping: GroupingId,
    at: Point,
    scene: &mut Scene,
) -> Result<Rect> {
    let rec = db.grouping(grouping)?;
    let w = grouping_box_width(db, grouping)?;
    let rect = Rect::new(at.x, at.y, w, 4);
    scene.push(Element::Frame {
        rect,
        title: None,
        style: FrameStyle::Window,
    });
    scene.push(Element::Swatch {
        at: Point::new(at.x + 1, at.y + 1),
        fill: rec.fill,
        set_border: true,
    });
    scene.push(Element::Text {
        at: Point::new(at.x + SWATCH_W + 2, at.y + 1),
        text: rec.name.clone(),
        emphasis: Emphasis::Plain,
    });
    scene.push(Element::Text {
        at: Point::new(at.x + SWATCH_W + 2, at.y + 2),
        text: format!("on {}", db.attr(rec.on_attr)?.name),
        emphasis: Emphasis::Plain,
    });
    Ok(rect)
}

/// The cell width a grouping box needs.
pub fn grouping_box_width(db: &Database, grouping: GroupingId) -> Result<i32> {
    let rec = db.grouping(grouping)?;
    let label = rec.name.chars().count() as i32;
    let attr = db.attr(rec.on_attr)?.name.chars().count() as i32 + 3;
    Ok(label.max(attr) + SWATCH_W + 5)
}

/// Draws a compact node box (name + swatch only), used by the semantic
/// network view for neighbour classes.
pub fn draw_compact_class_box(
    db: &Database,
    class: ClassId,
    at: Point,
    scene: &mut Scene,
) -> Result<Rect> {
    let rec = db.class(class)?;
    let w = rec.name.chars().count() as i32 + SWATCH_W + 3;
    let rect = Rect::new(at.x, at.y, w.max(10), 3);
    scene.push(Element::Frame {
        rect,
        title: None,
        style: FrameStyle::Window,
    });
    scene.push(Element::Swatch {
        at: Point::new(at.x + 1, at.y + 1),
        fill: rec.fill,
        set_border: false,
    });
    scene.push(Element::Text {
        at: Point::new(at.x + SWATCH_W + 1, at.y + 1),
        text: rec.name.clone(),
        emphasis: if rec.is_base() {
            Emphasis::Reverse
        } else {
            Emphasis::Plain
        },
    });
    Ok(rect)
}

/// Draws a standard command menu frame on the right of the content area.
pub fn draw_menu(commands: &[&str], x: i32, scene: &mut Scene) -> Rect {
    let w = commands
        .iter()
        .map(|c| c.chars().count() as i32)
        .max()
        .unwrap_or(0)
        + 4;
    let rect = Rect::new(x, 0, w, commands.len() as i32 + 2);
    scene.push(Element::Frame {
        rect,
        title: Some("menu".into()),
        style: FrameStyle::Menu,
    });
    for (i, c) in commands.iter().enumerate() {
        scene.push(Element::Text {
            at: Point::new(x + 2, 1 + i as i32),
            text: (*c).to_string(),
            emphasis: Emphasis::Plain,
        });
    }
    rect
}

/// Draws the text window (system prompts / errors / output) under the
/// content area.
pub fn draw_text_window(lines: &[String], rect: Rect, scene: &mut Scene) {
    scene.push(Element::Frame {
        rect,
        title: Some("text".into()),
        style: FrameStyle::TextWindow,
    });
    for (i, line) in lines.iter().take((rect.h - 2).max(0) as usize).enumerate() {
        scene.push(Element::Text {
            at: Point::new(rect.x + 2, rect.y + 1 + i as i32),
            text: line.clone(),
            emphasis: Emphasis::Plain,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isis_sample::instrumental_music;

    #[test]
    fn class_box_shows_name_and_attrs() {
        let im = instrumental_music().unwrap();
        let mut s = Scene::new("t");
        let layout = draw_class_box(&im.db, im.musicians, Point::new(0, 0), false, &mut s).unwrap();
        assert!(s.has_text_with("musicians", Emphasis::Reverse));
        assert!(s.has_text("plays"));
        assert!(s.has_text("stage_name"));
        assert_eq!(layout.attr_rows.len(), 3); // stage_name, plays, union
        assert!(layout.rect.h >= 7);
    }

    #[test]
    fn inherited_attrs_appear_when_requested() {
        let im = instrumental_music().unwrap();
        let mut s = Scene::new("t");
        let own = draw_class_box(&im.db, im.play_strings, Point::new(0, 0), false, &mut s).unwrap();
        assert_eq!(own.attr_rows.len(), 1); // in_group only
        let mut s2 = Scene::new("t");
        let all = draw_class_box(&im.db, im.play_strings, Point::new(0, 0), true, &mut s2).unwrap();
        assert_eq!(all.attr_rows.len(), 4); // stage_name, plays, union, in_group
        assert!(s2.has_text("plays"));
        // Subclass names are not reverse video.
        assert!(s2.has_text_with("play_strings", Emphasis::Plain));
    }

    #[test]
    fn multivalued_attr_swatch_has_set_border() {
        let im = instrumental_music().unwrap();
        let mut s = Scene::new("t");
        draw_class_box(&im.db, im.musicians, Point::new(0, 0), false, &mut s).unwrap();
        let set_swatches = s.count(|e| {
            matches!(
                e,
                Element::Swatch {
                    set_border: true,
                    ..
                }
            )
        });
        // Exactly one multivalued attribute (plays) on musicians.
        assert_eq!(set_swatches, 1);
    }

    #[test]
    fn grouping_box_has_set_bordered_swatch() {
        let im = instrumental_music().unwrap();
        let mut s = Scene::new("t");
        let r = draw_grouping_box(&im.db, im.by_family, Point::new(0, 0), &mut s).unwrap();
        assert_eq!(r.h, 4);
        assert!(s.has_text("by_family"));
        // §2: the grouping node is labeled with its attribute.
        assert!(s.has_text("on family"));
        assert_eq!(
            s.count(|e| matches!(
                e,
                Element::Swatch {
                    set_border: true,
                    ..
                }
            )),
            1
        );
    }

    #[test]
    fn menu_and_text_window() {
        let mut s = Scene::new("t");
        let r = draw_menu(&["pan", "undo", "redo"], 40, &mut s);
        assert!(r.w >= 8);
        assert!(s.has_text("undo"));
        draw_text_window(
            &["pick a class".to_string()],
            Rect::new(0, 20, 40, 3),
            &mut s,
        );
        assert!(s.has_text("pick a class"));
    }

    #[test]
    fn grouping_ranged_attribute_shows_grouping_swatch() {
        let mut im = instrumental_music().unwrap();
        // Give music_groups an attribute ranging over by_family.
        let a = im
            .db
            .create_attribute(
                im.music_groups,
                "sections",
                im.by_family,
                Multiplicity::Multi,
            )
            .unwrap();
        let mut s = Scene::new("t");
        let layout =
            draw_class_box(&im.db, im.music_groups, Point::new(0, 0), true, &mut s).unwrap();
        assert!(layout.attr_rows.iter().any(|(x, _)| *x == a));
        assert!(s.has_text("sections"));
    }
}
