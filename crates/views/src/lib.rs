//! # isis-views
//!
//! The graphical-representation substrate of the ISIS reproduction: a
//! headless simulation of the Apollo-workstation interface (§3). Views
//! build a retained [`Scene`] of the paper's visual vocabulary — windows,
//! menus, text windows, class boxes with characteristic fill patterns,
//! white-bordered set swatches, single/double labeled arrows, and the hand
//! icon — which renders to ASCII (for terminals and tests) or SVG (the
//! figure reproductions).
//!
//! The four views of the paper:
//!
//! * [`forest_view`] — the inheritance forest (Figures 1, 8, 12);
//! * [`network_view`] — the semantic network (Figure 2);
//! * [`data_view`] — the data level's overlapping pages (Figures 3–7, 11);
//! * [`worksheet_view`] — the predicate worksheet (Figures 9–10).
//!
//! Views are pure functions of the database plus display inputs; all
//! interactive state lives in `isis-session`.
//!
//! [`forest_view`]: forest_view::forest_view
//! [`network_view`]: network_view::network_view
//! [`data_view`]: data_view::data_view
//! [`worksheet_view`]: worksheet_view::worksheet_view

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod boxes;
pub mod data_view;
pub mod forest_view;
pub mod geometry;
pub mod network_view;
pub mod render;
pub mod scene;
pub mod worksheet_view;

pub use data_view::{data_view, DataView, DataViewInput, PageSpec, DATA_MENU};
pub use forest_view::{forest_view, ForestView, ForestViewOptions, FOREST_MENU};
pub use geometry::{Point, Rect};
pub use network_view::{network_view, NetworkView, NETWORK_MENU};
pub use scene::{ArrowKind, Element, Emphasis, FrameStyle, Scene};
pub use worksheet_view::{worksheet_view, WorksheetInput, WorksheetView, WORKSHEET_MENU};
