//! The data level view (Figures 3–7, 11).
//!
//! "The view here contains a number of overlapping pages. The top page
//! contains the schema selection, a class or grouping, and the data
//! selection, some of its members. Each page contains a class, with all of
//! its attributes including inherited ones, or a grouping. To the right of
//! each class or grouping is a pannable list of its members. Selected
//! members are highlighted with bold text. Navigation is possible at the
//! data level by following attributes."

use isis_core::{AttrId, Database, EntityId, Result, SchemaNode};

use crate::boxes::{
    class_box_height, class_box_width, draw_class_box, draw_menu, draw_text_window,
};
use crate::geometry::{Point, Rect};
use crate::scene::{ArrowKind, Element, Emphasis, FrameStyle, Scene};

/// The commands of the data-level menu (§3.2, §4.2).
pub const DATA_MENU: &[&str] = &[
    "select/reject",
    "follow",
    "(re)assign att. value",
    "make subclass",
    "create entity",
    "pop",
    "pan",
    "undo",
    "redo",
];

/// Maximum member rows shown per page before the list elides.
pub const MEMBER_ROWS: usize = 12;

/// One page of the data level.
#[derive(Debug, Clone, PartialEq)]
pub struct PageSpec {
    /// The class or grouping shown.
    pub node: SchemaNode,
    /// The data selection: highlighted members (entities for a class page,
    /// index entities for a grouping page).
    pub selected: Vec<EntityId>,
    /// First member row shown (panning the member list).
    pub scroll: usize,
    /// For pages reached by *follow*: the attribute that was followed from
    /// the previous page (drawn as an arrow between the pages).
    pub followed_from: Option<AttrId>,
}

impl PageSpec {
    /// A fresh page with nothing selected.
    pub fn new(node: SchemaNode) -> PageSpec {
        PageSpec {
            node,
            selected: Vec::new(),
            scroll: 0,
            followed_from: None,
        }
    }
}

/// Input to the data view: the page stack, bottom first (the last page is
/// the top, fully visible one).
#[derive(Debug, Clone, Default)]
pub struct DataViewInput {
    /// Pages, bottom to top.
    pub pages: Vec<PageSpec>,
    /// Lines for the text window.
    pub prompt: Vec<String>,
}

/// The result of building a data view.
#[derive(Debug, Clone)]
pub struct DataView {
    /// The rendered scene.
    pub scene: Scene,
    /// The rectangle of each page, bottom to top.
    pub page_rects: Vec<Rect>,
    /// For the top page: `(entity, row rect)` of each visible member row.
    pub member_rows: Vec<(EntityId, Rect)>,
}

impl DataView {
    /// The member row (of the top page) containing `p`.
    pub fn pick_member(&self, p: Point) -> Option<EntityId> {
        self.member_rows
            .iter()
            .find(|(_, r)| r.contains(p))
            .map(|(e, _)| *e)
    }
}

/// Page stacking offsets.
const PAGE_DX: i32 = 4;
const PAGE_DY: i32 = 3;

/// Builds the data-level view.
pub fn data_view(db: &Database, input: &DataViewInput) -> Result<DataView> {
    let obs = isis_obs::global();
    let _span = obs.span("views.build.data");
    let mut scene = Scene::new(db.name.clone());
    let mut page_rects = Vec::new();
    let mut member_rows = Vec::new();
    let mut attr_row_of_prev: Option<Vec<(AttrId, i32)>> = None;
    let mut prev_rect: Option<Rect> = None;

    for (i, page) in input.pages.iter().enumerate() {
        let at = Point::new(1 + i as i32 * PAGE_DX, 1 + i as i32 * PAGE_DY);
        let is_top = i + 1 == input.pages.len();
        let (rect, rows, attr_rows) = draw_page(db, page, at, &mut scene)?;
        // Follow arrow from the previous page's followed attribute row.
        if let (Some(attr), Some(prev_rows), Some(pr)) =
            (page.followed_from, attr_row_of_prev.as_ref(), prev_rect)
        {
            if let Some((_, row)) = prev_rows.iter().find(|(a, _)| *a == attr) {
                // The previous page's attr rows are covered by this page;
                // draw the arrow from the previous page's left edge at that
                // row (still visible) into the new page's top border.
                scene.push(Element::Arrow {
                    from: Point::new(pr.x, *row),
                    to: Point::new(rect.x, rect.y + 1),
                    kind: ArrowKind::Single,
                    label: None,
                });
            }
        }
        if is_top {
            member_rows = rows;
        }
        attr_row_of_prev = Some(attr_rows);
        prev_rect = Some(rect);
        page_rects.push(rect);
    }

    let content = scene.bounds();
    draw_menu(DATA_MENU, content.right() + 2, &mut scene);
    let b = scene.bounds();
    draw_text_window(
        &input.prompt,
        Rect::new(0, b.bottom() + 1, b.right().max(30), 5),
        &mut scene,
    );
    Ok(DataView {
        scene,
        page_rects,
        member_rows,
    })
}

type PageDraw = (Rect, Vec<(EntityId, Rect)>, Vec<(AttrId, i32)>);

fn draw_page(db: &Database, page: &PageSpec, at: Point, scene: &mut Scene) -> Result<PageDraw> {
    // Gather the member list first to size the page.
    let (title, members): (String, Vec<(EntityId, String, bool)>) = match page.node {
        SchemaNode::Class(c) => {
            let name = db.class(c)?.name.clone();
            let list = db
                .members(c)?
                .iter()
                .map(|e| {
                    Ok((
                        e,
                        db.entity_name(e)?.to_string(),
                        page.selected.contains(&e),
                    ))
                })
                .collect::<Result<Vec<_>>>()?;
            (name, list)
        }
        SchemaNode::Grouping(g) => {
            let name = db.grouping(g)?.name.clone();
            let list = db
                .grouping_sets(g)?
                .into_iter()
                .map(|set| {
                    Ok((
                        set.index,
                        format!("{{{}}} ({})", db.entity_name(set.index)?, set.members.len()),
                        page.selected.contains(&set.index),
                    ))
                })
                .collect::<Result<Vec<_>>>()?;
            (name, list)
        }
    };

    // Left column: the class/grouping box with all attributes.
    let (box_w, box_h) = match page.node {
        SchemaNode::Class(c) => (
            class_box_width(db, c, true)?,
            class_box_height(db, c, true)?,
        ),
        SchemaNode::Grouping(_) => (20, 3),
    };
    let list_w = members
        .iter()
        .map(|(_, n, _)| n.chars().count() as i32 + 4)
        .max()
        .unwrap_or(10)
        .max(12);
    let visible = members
        .iter()
        .skip(page.scroll)
        .take(MEMBER_ROWS)
        .collect::<Vec<_>>();
    let elided = members.len().saturating_sub(page.scroll + visible.len());
    let inner_h = box_h.max(visible.len() as i32 + 3);
    let rect = Rect::new(at.x, at.y, box_w + list_w + 6, inner_h + 2);
    scene.push(Element::Frame {
        rect,
        title: Some(title),
        style: FrameStyle::Page,
    });

    let attr_rows = match page.node {
        SchemaNode::Class(c) => {
            let layout = draw_class_box(db, c, Point::new(at.x + 1, at.y + 1), true, scene)?;
            layout.attr_rows
        }
        SchemaNode::Grouping(g) => {
            crate::boxes::draw_grouping_box(db, g, Point::new(at.x + 1, at.y + 1), scene)?;
            Vec::new()
        }
    };

    // Right column: the pannable member list.
    let lx = at.x + box_w + 3;
    scene.push(Element::Text {
        at: Point::new(lx, at.y + 1),
        text: "members:".into(),
        emphasis: Emphasis::Plain,
    });
    let mut rows = Vec::new();
    for (j, (e, name, sel)) in visible.iter().enumerate() {
        let row_y = at.y + 2 + j as i32;
        scene.push(Element::Text {
            at: Point::new(lx + 1, row_y),
            text: name.clone(),
            emphasis: if *sel {
                Emphasis::Bold
            } else {
                Emphasis::Plain
            },
        });
        rows.push((*e, Rect::new(lx, row_y, list_w, 1)));
    }
    if page.scroll > 0 {
        scene.push(Element::Text {
            at: Point::new(lx + 1, at.y + 1),
            text: format!("(^ {} more)", page.scroll),
            emphasis: Emphasis::Plain,
        });
    }
    if elided > 0 {
        scene.push(Element::Text {
            at: Point::new(lx + 1, at.y + 2 + visible.len() as i32),
            text: format!("(v {elided} more)"),
            emphasis: Emphasis::Plain,
        });
    }
    Ok((rect, rows, attr_rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::render::ascii;
    use isis_sample::instrumental_music;

    #[test]
    fn figure3_selecting_oboe() {
        let im = instrumental_music().unwrap();
        let mut page = PageSpec::new(SchemaNode::Class(im.instruments));
        page.selected = vec![im.flute, im.oboe];
        let view = data_view(
            &im.db,
            &DataViewInput {
                pages: vec![page],
                prompt: vec![],
            },
        )
        .unwrap();
        let s = &view.scene;
        assert!(s.has_text_with("flute", Emphasis::Bold));
        assert!(s.has_text_with("oboe", Emphasis::Bold));
        assert!(s.has_text_with("piano", Emphasis::Plain));
        // All attributes, inherited naming included.
        for a in ["name", "family", "popular"] {
            assert!(s.has_text(a));
        }
        // Menu present.
        assert!(s.has_text("select/reject"));
        assert!(s.has_text("follow"));
    }

    #[test]
    fn figure4_follow_family_overlaps_pages() {
        let im = instrumental_music().unwrap();
        let mut p1 = PageSpec::new(SchemaNode::Class(im.instruments));
        p1.selected = vec![im.flute, im.oboe];
        let mut p2 = PageSpec::new(SchemaNode::Class(im.families));
        p2.selected = vec![im.brass];
        p2.followed_from = Some(im.family);
        let view = data_view(
            &im.db,
            &DataViewInput {
                pages: vec![p1, p2],
                prompt: vec![],
            },
        )
        .unwrap();
        assert_eq!(view.page_rects.len(), 2);
        // Pages overlap (the defining visual of the data level).
        assert!(view.page_rects[0].intersects(&view.page_rects[1]));
        // brass is highlighted on the top page.
        assert!(view.scene.has_text_with("brass", Emphasis::Bold));
        // A follow arrow exists.
        assert!(view.scene.count(|e| matches!(e, Element::Arrow { .. })) >= 1);
    }

    #[test]
    fn grouping_page_lists_sets_with_sizes() {
        let im = instrumental_music().unwrap();
        let mut page = PageSpec::new(SchemaNode::Grouping(im.by_family));
        page.selected = vec![im.percussion];
        let view = data_view(
            &im.db,
            &DataViewInput {
                pages: vec![page],
                prompt: vec![],
            },
        )
        .unwrap();
        // Sets shown as {family}(count); percussion selected.
        assert!(view
            .scene
            .texts()
            .any(|(t, e)| t.contains("percussion") && e == Emphasis::Bold));
        assert!(view.scene.texts().any(|(t, _)| t.contains("(2)")));
    }

    #[test]
    fn member_list_elides_and_scrolls() {
        let mut im = instrumental_music().unwrap();
        for i in 0..20 {
            im.db
                .insert_entity(im.instruments, &format!("extra{i}"))
                .unwrap();
        }
        let page = PageSpec::new(SchemaNode::Class(im.instruments));
        let view = data_view(
            &im.db,
            &DataViewInput {
                pages: vec![page.clone()],
                prompt: vec![],
            },
        )
        .unwrap();
        assert_eq!(view.member_rows.len(), MEMBER_ROWS);
        assert!(view.scene.texts().any(|(t, _)| t.contains("more)")));
        // Scrolled page shows the up indicator and later members.
        let mut scrolled = page;
        scrolled.scroll = 15;
        let view2 = data_view(
            &im.db,
            &DataViewInput {
                pages: vec![scrolled],
                prompt: vec![],
            },
        )
        .unwrap();
        assert!(view2.scene.texts().any(|(t, _)| t.contains("(^ 15 more)")));
    }

    #[test]
    fn pick_member_hit_tests_rows() {
        let im = instrumental_music().unwrap();
        let page = PageSpec::new(SchemaNode::Class(im.instruments));
        let view = data_view(
            &im.db,
            &DataViewInput {
                pages: vec![page],
                prompt: vec![],
            },
        )
        .unwrap();
        let (first, rect) = view.member_rows[0];
        assert_eq!(
            view.pick_member(Point::new(rect.x + 1, rect.y)),
            Some(first)
        );
        assert_eq!(view.pick_member(Point::new(-9, -9)), None);
    }

    #[test]
    fn ascii_rendering_shows_top_page_content() {
        let im = instrumental_music().unwrap();
        let mut p1 = PageSpec::new(SchemaNode::Class(im.instruments));
        p1.selected = vec![im.flute];
        let p2 = {
            let mut p = PageSpec::new(SchemaNode::Class(im.families));
            p.followed_from = Some(im.family);
            p
        };
        let out = ascii::render(
            &data_view(
                &im.db,
                &DataViewInput {
                    pages: vec![p1, p2],
                    prompt: vec!["choose an attribute".into()],
                },
            )
            .unwrap()
            .scene,
        );
        assert!(out.contains("families"));
        assert!(out.contains("brass"));
        assert!(out.contains("choose an attribute"));
    }
}
