//! The inheritance forest view (Figures 1, 8, 12).
//!
//! "In the inheritance forest view, lines connect parent classes to their
//! children and the system enforces some of the placement decisions:
//! groupings always appear above their parent class and subclasses below.
//! In this view classes do not contain inherited attributes … A hand icon
//! is used to point to the schema selection. An editing menu is available
//! at the right for panning within the view, moving classes and groupings,
//! deleting classes, attributes and groupings, and undoing and redoing
//! actions."

use isis_core::{ClassId, Database, Result, SchemaNode};

use crate::boxes::{
    class_box_height, class_box_width, draw_class_box, draw_grouping_box, draw_menu,
    draw_text_window, grouping_box_width,
};
use crate::geometry::{Point, Rect};
use crate::scene::{ArrowKind, Element, Scene};

/// Options for building the forest view.
#[derive(Debug, Clone, Default)]
pub struct ForestViewOptions {
    /// The schema selection the hand icon points at.
    pub selection: Option<SchemaNode>,
    /// Show the four predefined baseclass trees (off by default, matching
    /// the figures, which show only the application classes).
    pub show_predefined: bool,
    /// Lines for the text window (system prompts / output).
    pub prompt: Vec<String>,
    /// Manual placement offsets per node — the *move* menu command
    /// ("moving classes and groupings", §3.2; Figure 8's dragged box).
    pub offsets: Vec<(SchemaNode, (i32, i32))>,
    /// Whole-view panning offset (the *pan* menu command).
    pub pan: (i32, i32),
}

/// The commands of the forest-view menu (§3.2).
pub const FOREST_MENU: &[&str] = &[
    "(re)name",
    "view associations",
    "define",
    "view contents",
    "create subclass",
    "create attribute",
    "delete",
    "move",
    "pan",
    "undo",
    "redo",
    "save",
    "stop",
];

const HGAP: i32 = 3;
const VGAP: i32 = 2;
const GROUPING_BAND: i32 = 4;

struct Layouter<'a> {
    db: &'a Database,
    /// y of the class row per depth, and whether the depth has groupings.
    row_y: Vec<i32>,
    band_y: Vec<i32>,
    offsets: &'a [(SchemaNode, (i32, i32))],
}

impl Layouter<'_> {
    fn offset_of(&self, node: SchemaNode) -> (i32, i32) {
        self.offsets
            .iter()
            .find(|(n, _)| *n == node)
            .map(|(_, d)| *d)
            .unwrap_or((0, 0))
    }
}

impl<'a> Layouter<'a> {
    fn subtree_span(&self, class: ClassId) -> Result<i32> {
        let rec = self.db.class(class)?;
        let mut own = class_box_width(self.db, class, false)?;
        let mut gw = 0;
        for &g in &rec.groupings {
            gw += grouping_box_width(self.db, g)? + HGAP;
        }
        own = own.max(gw);
        let mut children = 0;
        for &c in &rec.children {
            children += self.subtree_span(c)? + HGAP;
        }
        children = (children - HGAP).max(0);
        Ok(own.max(children))
    }

    fn draw(
        &self,
        class: ClassId,
        x: i32,
        depth: usize,
        scene: &mut Scene,
        positions: &mut Vec<(SchemaNode, Rect)>,
    ) -> Result<()> {
        let rec = self.db.class(class)?;
        let span = self.subtree_span(class)?;
        let bw = class_box_width(self.db, class, false)?;
        let (odx, ody) = self.offset_of(SchemaNode::Class(class));
        let bx = x + (span - bw) / 2 + odx;
        let by = self.row_y[depth] + ody;
        let layout = draw_class_box(self.db, class, Point::new(bx, by), false, scene)?;
        positions.push((SchemaNode::Class(class), layout.rect));
        // Groupings above.
        let mut gx = x
            + (span
                - rec
                    .groupings
                    .iter()
                    .map(|g| grouping_box_width(self.db, *g).unwrap_or(10) + HGAP)
                    .sum::<i32>()
                + HGAP)
                / 2;
        for &g in &rec.groupings {
            let (gdx, gdy) = self.offset_of(SchemaNode::Grouping(g));
            let gy = self.band_y[depth] + gdy;
            let grect = draw_grouping_box(self.db, g, Point::new(gx + gdx, gy), scene)?;
            positions.push((SchemaNode::Grouping(g), grect));
            scene.push(Element::Arrow {
                from: Point::new(grect.cx(), grect.bottom()),
                to: Point::new(grect.cx(), by - 1),
                kind: ArrowKind::None,
                label: None,
            });
            gx += grect.w + HGAP;
        }
        // Children below.
        let mut cx = x
            + (span
                - (rec
                    .children
                    .iter()
                    .map(|c| self.subtree_span(*c).map(|s| s + HGAP).unwrap_or(0))
                    .sum::<i32>()
                    - HGAP)
                    .max(0))
                / 2;
        for &child in &rec.children {
            let cspan = self.subtree_span(child)?;
            let cw = class_box_width(self.db, child, false)?;
            let (cdx, cdy) = self.offset_of(SchemaNode::Class(child));
            let child_cx = cx + (cspan - cw) / 2 + cw / 2 + cdx;
            scene.push(Element::Arrow {
                from: Point::new(bx + bw / 2, layout.rect.bottom()),
                to: Point::new(child_cx, self.row_y[depth + 1] + cdy - 1),
                kind: ArrowKind::None,
                label: None,
            });
            self.draw(child, cx, depth + 1, scene, positions)?;
            cx += cspan + HGAP;
        }
        Ok(())
    }
}

/// The result of building a forest view: the scene plus the rectangle of
/// every schema node (so a session can hit-test mouse picks).
#[derive(Debug, Clone)]
pub struct ForestView {
    /// The rendered scene.
    pub scene: Scene,
    /// `(node, rect)` for every box drawn.
    pub positions: Vec<(SchemaNode, Rect)>,
}

impl ForestView {
    /// The node whose box contains `p`, topmost first.
    pub fn pick(&self, p: Point) -> Option<SchemaNode> {
        self.positions
            .iter()
            .rev()
            .find(|(_, r)| r.contains(p))
            .map(|(n, _)| *n)
    }
}

/// Builds the inheritance forest view of `db`.
pub fn forest_view(db: &Database, opts: &ForestViewOptions) -> Result<ForestView> {
    let obs = isis_obs::global();
    let _span = obs.span("views.build.forest");
    let mut scene = Scene::new(db.name.clone());
    let roots: Vec<ClassId> = db
        .classes()
        .filter(|(_, c)| c.is_base() && (opts.show_predefined || !c.is_predefined()))
        .map(|(id, _)| id)
        .collect();

    // Depth metrics across all trees so rows align.
    let mut max_h: Vec<i32> = Vec::new();
    let mut has_grouping: Vec<bool> = Vec::new();
    for &root in &roots {
        collect_depth_metrics(db, root, 0, &mut max_h, &mut has_grouping)?;
    }
    let mut row_y = Vec::new();
    let mut band_y = Vec::new();
    let mut y = 0;
    for d in 0..max_h.len() {
        band_y.push(y);
        if has_grouping[d] {
            y += GROUPING_BAND;
        }
        row_y.push(y);
        y += max_h[d] + VGAP + 1;
    }
    let layouter = Layouter {
        db,
        row_y,
        band_y,
        offsets: &opts.offsets,
    };

    let mut positions = Vec::new();
    let mut x = 1;
    for &root in &roots {
        layouter.draw(root, x, 0, &mut scene, &mut positions)?;
        x += layouter.subtree_span(root)? + HGAP * 2;
    }

    // Hand icon at the selection.
    if let Some(sel) = opts.selection {
        if let Some((_, rect)) = positions.iter().find(|(n, _)| *n == sel) {
            scene.push(Element::Hand {
                at: Point::new(rect.x - 1, rect.y + 1),
            });
        }
    }

    // The pan command shifts the whole schema plane under the window.
    if opts.pan != (0, 0) {
        scene.pan(opts.pan.0, opts.pan.1);
        for (_, r) in &mut positions {
            *r = r.translated(opts.pan.0, opts.pan.1);
        }
    }

    // Menu at the right, text window at the bottom.
    let content = scene.bounds();
    draw_menu(FOREST_MENU, content.right() + 2, &mut scene);
    let b = scene.bounds();
    draw_text_window(
        &opts.prompt,
        Rect::new(0, b.bottom() + 1, b.right().max(30), 5),
        &mut scene,
    );
    Ok(ForestView { scene, positions })
}

fn collect_depth_metrics(
    db: &Database,
    class: ClassId,
    depth: usize,
    max_h: &mut Vec<i32>,
    has_grouping: &mut Vec<bool>,
) -> Result<()> {
    if max_h.len() <= depth {
        max_h.resize(depth + 1, 0);
        has_grouping.resize(depth + 1, false);
    }
    let h = class_box_height(db, class, false)?;
    max_h[depth] = max_h[depth].max(h);
    let rec = db.class(class)?;
    if !rec.groupings.is_empty() {
        has_grouping[depth] = true;
    }
    for &c in &rec.children {
        collect_depth_metrics(db, c, depth + 1, max_h, has_grouping)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::render::ascii;
    use isis_sample::instrumental_music;

    #[test]
    fn figure1_structure() {
        let im = instrumental_music().unwrap();
        let view = forest_view(
            &im.db,
            &ForestViewOptions {
                selection: Some(SchemaNode::Class(im.soloists)),
                ..Default::default()
            },
        )
        .unwrap();
        let s = &view.scene;
        // All four baseclasses, both subclasses, all four groupings.
        for name in [
            "musicians",
            "instruments",
            "music_groups",
            "families",
            "play_strings",
            "soloists",
            "by_instrument",
            "work_status",
            "by_family",
            "by_in_group",
        ] {
            assert!(s.has_text(name), "missing {name}");
        }
        // Hand icon points at soloists.
        let soloists_rect = view
            .positions
            .iter()
            .find(|(n, _)| *n == SchemaNode::Class(im.soloists))
            .unwrap()
            .1;
        let hand = s.hand().unwrap();
        assert_eq!(hand.y, soloists_rect.y + 1);
        // Predefined baseclasses hidden by default.
        assert!(!s.has_text("STRINGS"));
    }

    #[test]
    fn groupings_above_and_subclasses_below() {
        let im = instrumental_music().unwrap();
        let view = forest_view(&im.db, &ForestViewOptions::default()).unwrap();
        let rect_of = |n: SchemaNode| view.positions.iter().find(|(m, _)| *m == n).unwrap().1;
        let musicians = rect_of(SchemaNode::Class(im.musicians));
        let by_instrument = rect_of(SchemaNode::Grouping(im.by_instrument));
        let soloists = rect_of(SchemaNode::Class(im.soloists));
        assert!(
            by_instrument.bottom() <= musicians.y,
            "grouping above parent"
        );
        assert!(soloists.y >= musicians.bottom(), "subclass below parent");
    }

    #[test]
    fn no_boxes_overlap() {
        let im = instrumental_music().unwrap();
        let view = forest_view(&im.db, &ForestViewOptions::default()).unwrap();
        for (i, (na, ra)) in view.positions.iter().enumerate() {
            for (nb, rb) in view.positions.iter().skip(i + 1) {
                assert!(!ra.intersects(rb), "{na} overlaps {nb}");
            }
        }
    }

    #[test]
    fn pick_resolves_boxes() {
        let im = instrumental_music().unwrap();
        let view = forest_view(&im.db, &ForestViewOptions::default()).unwrap();
        let rect = view
            .positions
            .iter()
            .find(|(n, _)| *n == SchemaNode::Class(im.musicians))
            .unwrap()
            .1;
        assert_eq!(
            view.pick(Point::new(rect.cx(), rect.cy())),
            Some(SchemaNode::Class(im.musicians))
        );
        assert_eq!(view.pick(Point::new(-50, -50)), None);
    }

    #[test]
    fn show_predefined_adds_standard_baseclasses() {
        let im = instrumental_music().unwrap();
        let view = forest_view(
            &im.db,
            &ForestViewOptions {
                show_predefined: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(view.scene.has_text("STRINGS"));
        assert!(view.scene.has_text("YES/NO"));
    }

    #[test]
    fn renders_to_ascii_with_menu() {
        let im = instrumental_music().unwrap();
        let view = forest_view(
            &im.db,
            &ForestViewOptions {
                prompt: vec!["pick an object".into()],
                ..Default::default()
            },
        )
        .unwrap();
        let out = ascii::render(&view.scene);
        assert!(out.contains("view associations"));
        assert!(out.contains("view contents"));
        assert!(out.contains("pick an object"));
        assert!(out.contains("musicians"));
    }
}
