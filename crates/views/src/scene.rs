//! The retained scene model all views build and all renderers consume.
//!
//! A [`Scene`] is a flat list of primitives in cell coordinates. The
//! primitives mirror exactly the graphical vocabulary of §3.2: windows and
//! menus (frames), text (plain / bold / reverse-video), characteristic
//! fill-pattern swatches (with a white border when the thing shown is a
//! set), single and double arrows, and the hand icon marking the schema
//! selection.

use isis_core::FillPattern;

use crate::geometry::{Point, Rect};

/// Text emphasis, matching the paper's visual conventions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Emphasis {
    /// Normal text.
    #[default]
    Plain,
    /// Bold — selected members at the data level.
    Bold,
    /// Reverse video — baseclass name sections.
    Reverse,
}

/// Frame styles for windows, menus and pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FrameStyle {
    /// A view window.
    #[default]
    Window,
    /// A menu area.
    Menu,
    /// A text window (prompts, errors, output).
    TextWindow,
    /// One page of the data level.
    Page,
}

/// Arrowhead flavour: single for singlevalued attributes, double for
/// multivalued ones (§2's semantic-network convention).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrowKind {
    /// Plain connector (forest edges).
    None,
    /// Single arrow (singlevalued).
    Single,
    /// Double arrow (multivalued / set-valued).
    Double,
}

/// One scene primitive.
#[derive(Debug, Clone, PartialEq)]
pub enum Element {
    /// A rectangular frame with an optional title.
    Frame {
        /// Bounds.
        rect: Rect,
        /// Title drawn into the top border.
        title: Option<String>,
        /// Visual style.
        style: FrameStyle,
    },
    /// A run of text.
    Text {
        /// Top-left of the text.
        at: Point,
        /// The text itself.
        text: String,
        /// Emphasis.
        emphasis: Emphasis,
    },
    /// A characteristic fill-pattern swatch.
    Swatch {
        /// Top-left of the swatch.
        at: Point,
        /// The pattern.
        fill: FillPattern,
        /// `true` for set-valued things (white border in the paper).
        set_border: bool,
    },
    /// A straight connector, drawn as an elbow when not axis-aligned.
    Arrow {
        /// Start point.
        from: Point,
        /// End point.
        to: Point,
        /// Arrowhead flavour.
        kind: ArrowKind,
        /// Optional label near the midpoint.
        label: Option<String>,
    },
    /// The hand icon pointing at the schema selection.
    Hand {
        /// Where the hand points (its tip).
        at: Point,
    },
}

impl Element {
    /// Conservative bounding box of the element.
    pub fn bounds(&self) -> Rect {
        match self {
            Element::Frame { rect, .. } => *rect,
            Element::Text { at, text, .. } => Rect::new(at.x, at.y, text.chars().count() as i32, 1),
            Element::Swatch { at, set_border, .. } => {
                Rect::new(at.x, at.y, if *set_border { 4 } else { 2 }, 1)
            }
            Element::Arrow {
                from, to, label, ..
            } => {
                let a = Rect::new(from.x.min(to.x), from.y.min(to.y), 1, 1);
                let b = Rect::new(from.x.max(to.x), from.y.max(to.y), 1, 1);
                let mut r = a.union(&b);
                if let Some(l) = label {
                    r = r.union(&Rect::new(r.cx(), r.cy(), l.chars().count() as i32, 1));
                }
                r
            }
            Element::Hand { at } => Rect::new(at.x.saturating_sub(2), at.y, 3, 1),
        }
    }
}

/// A complete picture of one view.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Scene {
    /// View title (database name, as in the figures' title bars).
    pub title: String,
    /// The primitives, in paint order.
    pub elements: Vec<Element>,
}

impl Scene {
    /// An empty scene with a title.
    pub fn new(title: impl Into<String>) -> Scene {
        Scene {
            title: title.into(),
            elements: Vec::new(),
        }
    }

    /// Adds an element.
    pub fn push(&mut self, e: Element) {
        self.elements.push(e);
    }

    /// The union of all element bounds.
    pub fn bounds(&self) -> Rect {
        let mut r = Rect::default();
        for e in &self.elements {
            r = r.union(&e.bounds());
        }
        r
    }

    /// All text runs, for structural assertions in tests.
    pub fn texts(&self) -> impl Iterator<Item = (&str, Emphasis)> {
        self.elements.iter().filter_map(|e| match e {
            Element::Text { text, emphasis, .. } => Some((text.as_str(), *emphasis)),
            _ => None,
        })
    }

    /// `true` if some text run equals `s`.
    pub fn has_text(&self, s: &str) -> bool {
        self.texts().any(|(t, _)| t == s)
    }

    /// `true` if some text run equals `s` with the given emphasis.
    pub fn has_text_with(&self, s: &str, emphasis: Emphasis) -> bool {
        self.texts().any(|(t, e)| t == s && e == emphasis)
    }

    /// The hand icon's position, if present.
    pub fn hand(&self) -> Option<Point> {
        self.elements.iter().find_map(|e| match e {
            Element::Hand { at } => Some(*at),
            _ => None,
        })
    }

    /// Count of elements matching a predicate.
    pub fn count(&self, f: impl Fn(&Element) -> bool) -> usize {
        self.elements.iter().filter(|e| f(e)).count()
    }

    /// Translates every element (panning).
    pub fn pan(&mut self, dx: i32, dy: i32) {
        for e in &mut self.elements {
            match e {
                Element::Frame { rect, .. } => *rect = rect.translated(dx, dy),
                Element::Text { at, .. } | Element::Swatch { at, .. } | Element::Hand { at } => {
                    at.x += dx;
                    at.y += dy;
                }
                Element::Arrow { from, to, .. } => {
                    from.x += dx;
                    from.y += dy;
                    to.x += dx;
                    to.y += dy;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_cover_elements() {
        let mut s = Scene::new("t");
        s.push(Element::Frame {
            rect: Rect::new(0, 0, 10, 5),
            title: None,
            style: FrameStyle::Window,
        });
        s.push(Element::Text {
            at: Point::new(20, 8),
            text: "hello".into(),
            emphasis: Emphasis::Plain,
        });
        let b = s.bounds();
        assert!(b.right() >= 25);
        assert!(b.bottom() >= 9);
    }

    #[test]
    fn text_queries() {
        let mut s = Scene::new("t");
        s.push(Element::Text {
            at: Point::new(0, 0),
            text: "flute".into(),
            emphasis: Emphasis::Bold,
        });
        assert!(s.has_text("flute"));
        assert!(s.has_text_with("flute", Emphasis::Bold));
        assert!(!s.has_text_with("flute", Emphasis::Plain));
        assert!(!s.has_text("oboe"));
    }

    #[test]
    fn pan_moves_everything() {
        let mut s = Scene::new("t");
        s.push(Element::Hand {
            at: Point::new(5, 5),
        });
        s.push(Element::Arrow {
            from: Point::new(0, 0),
            to: Point::new(2, 2),
            kind: ArrowKind::Single,
            label: None,
        });
        s.pan(10, 1);
        assert_eq!(s.hand(), Some(Point::new(15, 6)));
        match &s.elements[1] {
            Element::Arrow { from, to, .. } => {
                assert_eq!(*from, Point::new(10, 1));
                assert_eq!(*to, Point::new(12, 3));
            }
            _ => unreachable!(),
        }
    }
}
