//! The semantic network view (Figure 2).
//!
//! "An alternate view at the schema level, the semantic network, consists
//! of one window, in which there are classes, groupings, and arcs as
//! defined in section 2." We show the schema selection's neighbourhood:
//! the selected class (with its full attribute section, inherited
//! attributes included) in the centre, its outgoing arcs — one per
//! attribute, labeled, single or double arrow — to value-class boxes on the
//! right, and incoming arcs from other classes' attributes on the left.

use isis_core::{ClassId, Database, Multiplicity, Result, SchemaNode};

use crate::boxes::{draw_class_box, draw_compact_class_box, draw_grouping_box, draw_menu};
use crate::geometry::{Point, Rect};
use crate::scene::{ArrowKind, Element, Scene};

/// The commands of the network-view menu.
pub const NETWORK_MENU: &[&str] = &["pop", "pan", "undo", "redo"];

/// The result of building a semantic network view.
#[derive(Debug, Clone)]
pub struct NetworkView {
    /// The rendered scene.
    pub scene: Scene,
    /// `(node, rect)` for every neighbour box (usable for navigation picks,
    /// e.g. picking *instruments* in Figure 1 → Figure 2).
    pub positions: Vec<(SchemaNode, Rect)>,
}

impl NetworkView {
    /// The node whose box contains `p`.
    pub fn pick(&self, p: Point) -> Option<SchemaNode> {
        self.positions
            .iter()
            .rev()
            .find(|(_, r)| r.contains(p))
            .map(|(n, _)| *n)
    }
}

/// Builds the semantic network view centred on `focus`.
pub fn network_view(db: &Database, focus: ClassId) -> Result<NetworkView> {
    let obs = isis_obs::global();
    let _span = obs.span("views.build.network");
    let mut scene = Scene::new(db.name.clone());
    let mut positions = Vec::new();

    let out_arcs = db.network_arcs_of(focus)?;
    let in_arcs: Vec<_> = db
        .network_sources_of(SchemaNode::Class(focus))?
        .into_iter()
        .filter(|a| a.from != focus)
        .collect();

    // Incoming sources on the left.
    let left_w = 26;
    let mut y = 1;
    let mut in_rects = Vec::new();
    for arc in &in_arcs {
        let r = draw_compact_class_box(db, arc.from, Point::new(1, y), &mut scene)?;
        positions.push((SchemaNode::Class(arc.from), r));
        in_rects.push((r, arc));
        y += r.h + 2;
    }

    // The focus class in the centre, full attribute section.
    let centre_x = left_w + 6;
    let focus_layout = draw_class_box(db, focus, Point::new(centre_x, 1), true, &mut scene)?;
    positions.push((SchemaNode::Class(focus), focus_layout.rect));
    scene.push(Element::Hand {
        at: Point::new(focus_layout.rect.x - 1, focus_layout.rect.y + 1),
    });

    // Incoming arcs point at the focus box.
    for (r, arc) in &in_rects {
        scene.push(Element::Arrow {
            from: Point::new(r.right(), r.cy()),
            to: Point::new(focus_layout.rect.x - 1, focus_layout.rect.y + 1),
            kind: if arc.multiplicity == Multiplicity::Multi {
                ArrowKind::Double
            } else {
                ArrowKind::Single
            },
            label: Some(db.attr(arc.attr)?.name.clone()),
        });
    }

    // Outgoing arcs: one target box per attribute, aligned with its row.
    let target_x = focus_layout.rect.right() + 14;
    let mut ty = 1;
    for arc in &out_arcs {
        let arec = db.attr(arc.attr)?;
        let (target_rect, node) = match arc.to {
            SchemaNode::Class(c) => (
                draw_compact_class_box(db, c, Point::new(target_x, ty), &mut scene)?,
                SchemaNode::Class(c),
            ),
            SchemaNode::Grouping(g) => (
                draw_grouping_box(db, g, Point::new(target_x, ty), &mut scene)?,
                SchemaNode::Grouping(g),
            ),
        };
        positions.push((node, target_rect));
        // Arrow from the attribute's row in the focus box to the target.
        let from_y = focus_layout
            .attr_rows
            .iter()
            .find(|(a, _)| *a == arc.attr)
            .map(|(_, row)| *row)
            .unwrap_or(focus_layout.rect.cy());
        scene.push(Element::Arrow {
            from: Point::new(focus_layout.rect.right(), from_y),
            to: Point::new(target_rect.x - 1, target_rect.cy()),
            kind: if arc.multiplicity == Multiplicity::Multi {
                ArrowKind::Double
            } else {
                ArrowKind::Single
            },
            label: Some(arec.name.clone()),
        });
        ty += target_rect.h + 2;
    }

    let content = scene.bounds();
    draw_menu(NETWORK_MENU, content.right() + 2, &mut scene);
    Ok(NetworkView { scene, positions })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::render::{ascii, svg};
    use crate::scene::Emphasis;
    use isis_sample::instrumental_music;

    #[test]
    fn figure2_structure_for_instruments() {
        let im = instrumental_music().unwrap();
        let view = network_view(&im.db, im.instruments).unwrap();
        let s = &view.scene;
        // The focus with all attributes.
        assert!(s.has_text_with("instruments", Emphasis::Reverse));
        for attr in ["name", "family", "popular"] {
            assert!(s.has_text(attr), "missing attribute {attr}");
        }
        // Value classes on the right.
        assert!(s.has_text("families"));
        assert!(s.has_text("YES/NO"));
        // Incoming: musicians.plays (double arrow) and music_groups? No —
        // members maps to musicians; plays maps into instruments.
        assert!(s.has_text("musicians"));
        let double_arrows = s.count(|e| {
            matches!(
                e,
                Element::Arrow {
                    kind: ArrowKind::Double,
                    ..
                }
            )
        });
        assert!(double_arrows >= 1, "plays is multivalued");
        // Arc labels present.
        let has_label = s
            .elements
            .iter()
            .any(|e| matches!(e, Element::Arrow { label: Some(l), .. } if l == "plays"));
        assert!(has_label);
    }

    #[test]
    fn picking_a_value_class_is_possible() {
        let im = instrumental_music().unwrap();
        // Figure 1→2 flow: from soloists' network, the user picks the value
        // class of plays (instruments).
        let view = network_view(&im.db, im.soloists).unwrap();
        let rect = view
            .positions
            .iter()
            .find(|(n, _)| *n == SchemaNode::Class(im.instruments))
            .expect("instruments is a value class of plays")
            .1;
        assert_eq!(
            view.pick(Point::new(rect.cx(), rect.cy())),
            Some(SchemaNode::Class(im.instruments))
        );
    }

    #[test]
    fn grouping_targets_drawn() {
        let mut im = instrumental_music().unwrap();
        im.db
            .create_attribute(
                im.music_groups,
                "sections",
                im.by_family,
                Multiplicity::Multi,
            )
            .unwrap();
        let view = network_view(&im.db, im.music_groups).unwrap();
        assert!(view.scene.has_text("by_family"));
        assert!(view
            .positions
            .iter()
            .any(|(n, _)| *n == SchemaNode::Grouping(im.by_family)));
    }

    #[test]
    fn renders_both_backends() {
        let im = instrumental_music().unwrap();
        let view = network_view(&im.db, im.musicians).unwrap();
        let a = ascii::render(&view.scene);
        assert!(a.contains("plays"));
        let v = svg::render(&view.scene);
        assert!(v.contains("plays"));
        assert!(v.starts_with("<svg"));
    }

    #[test]
    fn no_neighbour_boxes_overlap() {
        let im = instrumental_music().unwrap();
        for focus in [
            im.musicians,
            im.instruments,
            im.music_groups,
            im.play_strings,
        ] {
            let view = network_view(&im.db, focus).unwrap();
            for (i, (na, ra)) in view.positions.iter().enumerate() {
                for (nb, rb) in view.positions.iter().skip(i + 1) {
                    // The same node may legitimately appear as several arc
                    // targets; distinct nodes must not collide.
                    if na != nb {
                        assert!(!ra.intersects(rb), "{na} overlaps {nb} (focus {focus})");
                    }
                }
            }
        }
    }
}
