//! Cell-grid geometry for the view layer.
//!
//! All views lay out on an integer character grid (the ASCII renderer draws
//! one char per cell; the SVG renderer scales cells to pixels), so layout
//! decisions are deterministic and assertable in tests.

/// A point on the cell grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Point {
    /// Column.
    pub x: i32,
    /// Row.
    pub y: i32,
}

impl Point {
    /// Builds a point.
    pub fn new(x: i32, y: i32) -> Point {
        Point { x, y }
    }
}

/// An axis-aligned rectangle on the cell grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Rect {
    /// Left column.
    pub x: i32,
    /// Top row.
    pub y: i32,
    /// Width in cells (≥ 0).
    pub w: i32,
    /// Height in cells (≥ 0).
    pub h: i32,
}

impl Rect {
    /// Builds a rectangle.
    pub fn new(x: i32, y: i32, w: i32, h: i32) -> Rect {
        Rect { x, y, w, h }
    }

    /// Exclusive right edge.
    pub fn right(&self) -> i32 {
        self.x + self.w
    }

    /// Exclusive bottom edge.
    pub fn bottom(&self) -> i32 {
        self.y + self.h
    }

    /// Horizontal centre.
    pub fn cx(&self) -> i32 {
        self.x + self.w / 2
    }

    /// Vertical centre.
    pub fn cy(&self) -> i32 {
        self.y + self.h / 2
    }

    /// `true` if the point lies inside.
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.x && p.x < self.right() && p.y >= self.y && p.y < self.bottom()
    }

    /// `true` if the rectangles overlap.
    pub fn intersects(&self, other: &Rect) -> bool {
        self.x < other.right()
            && other.x < self.right()
            && self.y < other.bottom()
            && other.y < self.bottom()
    }

    /// The smallest rectangle containing both.
    pub fn union(&self, other: &Rect) -> Rect {
        if self.w == 0 && self.h == 0 {
            return *other;
        }
        if other.w == 0 && other.h == 0 {
            return *self;
        }
        let x = self.x.min(other.x);
        let y = self.y.min(other.y);
        Rect {
            x,
            y,
            w: self.right().max(other.right()) - x,
            h: self.bottom().max(other.bottom()) - y,
        }
    }

    /// This rectangle translated by (dx, dy).
    pub fn translated(&self, dx: i32, dy: i32) -> Rect {
        Rect {
            x: self.x + dx,
            y: self.y + dy,
            ..*self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edges_and_centres() {
        let r = Rect::new(2, 3, 10, 4);
        assert_eq!(r.right(), 12);
        assert_eq!(r.bottom(), 7);
        assert_eq!(r.cx(), 7);
        assert_eq!(r.cy(), 5);
    }

    #[test]
    fn containment() {
        let r = Rect::new(0, 0, 3, 3);
        assert!(r.contains(Point::new(0, 0)));
        assert!(r.contains(Point::new(2, 2)));
        assert!(!r.contains(Point::new(3, 0)));
        assert!(!r.contains(Point::new(-1, 1)));
    }

    #[test]
    fn intersection() {
        let a = Rect::new(0, 0, 5, 5);
        let b = Rect::new(4, 4, 5, 5);
        let c = Rect::new(5, 5, 2, 2);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
    }

    #[test]
    fn union_handles_empty() {
        let e = Rect::default();
        let r = Rect::new(1, 1, 2, 2);
        assert_eq!(e.union(&r), r);
        assert_eq!(r.union(&e), r);
        let u = r.union(&Rect::new(5, 0, 1, 1));
        assert_eq!(u, Rect::new(1, 0, 5, 3));
    }

    #[test]
    fn translation() {
        assert_eq!(
            Rect::new(1, 2, 3, 4).translated(10, -2),
            Rect::new(11, 0, 3, 4)
        );
    }
}
