//! The predicate worksheet view (Figures 9–10).
//!
//! "The predicate worksheet consists of several windows. The atom
//! construction window at the lower right contains three subwindows for the
//! left hand side, the operator, and the right hand side. Maps are
//! specified by choosing the map attributes with the mouse and forming a
//! stack of classes. … As atoms are being constructed, feedback is provided
//! above the atom creation window in the atom list window … These atoms may
//! be edited and placed in clauses (the set of windows on the left) in
//! disjunctive or conjunctive normal form."
//!
//! The view is driven by display-level data prepared by the session layer
//! (`isis-session`), which owns the interactive worksheet state.

use isis_core::NormalForm;

use crate::boxes::{draw_menu, draw_text_window};
use crate::geometry::{Point, Rect};
use crate::scene::{Element, Emphasis, FrameStyle, Scene};

/// The worksheet menu: construction options and actions (§3.2, §4.2).
pub const WORKSHEET_MENU: &[&str] = &[
    "edit",
    "map",
    "map starting at class",
    "constant",
    "constant starting at class",
    "place in clause",
    "switch and/or",
    "negate",
    "commit",
    "pop",
];

/// Number of clause windows shown (2 columns × 3 rows, as in Figure 9).
pub const CLAUSE_WINDOWS: usize = 6;

/// Display-level worksheet contents.
#[derive(Debug, Clone, Default)]
pub struct WorksheetInput {
    /// Database title for the banner.
    pub database: String,
    /// The class (or attribute) whose definition is being built, e.g.
    /// `"quartets"` or `"quartets.all_inst"`.
    pub target: String,
    /// Current reading of the clause layout.
    pub form: NormalForm,
    /// Atom tags placed in each clause window (e.g. `["E"]`, `["A"]`).
    pub clauses: Vec<Vec<String>>,
    /// The atom list: rendered atoms with their tags, e.g.
    /// `"A: size = {4}"`.
    pub atom_list: Vec<String>,
    /// The construction stack of class names (left-hand side).
    pub lhs_stack: Vec<String>,
    /// The chosen operator symbol.
    pub operator: Option<String>,
    /// The right-hand side, as displayed.
    pub rhs: String,
    /// All class names (the class list window on the right).
    pub class_list: Vec<String>,
    /// `true` when defining an attribute derivation — adds the hand icon
    /// (unary assignment) to the operator window (Figure 10).
    pub derivation_mode: bool,
    /// Text-window lines.
    pub prompt: Vec<String>,
}

/// The result of building the worksheet view.
#[derive(Debug, Clone)]
pub struct WorksheetView {
    /// The rendered scene.
    pub scene: Scene,
    /// Rectangles of the clause windows, in order.
    pub clause_rects: Vec<Rect>,
}

/// Builds the predicate worksheet view.
pub fn worksheet_view(input: &WorksheetInput) -> WorksheetView {
    let obs = isis_obs::global();
    let _span = obs.span("views.build.worksheet");
    let mut scene = Scene::new(format!(
        "{} — predicate worksheet: {} [{}]",
        input.database, input.target, input.form
    ));

    // Clause windows: 2 columns × 3 rows on the left.
    let cw = 22;
    let ch = 6;
    let mut clause_rects = Vec::new();
    for i in 0..CLAUSE_WINDOWS {
        let col = (i % 2) as i32;
        let row = (i / 2) as i32;
        let rect = Rect::new(1 + col * (cw + 2), 1 + row * (ch + 1), cw, ch);
        scene.push(Element::Frame {
            rect,
            title: Some(format!("clause {}", i + 1)),
            style: FrameStyle::Window,
        });
        if let Some(tags) = input.clauses.get(i) {
            for (j, t) in tags.iter().take(ch as usize - 2).enumerate() {
                scene.push(Element::Text {
                    at: Point::new(rect.x + 2, rect.y + 1 + j as i32),
                    text: t.clone(),
                    emphasis: Emphasis::Plain,
                });
            }
        }
        clause_rects.push(rect);
    }
    let left_w = 1 + 2 * (cw + 2);
    let left_h = 1 + 3 * (ch + 1);

    // Atom list window, top right.
    let al_rect = Rect::new(left_w + 2, 1, 44, 10);
    scene.push(Element::Frame {
        rect: al_rect,
        title: Some("atom list".into()),
        style: FrameStyle::Window,
    });
    for (i, a) in input.atom_list.iter().take(8).enumerate() {
        scene.push(Element::Text {
            at: Point::new(al_rect.x + 2, al_rect.y + 1 + i as i32),
            text: a.clone(),
            emphasis: Emphasis::Plain,
        });
    }

    // Atom construction window, bottom right, with three subwindows.
    let ac_rect = Rect::new(left_w + 2, al_rect.bottom() + 1, 44, 10);
    scene.push(Element::Frame {
        rect: ac_rect,
        title: Some("atom construction".into()),
        style: FrameStyle::Window,
    });
    let lhs_rect = Rect::new(ac_rect.x + 1, ac_rect.y + 1, 16, 8);
    let op_rect = Rect::new(lhs_rect.right() + 1, ac_rect.y + 1, 7, 8);
    let rhs_rect = Rect::new(op_rect.right() + 1, ac_rect.y + 1, 18, 8);
    scene.push(Element::Frame {
        rect: lhs_rect,
        title: Some("lhs".into()),
        style: FrameStyle::Window,
    });
    scene.push(Element::Frame {
        rect: op_rect,
        title: Some("op".into()),
        style: FrameStyle::Window,
    });
    scene.push(Element::Frame {
        rect: rhs_rect,
        title: Some("rhs".into()),
        style: FrameStyle::Window,
    });
    // The stack of classes grows downward as map attributes are picked.
    for (i, c) in input.lhs_stack.iter().take(6).enumerate() {
        scene.push(Element::Text {
            at: Point::new(lhs_rect.x + 1, lhs_rect.y + 1 + i as i32),
            text: c.clone(),
            emphasis: if i + 1 == input.lhs_stack.len() {
                Emphasis::Bold
            } else {
                Emphasis::Plain
            },
        });
    }
    if let Some(op) = &input.operator {
        scene.push(Element::Text {
            at: Point::new(op_rect.x + 2, op_rect.cy()),
            text: op.clone(),
            emphasis: Emphasis::Bold,
        });
    }
    if input.derivation_mode {
        // The unary hand (assignment) operator, available only when
        // defining a derivation (Figure 10).
        scene.push(Element::Hand {
            at: Point::new(op_rect.x + 4, op_rect.y + 1),
        });
    }
    if !input.rhs.is_empty() {
        scene.push(Element::Text {
            at: Point::new(rhs_rect.x + 1, rhs_rect.y + 1),
            text: input.rhs.clone(),
            emphasis: Emphasis::Plain,
        });
    }

    // Class list window, far right.
    let cl_rect = Rect::new(al_rect.right() + 2, 1, 20, left_h - 1);
    scene.push(Element::Frame {
        rect: cl_rect,
        title: Some("classes".into()),
        style: FrameStyle::Window,
    });
    for (i, c) in input
        .class_list
        .iter()
        .take(cl_rect.h as usize - 2)
        .enumerate()
    {
        scene.push(Element::Text {
            at: Point::new(cl_rect.x + 2, cl_rect.y + 1 + i as i32),
            text: c.clone(),
            emphasis: Emphasis::Plain,
        });
    }

    let content = scene.bounds();
    draw_menu(WORKSHEET_MENU, content.right() + 2, &mut scene);
    let b = scene.bounds();
    draw_text_window(
        &input.prompt,
        Rect::new(0, b.bottom() + 1, b.right().max(30), 5),
        &mut scene,
    );
    WorksheetView {
        scene,
        clause_rects,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::render::{ascii, svg};

    fn figure9_input() -> WorksheetInput {
        WorksheetInput {
            database: "Instrumental_Music".into(),
            target: "quartets".into(),
            form: NormalForm::Cnf,
            clauses: vec![vec!["E".into()], vec!["A".into()]],
            atom_list: vec![
                "A: size = {4}".into(),
                "E: members plays >=s {piano}".into(),
            ],
            lhs_stack: vec![
                "music_groups".into(),
                "musicians".into(),
                "instruments".into(),
            ],
            operator: Some("⊇".into()),
            rhs: "{piano}".into(),
            class_list: vec![
                "musicians".into(),
                "instruments".into(),
                "music_groups".into(),
                "families".into(),
                "INTEGERS".into(),
            ],
            derivation_mode: false,
            prompt: vec![],
        }
    }

    #[test]
    fn figure9_structure() {
        let view = worksheet_view(&figure9_input());
        let s = &view.scene;
        assert_eq!(view.clause_rects.len(), CLAUSE_WINDOWS);
        // Atoms in their clause windows and in the atom list.
        assert!(s.has_text("E"));
        assert!(s.has_text("A"));
        assert!(s.has_text("A: size = {4}"));
        // The stack of classes from the map members plays.
        for c in ["music_groups", "musicians", "instruments"] {
            assert!(s.has_text(c));
        }
        // Operator and rhs subwindows populated.
        assert!(s.has_text_with("⊇", Emphasis::Bold));
        assert!(s.has_text("{piano}"));
        // The CNF reading appears in the banner.
        assert!(s.title.contains("CNF"));
        // No hand icon outside derivation mode.
        assert!(s.hand().is_none());
    }

    #[test]
    fn figure10_derivation_mode_adds_hand() {
        let mut input = figure9_input();
        input.target = "quartets.all_inst".into();
        input.derivation_mode = true;
        let view = worksheet_view(&input);
        assert!(view.scene.hand().is_some());
        assert!(view.scene.title.contains("all_inst"));
    }

    #[test]
    fn menus_and_rendering() {
        let view = worksheet_view(&figure9_input());
        let out = ascii::render(&view.scene);
        assert!(out.contains("switch and/or"));
        assert!(out.contains("commit"));
        assert!(out.contains("clause 1"));
        assert!(out.contains("atom construction"));
        let v = svg::render(&view.scene);
        assert!(v.contains("atom list"));
    }

    #[test]
    fn clause_windows_do_not_overlap() {
        let view = worksheet_view(&figure9_input());
        for (i, a) in view.clause_rects.iter().enumerate() {
            for b in view.clause_rects.iter().skip(i + 1) {
                assert!(!a.intersects(b));
            }
        }
    }

    #[test]
    fn empty_input_renders() {
        let view = worksheet_view(&WorksheetInput::default());
        assert_eq!(view.clause_rects.len(), CLAUSE_WINDOWS);
        let out = ascii::render(&view.scene);
        assert!(out.contains("clause 6"));
    }
}
