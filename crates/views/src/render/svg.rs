//! The SVG renderer.
//!
//! Scales the cell grid to pixels (one cell = 9×18 px, a classic terminal
//! aspect) and draws the figures with real visual attributes: reverse-video
//! bars, bold text, `<pattern>` fills for the characteristic patterns (with
//! a white border for sets), single/double arrowheads, and a hand glyph for
//! the schema selection.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use crate::scene::{ArrowKind, Element, Emphasis, FrameStyle, Scene};

/// Pixel width of one grid cell.
pub const CELL_W: i32 = 9;
/// Pixel height of one grid cell.
pub const CELL_H: i32 = 18;

fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

fn px(x: i32) -> i32 {
    x * CELL_W
}
fn py(y: i32) -> i32 {
    y * CELL_H
}

/// Renders a scene to a standalone SVG document.
pub fn render(scene: &Scene) -> String {
    let obs = isis_obs::global();
    let _span = obs.span("views.render.svg");
    obs.count("views.renders", 1);
    obs.count("views.render.elements", scene.elements.len() as u64);
    let b = scene.bounds();
    let width = px(b.right() + 2).max(px(scene.title.chars().count() as i32 + 4));
    let height = py(b.bottom() + 3);
    let mut out = String::new();
    let _ = write!(
        out,
        concat!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{w}\" height=\"{h}\" ",
            "viewBox=\"0 0 {w} {h}\" font-family=\"monospace\" font-size=\"13\">\n"
        ),
        w = width,
        h = height
    );
    // Pattern defs for every fill used.
    let fills: BTreeSet<u32> = scene
        .elements
        .iter()
        .filter_map(|e| match e {
            Element::Swatch { fill, .. } => Some(fill.0),
            _ => None,
        })
        .collect();
    out.push_str("<defs>\n");
    for f in &fills {
        out.push_str(&isis_core::FillPattern(*f).svg_def());
        out.push('\n');
    }
    out.push_str(concat!(
        "<marker id=\"head\" markerWidth=\"8\" markerHeight=\"8\" refX=\"6\" refY=\"3\" ",
        "orient=\"auto\"><path d=\"M0,0 L6,3 L0,6 z\"/></marker>\n",
        "<marker id=\"dhead\" markerWidth=\"12\" markerHeight=\"8\" refX=\"10\" refY=\"3\" ",
        "orient=\"auto\"><path d=\"M0,0 L6,3 L0,6 z\"/><path d=\"M4,0 L10,3 L4,6 z\"/></marker>\n",
    ));
    out.push_str("</defs>\n");
    out.push_str("<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n");
    // Title bar.
    let _ = write!(
        out,
        concat!(
            "<rect x=\"0\" y=\"0\" width=\"{w}\" height=\"{th}\" fill=\"black\"/>",
            "<text x=\"8\" y=\"14\" fill=\"white\">{t}</text>\n"
        ),
        w = width,
        th = CELL_H,
        t = esc(&scene.title)
    );
    let oy = CELL_H + 6; // pixel offset under the title bar

    for e in &scene.elements {
        match e {
            Element::Frame { rect, title, style } => {
                let (dash, fillcol) = match style {
                    FrameStyle::Window => ("", "none"),
                    FrameStyle::Menu => ("stroke-dasharray=\"4 2\" ", "none"),
                    FrameStyle::TextWindow => ("stroke-dasharray=\"1 2\" ", "none"),
                    FrameStyle::Page => ("", "white"),
                };
                let _ = write!(
                    out,
                    concat!(
                        "<rect x=\"{x}\" y=\"{y}\" width=\"{w}\" height=\"{h}\" ",
                        "fill=\"{f}\" stroke=\"black\" {dash}/>\n"
                    ),
                    x = px(rect.x),
                    y = py(rect.y) + oy,
                    w = px(rect.w),
                    h = py(rect.h),
                    f = fillcol,
                    dash = dash,
                );
                if let Some(t) = title {
                    let _ = writeln!(
                        out,
                        "<text x=\"{x}\" y=\"{y}\" font-weight=\"bold\">{t}</text>",
                        x = px(rect.x) + 4,
                        y = py(rect.y) + oy - 3,
                        t = esc(t)
                    );
                }
            }
            Element::Text { at, text, emphasis } => {
                let x = px(at.x);
                let y = py(at.y) + oy + 13;
                match emphasis {
                    Emphasis::Plain => {
                        let _ = writeln!(out, "<text x=\"{x}\" y=\"{y}\">{}</text>", esc(text));
                    }
                    Emphasis::Bold => {
                        let _ = writeln!(
                            out,
                            "<text x=\"{x}\" y=\"{y}\" font-weight=\"bold\" font-size=\"14\">{}</text>",
                            esc(text)
                        );
                    }
                    Emphasis::Reverse => {
                        let w = text.chars().count() as i32 * CELL_W;
                        let _ = write!(
                            out,
                            concat!(
                                "<rect x=\"{rx}\" y=\"{ry}\" width=\"{w}\" height=\"{h}\" fill=\"black\"/>",
                                "<text x=\"{x}\" y=\"{y}\" fill=\"white\">{t}</text>\n"
                            ),
                            rx = x - 2,
                            ry = py(at.y) + oy,
                            w = w + 4,
                            h = CELL_H - 2,
                            x = x,
                            y = y,
                            t = esc(text)
                        );
                    }
                }
            }
            Element::Swatch {
                at,
                fill,
                set_border,
            } => {
                let x = px(at.x);
                let y = py(at.y) + oy + 2;
                let (w, h) = (CELL_W * 2, CELL_H - 6);
                if *set_border {
                    // White border: an outer black box, white gap, pattern.
                    let _ = write!(
                        out,
                        concat!(
                            "<rect x=\"{x0}\" y=\"{y0}\" width=\"{w0}\" height=\"{h0}\" ",
                            "fill=\"white\" stroke=\"black\"/>\n"
                        ),
                        x0 = x - 3,
                        y0 = y - 3,
                        w0 = w + 6,
                        h0 = h + 6,
                    );
                }
                let _ = write!(
                    out,
                    concat!(
                        "<rect x=\"{x}\" y=\"{y}\" width=\"{w}\" height=\"{h}\" ",
                        "fill=\"url(#{id})\" stroke=\"black\"/>\n"
                    ),
                    x = x,
                    y = y,
                    w = w,
                    h = h,
                    id = fill.svg_id(),
                );
            }
            Element::Arrow {
                from,
                to,
                kind,
                label,
            } => {
                let (x1, y1) = (px(from.x) + CELL_W / 2, py(from.y) + oy + CELL_H / 2);
                let (x2, y2) = (px(to.x) + CELL_W / 2, py(to.y) + oy + CELL_H / 2);
                let marker = match kind {
                    ArrowKind::None => String::new(),
                    ArrowKind::Single => " marker-end=\"url(#head)\"".into(),
                    ArrowKind::Double => " marker-end=\"url(#dhead)\"".into(),
                };
                if y1 == y2 || x1 == x2 {
                    let _ = writeln!(
                        out,
                        "<line x1=\"{x1}\" y1=\"{y1}\" x2=\"{x2}\" y2=\"{y2}\" stroke=\"black\"{marker}/>"
                    );
                } else {
                    let _ = writeln!(
                        out,
                        "<polyline points=\"{x1},{y1} {x2},{y1} {x2},{y2}\" fill=\"none\" stroke=\"black\"{marker}/>"
                    );
                }
                if let Some(l) = label {
                    let _ = writeln!(
                        out,
                        "<text x=\"{x}\" y=\"{y}\" font-style=\"italic\" font-size=\"11\">{t}</text>",
                        x = (x1 + x2) / 2,
                        y = y1.min(y2) - 4,
                        t = esc(l)
                    );
                }
            }
            Element::Hand { at } => {
                let _ = writeln!(
                    out,
                    "<text x=\"{x}\" y=\"{y}\" font-size=\"16\">\u{261E}</text>",
                    x = px(at.x) - CELL_W * 2,
                    y = py(at.y) + oy + 14
                );
            }
        }
    }
    out.push_str("</svg>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{Point, Rect};
    use isis_core::FillPattern;

    #[test]
    fn produces_wellformed_svg() {
        let mut s = Scene::new("Instrumental_Music");
        s.push(Element::Frame {
            rect: Rect::new(0, 0, 12, 4),
            title: Some("musicians".into()),
            style: FrameStyle::Window,
        });
        s.push(Element::Swatch {
            at: Point::new(1, 1),
            fill: FillPattern::nth(3),
            set_border: true,
        });
        s.push(Element::Text {
            at: Point::new(4, 1),
            text: "STRINGS".into(),
            emphasis: Emphasis::Reverse,
        });
        s.push(Element::Arrow {
            from: Point::new(2, 5),
            to: Point::new(9, 8),
            kind: ArrowKind::Double,
            label: Some("plays".into()),
        });
        s.push(Element::Hand {
            at: Point::new(3, 3),
        });
        let out = render(&s);
        assert!(out.starts_with("<svg"));
        assert!(out.trim_end().ends_with("</svg>"));
        assert!(out.contains("url(#fill3)"));
        assert!(out.contains("url(#dhead)"));
        assert!(out.contains("☞"));
        assert!(out.contains("Instrumental_Music"));
        // Balanced tags (rough check).
        assert_eq!(out.matches("<svg").count(), out.matches("</svg>").count());
        assert_eq!(out.matches("<text").count(), out.matches("</text>").count());
    }

    #[test]
    fn escapes_markup_in_text() {
        let mut s = Scene::new("a<b>&c");
        s.push(Element::Text {
            at: Point::new(0, 0),
            text: "x < y & z".into(),
            emphasis: Emphasis::Plain,
        });
        let out = render(&s);
        assert!(out.contains("a&lt;b&gt;&amp;c"));
        assert!(out.contains("x &lt; y &amp; z"));
        assert!(!out.contains("x < y"));
    }

    #[test]
    fn defines_each_pattern_once() {
        let mut s = Scene::new("t");
        for i in [2u32, 2, 5] {
            s.push(Element::Swatch {
                at: Point::new(i as i32 * 4, 0),
                fill: FillPattern(i),
                set_border: false,
            });
        }
        let out = render(&s);
        assert_eq!(out.matches("id=\"fill2\"").count(), 1);
        assert_eq!(out.matches("id=\"fill5\"").count(), 1);
    }
}
