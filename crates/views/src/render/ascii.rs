//! The ASCII renderer.
//!
//! Draws a [`Scene`] onto a character grid. Conventions (documented here
//! because a text terminal has no bold or reverse video):
//!
//! * reverse-video text is wrapped in `▌…▐`-substitutes: `#name#`;
//! * bold (selected) text is wrapped in `*…*`;
//! * fill-pattern swatches are the pattern's glyph(s); set-valued swatches
//!   are wrapped in square brackets `[#]`;
//! * the hand icon is `=>`;
//! * single arrows end in `>`/`v`/`^`/`<`; double arrows in `»`-substitute
//!   `>>` (or doubled vertical heads).

use crate::geometry::{Point, Rect};
use crate::scene::{ArrowKind, Element, Emphasis, FrameStyle, Scene};

/// A character grid the renderer paints onto.
#[derive(Debug)]
struct Canvas {
    w: usize,
    h: usize,
    cells: Vec<char>,
}

impl Canvas {
    fn new(w: usize, h: usize) -> Canvas {
        Canvas {
            w,
            h,
            cells: vec![' '; w * h],
        }
    }

    fn put(&mut self, x: i32, y: i32, c: char) {
        if x >= 0 && y >= 0 && (x as usize) < self.w && (y as usize) < self.h {
            self.cells[y as usize * self.w + x as usize] = c;
        }
    }

    fn get(&self, x: i32, y: i32) -> char {
        if x >= 0 && y >= 0 && (x as usize) < self.w && (y as usize) < self.h {
            self.cells[y as usize * self.w + x as usize]
        } else {
            ' '
        }
    }

    fn text(&mut self, x: i32, y: i32, s: &str) {
        for (i, c) in s.chars().enumerate() {
            self.put(x + i as i32, y, c);
        }
    }

    fn frame(&mut self, r: Rect, title: Option<&str>, style: FrameStyle) {
        if r.w < 2 || r.h < 2 {
            return;
        }
        let (hch, vch) = match style {
            FrameStyle::Window => ('-', '|'),
            FrameStyle::Menu => ('=', '|'),
            FrameStyle::TextWindow => ('.', ':'),
            FrameStyle::Page => ('-', '|'),
        };
        // Pages are opaque: clear the interior so overlapped pages show
        // only where they peek out (the data level's overlapping pages).
        if style == FrameStyle::Page {
            for y in r.y + 1..r.bottom() - 1 {
                for x in r.x + 1..r.right() - 1 {
                    self.put(x, y, ' ');
                }
            }
        }
        for x in r.x..r.right() {
            self.put(x, r.y, hch);
            self.put(x, r.bottom() - 1, hch);
        }
        for y in r.y..r.bottom() {
            self.put(r.x, y, vch);
            self.put(r.right() - 1, y, vch);
        }
        self.put(r.x, r.y, '+');
        self.put(r.right() - 1, r.y, '+');
        self.put(r.x, r.bottom() - 1, '+');
        self.put(r.right() - 1, r.bottom() - 1, '+');
        if let Some(t) = title {
            let label = format!(" {t} ");
            self.text(r.x + 1, r.y, &label);
        }
    }

    fn hline(&mut self, x1: i32, x2: i32, y: i32) {
        let (a, b) = (x1.min(x2), x1.max(x2));
        for x in a..=b {
            let cur = self.get(x, y);
            self.put(x, y, if cur == '|' { '+' } else { '-' });
        }
    }

    fn vline(&mut self, x: i32, y1: i32, y2: i32) {
        let (a, b) = (y1.min(y2), y1.max(y2));
        for y in a..=b {
            let cur = self.get(x, y);
            self.put(x, y, if cur == '-' { '+' } else { '|' });
        }
    }

    fn to_string_trimmed(&self) -> String {
        let mut out = String::with_capacity(self.w * self.h + self.h);
        for y in 0..self.h {
            let row: String = self.cells[y * self.w..(y + 1) * self.w].iter().collect();
            out.push_str(row.trim_end());
            out.push('\n');
        }
        // Drop trailing blank lines.
        while out.ends_with("\n\n") {
            out.pop();
        }
        out
    }
}

/// Renders a scene to a string of text.
pub fn render(scene: &Scene) -> String {
    let obs = isis_obs::global();
    let _span = obs.span("views.render.ascii");
    obs.count("views.renders", 1);
    obs.count("views.render.elements", scene.elements.len() as u64);
    let b = scene.bounds();
    let w = (b.right().max(scene.title.chars().count() as i32 + 7) + 2).max(4) as usize;
    let h = (b.bottom() + 3).max(3) as usize;
    let mut c = Canvas::new(w, h);
    // Title bar, like the figures' "Instrumental_music" banner.
    c.text(1, 0, &format!("== {} ==", scene.title));
    let oy = 2; // content starts under the title bar

    // Paint in scene order: builders push background frames before their
    // content, and later (overlapping) pages after earlier ones, so strict
    // document order gives correct occlusion — exactly like the SVG
    // renderer.
    for e in &scene.elements {
        match e {
            Element::Frame { rect, title, style } => {
                c.frame(rect.translated(0, oy), title.as_deref(), *style);
            }
            Element::Arrow {
                from,
                to,
                kind,
                label,
            } => {
                draw_arrow(
                    &mut c,
                    Point::new(from.x, from.y + oy),
                    Point::new(to.x, to.y + oy),
                    *kind,
                    label.as_deref(),
                );
            }
            Element::Text { at, text, emphasis } => {
                let s = match emphasis {
                    Emphasis::Plain => text.clone(),
                    Emphasis::Bold => format!("*{text}*"),
                    Emphasis::Reverse => format!("#{text}#"),
                };
                let x = match emphasis {
                    Emphasis::Plain => at.x,
                    _ => at.x - 1,
                };
                c.text(x, at.y + oy, &s);
            }
            Element::Swatch {
                at,
                fill,
                set_border,
            } => {
                let sw = fill.ascii_swatch();
                let s = if *set_border { format!("[{sw}]") } else { sw };
                c.text(at.x, at.y + oy, &s);
            }
            Element::Hand { at } => {
                c.text(at.x - 2, at.y + oy, "=>");
            }
        }
    }
    c.to_string_trimmed()
}

fn draw_arrow(c: &mut Canvas, from: Point, to: Point, kind: ArrowKind, label: Option<&str>) {
    // Elbow: horizontal first, then vertical.
    let corner = Point::new(to.x, from.y);
    if from.y == to.y {
        c.hline(from.x, to.x, from.y);
    } else if from.x == to.x {
        c.vline(from.x, from.y, to.y);
    } else {
        c.hline(from.x, corner.x, from.y);
        c.vline(corner.x, corner.y, to.y);
        c.put(corner.x, corner.y, '+');
    }
    // Arrowhead at `to`.
    let head = match kind {
        ArrowKind::None => None,
        ArrowKind::Single | ArrowKind::Double => Some(if from.y == to.y {
            if to.x >= from.x {
                '>'
            } else {
                '<'
            }
        } else if to.y >= from.y {
            'v'
        } else {
            '^'
        }),
    };
    if let Some(hc) = head {
        c.put(to.x, to.y, hc);
        if kind == ArrowKind::Double {
            // Double the head one cell before the tip.
            match hc {
                '>' => c.put(to.x - 1, to.y, '>'),
                '<' => c.put(to.x + 1, to.y, '<'),
                'v' => c.put(to.x, to.y - 1, 'v'),
                '^' => c.put(to.x, to.y + 1, '^'),
                _ => {}
            }
        }
    }
    if let Some(l) = label {
        let mx = (from.x + to.x) / 2;
        let my = from.y.min(to.y);
        c.text(mx - l.chars().count() as i32 / 2, my - 1, l);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scene::{Element, FrameStyle};
    use isis_core::FillPattern;

    #[test]
    fn renders_title_and_frame() {
        let mut s = Scene::new("Instrumental_Music");
        s.push(Element::Frame {
            rect: Rect::new(0, 0, 12, 4),
            title: Some("musicians".into()),
            style: FrameStyle::Window,
        });
        let out = render(&s);
        assert!(out.contains("== Instrumental_Music =="));
        assert!(out.contains("musicians"));
        assert!(out.contains("+"));
    }

    #[test]
    fn rendering_records_observability_counters() {
        let obs = isis_obs::global();
        obs.set_enabled(true);
        let renders = obs.registry().counter("views.renders");
        let elements = obs.registry().counter("views.render.elements");
        let (r0, e0) = (renders.get(), elements.get());
        let mut s = Scene::new("obs");
        s.push(Element::Frame {
            rect: Rect::new(0, 0, 8, 3),
            title: None,
            style: FrameStyle::Window,
        });
        let _ = render(&s);
        let _ = crate::render::svg::render(&s);
        assert_eq!(renders.get(), r0 + 2);
        assert_eq!(elements.get(), e0 + 2);
        obs.set_enabled(false);
    }

    #[test]
    fn emphasis_conventions() {
        let mut s = Scene::new("t");
        s.push(Element::Text {
            at: Point::new(2, 0),
            text: "flute".into(),
            emphasis: Emphasis::Bold,
        });
        s.push(Element::Text {
            at: Point::new(2, 1),
            text: "STRINGS".into(),
            emphasis: Emphasis::Reverse,
        });
        let out = render(&s);
        assert!(out.contains("*flute*"));
        assert!(out.contains("#STRINGS#"));
    }

    #[test]
    fn swatches_and_hand() {
        let mut s = Scene::new("t");
        s.push(Element::Swatch {
            at: Point::new(0, 0),
            fill: FillPattern::nth(0),
            set_border: true,
        });
        s.push(Element::Swatch {
            at: Point::new(6, 0),
            fill: FillPattern::nth(1),
            set_border: false,
        });
        s.push(Element::Hand {
            at: Point::new(12, 0),
        });
        let out = render(&s);
        assert!(out.contains("[#]"));
        assert!(out.contains(":"));
        assert!(out.contains("=>"));
    }

    #[test]
    fn arrows_have_heads_and_labels() {
        let mut s = Scene::new("t");
        s.push(Element::Arrow {
            from: Point::new(0, 2),
            to: Point::new(10, 2),
            kind: ArrowKind::Double,
            label: Some("plays".into()),
        });
        let out = render(&s);
        assert!(out.contains(">>"));
        assert!(out.contains("plays"));
        let mut s2 = Scene::new("t");
        s2.push(Element::Arrow {
            from: Point::new(0, 1),
            to: Point::new(0, 5),
            kind: ArrowKind::Single,
            label: None,
        });
        let out2 = render(&s2);
        assert!(out2.contains('v'));
    }

    #[test]
    fn elbow_arrows_bend() {
        let mut s = Scene::new("t");
        s.push(Element::Arrow {
            from: Point::new(0, 0),
            to: Point::new(6, 4),
            kind: ArrowKind::Single,
            label: None,
        });
        let out = render(&s);
        assert!(out.contains('-'));
        assert!(out.contains('|'));
        assert!(out.contains('v'));
    }

    #[test]
    fn deterministic() {
        let mut s = Scene::new("t");
        s.push(Element::Frame {
            rect: Rect::new(0, 0, 8, 3),
            title: None,
            style: FrameStyle::Menu,
        });
        assert_eq!(render(&s), render(&s));
    }
}
