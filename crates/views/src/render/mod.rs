//! Renderers: scenes to ASCII text or SVG documents.

pub mod ascii;
pub mod svg;
