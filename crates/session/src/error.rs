//! Error type for the interaction engine.

use std::fmt;

use isis_core::{CommitConflict, CoreError};
use isis_query::QueryError;
use isis_store::StoreError;

/// Errors raised by session commands.
#[derive(Debug)]
#[non_exhaustive]
pub enum SessionError {
    /// The command is not available in the current mode/view.
    WrongMode(String),
    /// The command needs a schema selection of a kind that is not current.
    BadSelection(String),
    /// The command needs a data selection and none exists.
    NothingSelected,
    /// A worksheet command arrived while no worksheet is open (or no atom
    /// is being edited).
    NoWorksheet(String),
    /// Nothing to undo / redo.
    NothingToUndo,
    /// No database directory is attached (load/save unavailable).
    NoStore,
    /// A commit lost the first-committer-wins race (or was vetoed by the
    /// durability hook); re-pin and retry.
    Conflict(CommitConflict),
    /// `pull` was refused because the session has uncommitted changes;
    /// commit or discard them first.
    DirtySnapshot,
    /// The shared database's durability hook is poisoned: an earlier
    /// partial failure left disk and memory possibly disagreeing, so a
    /// new session pinned at this head could read or publish state that
    /// was never made durable. Reopen the store to heal.
    Poisoned(String),
    /// An engine error.
    Core(CoreError),
    /// A query-layer error (planning, compiled programs, parallel workers).
    Query(QueryError),
    /// A storage error.
    Store(StoreError),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::WrongMode(m) => write!(f, "not available here: {m}"),
            SessionError::BadSelection(m) => write!(f, "bad selection: {m}"),
            SessionError::NothingSelected => write!(f, "no data selection"),
            SessionError::NoWorksheet(m) => write!(f, "no worksheet: {m}"),
            SessionError::NothingToUndo => write!(f, "nothing to undo/redo"),
            SessionError::NoStore => write!(f, "no database directory attached"),
            SessionError::Conflict(e) => write!(f, "{e}"),
            SessionError::DirtySnapshot => write!(
                f,
                "uncommitted changes; commit or discard them before pulling"
            ),
            SessionError::Poisoned(detail) => write!(
                f,
                "shared database is poisoned (reopen the store to heal): {detail}"
            ),
            SessionError::Core(e) => write!(f, "{e}"),
            SessionError::Query(e) => write!(f, "{e}"),
            SessionError::Store(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SessionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SessionError::Core(e) => Some(e),
            SessionError::Query(e) => Some(e),
            SessionError::Store(e) => Some(e),
            SessionError::Conflict(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for SessionError {
    fn from(e: CoreError) -> Self {
        SessionError::Core(e)
    }
}

impl From<CommitConflict> for SessionError {
    fn from(e: CommitConflict) -> Self {
        SessionError::Conflict(e)
    }
}

impl From<StoreError> for SessionError {
    fn from(e: StoreError) -> Self {
        SessionError::Store(e)
    }
}

impl From<QueryError> for SessionError {
    fn from(e: QueryError) -> Self {
        // Core errors keep their original face: callers match on
        // `SessionError::Core` regardless of which layer raised them.
        match e {
            QueryError::Core(c) => SessionError::Core(c),
            other => SessionError::Query(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = SessionError::from(CoreError::Predefined);
        assert!(e.source().is_some());
        assert!(SessionError::NothingToUndo.source().is_none());
        assert!(SessionError::WrongMode("x".into())
            .to_string()
            .contains("x"));
    }
}
