//! The session engine: applies [`Command`]s to the database and interactive
//! state, and builds the current view's [`Scene`].

use isis_core::{
    Atom, AttrDerivation, AttrId, Change, ChangeSet, ClassId, CommitReceipt, CoreError, Database,
    Map, OrderedSet, Predicate, Rhs, SchemaNode, SharedDatabase, ValueClass,
};
use isis_query::{DerivedMaintainer, IndexService};
use isis_store::{RecoveryReport, StoreDir};
use isis_views::{
    data_view, forest_view, network_view, worksheet_view, DataViewInput, ForestViewOptions,
    PageSpec, Scene, WorksheetInput,
};

use crate::command::Command;
use crate::error::SessionError;
use crate::state::{AtomDraft, Mode, RefreshPolicy, Selection, WorksheetState, WsTarget};

/// How many prompt lines the text window shows.
const PROMPT_LINES: usize = 3;
/// Bound on the undo stack.
const UNDO_DEPTH: usize = 64;

/// A snapshot for undo/redo: the database plus the selections it anchors.
#[derive(Debug, Clone)]
struct Snapshot {
    db: Database,
    selection: Option<Selection>,
    pages: Vec<PageSpec>,
}

/// An interactive ISIS session over one database.
///
/// ```
/// use isis_session::{Command, Session};
///
/// let mut db = isis_core::Database::new("demo");
/// let people = db.create_baseclass("people").unwrap();
/// let ada = db.insert_entity(people, "Ada").unwrap();
///
/// let mut session = Session::builder(db).build();
/// session.apply(Command::PickByName("people".into()))?;
/// session.apply(Command::ViewContents)?;       // → the data level
/// session.apply(Command::SelectEntity(ada))?;  // select/reject
/// let scene = session.scene()?;                // render the current view
/// assert!(scene.has_text_with("Ada", isis_views::Emphasis::Bold));
/// # Ok::<(), isis_session::SessionError>(())
/// ```
///
/// Multiple sessions share one database through a
/// [`SharedDatabase`] handle (snapshot isolation; see DESIGN.md §6):
///
/// ```
/// use isis_core::SharedDatabase;
/// use isis_session::Session;
///
/// let mut db = isis_core::Database::new("demo");
/// let people = db.create_baseclass("people").unwrap();
/// let shared = SharedDatabase::new(db);
///
/// let mut writer = Session::open(&shared).build();
/// let reader = Session::open(&shared).build();
///
/// writer.transact(|db| db.insert_entity(people, "Ada"))?;
/// writer.commit_changes()?;
///
/// // The reader is pinned: it re-pins explicitly to observe the commit.
/// assert!(reader.database().entity_by_name(people, "Ada").is_err());
/// # Ok::<(), isis_session::SessionError>(())
/// ```
#[derive(Debug)]
pub struct Session {
    /// The shared handle this session is a participant of. A session built
    /// from a plain [`Database`] gets a private handle of its own, so the
    /// single-owner API is the one-session special case of the shared one.
    shared: SharedDatabase,
    /// The epoch `db` was pinned at (or the epoch of the last successful
    /// commit). The write set of [`Session::commit_changes`] is everything
    /// `db` recorded after this epoch.
    base_epoch: u64,
    /// `true` once the session has buffered uncommitted user mutations.
    /// Derived-state maintenance does not count: it is recomputed per
    /// snapshot and never published by a commit.
    dirty: bool,
    /// The pinned local snapshot all reads and buffered writes go through.
    db: Database,
    mode: Mode,
    selection: Option<Selection>,
    /// The data level's page stack (persists across level switches, per
    /// Diagram 1: D is only changed at the data level).
    pages: Vec<PageSpec>,
    worksheet: Option<WorksheetState>,
    undo: Vec<Snapshot>,
    redo: Vec<Snapshot>,
    messages: Vec<String>,
    store: Option<StoreDir>,
    stopped: bool,
    /// Manual box placements in the forest view (view state, not data).
    offsets: Vec<(SchemaNode, (i32, i32))>,
    /// Forest-view panning offset.
    pan: (i32, i32),
    /// When derived subclasses and derived attributes are re-evaluated (an
    /// extension: the paper leaves them stale until the next commit, §2).
    policy: RefreshPolicy,
    /// Delta-log epoch the derived state was last synchronised to.
    refresh_cursor: u64,
    /// Incremental maintainers for the committed derived subclasses.
    /// `None` after anything that invalidates them (database swap, schema
    /// change) — the next refresh rebuilds them from scratch.
    maintainers: Option<Vec<DerivedMaintainer>>,
    /// The shared attribute-index service: one maintained set of indexes
    /// read by the derived-class maintainers and by ad-hoc queries
    /// ([`Session::query`]). Built alongside the maintainers in
    /// [`Session::full_refresh`]; advanced only by the refresh pipeline's
    /// delta drain, so it never runs ahead of `refresh_cursor`.
    service: Option<IndexService>,
    /// What recovery found the last time a database was loaded from the
    /// store this session (the *doctor* command reprints it).
    last_recovery: Option<RecoveryReport>,
    /// Worker threads for compiled predicate evaluation (1 = serial). The
    /// pool itself lives on the index service and is spawned lazily on the
    /// first parallel query, then reused across queries.
    eval_threads: usize,
}

/// Where a session's database comes from: a database it owns outright
/// (wrapped in a private [`SharedDatabase`]) or a shared handle other
/// sessions also participate in.
#[derive(Debug)]
enum Source {
    Owned(Box<Database>),
    Shared(SharedDatabase),
}

/// Configures and builds a [`Session`]: attach a store, pick the refresh
/// policy, bound the database's delta log. This is the one construction
/// path — [`Session::builder`] starts from an owned database,
/// [`Session::open`] from a [`SharedDatabase`]; the deprecated
/// `Session::new` / `Session::with_store` are thin wrappers over it.
///
/// ```
/// use isis_session::Session;
///
/// let db = isis_core::Database::new("demo");
/// let session = Session::builder(db).delta_capacity(1 << 10).build();
/// assert_eq!(session.database().delta_capacity(), 1 << 10);
/// ```
#[derive(Debug)]
pub struct SessionBuilder {
    source: Source,
    store: Option<StoreDir>,
    policy: RefreshPolicy,
    delta_capacity: Option<usize>,
    eval_threads: usize,
}

impl SessionBuilder {
    /// Attaches a database directory (enables *load* / *save*).
    pub fn store(mut self, store: StoreDir) -> SessionBuilder {
        self.store = Some(store);
        self
    }

    /// Sets the initial refresh policy.
    pub fn refresh_policy(mut self, policy: RefreshPolicy) -> SessionBuilder {
        self.policy = policy;
        self
    }

    /// Bounds the database's delta-log window (how many changes incremental
    /// consumers can catch up on before falling back to a rebuild).
    pub fn delta_capacity(mut self, capacity: usize) -> SessionBuilder {
        self.delta_capacity = Some(capacity);
        self
    }

    /// Sets how many worker threads [`Session::query`] may use for compiled
    /// predicate evaluation (default 1 = serial). The persistent pool is
    /// spawned lazily on the first query large enough to split, and reused
    /// afterwards.
    ///
    /// ```
    /// use isis_session::Session;
    ///
    /// let db = isis_core::Database::new("demo");
    /// let session = Session::builder(db).eval_threads(4).build();
    /// assert_eq!(session.eval_threads(), 4);
    /// ```
    pub fn eval_threads(mut self, threads: usize) -> SessionBuilder {
        self.eval_threads = threads.max(1);
        self
    }

    /// Builds the session like [`SessionBuilder::build`], but refuses to
    /// pin a [`SharedDatabase`] whose durability hook is poisoned. A
    /// poisoned hook means an earlier partial failure (a failed WAL
    /// rollback, a half-finished checkpoint) left disk and memory
    /// possibly disagreeing: a session silently pinned at such a head
    /// could serve — or replicate — state that was never made durable.
    /// Surfaces [`SessionError::Poisoned`] instead; reopen the store to
    /// heal. Sessions over an owned database never fail this check.
    pub fn try_build(self) -> Result<Session, SessionError> {
        if let Source::Shared(shared) = &self.source {
            if shared.hook_poisoned() {
                return Err(SessionError::Poisoned(
                    "the head's durability hook refused further commits after a partial \
                     failure; opening a session here could observe non-durable state"
                        .into(),
                ));
            }
        }
        Ok(self.build())
    }

    /// Builds the session: wraps an owned database in a private
    /// [`SharedDatabase`] (or joins the given one) and pins a snapshot.
    pub fn build(self) -> Session {
        let SessionBuilder {
            source,
            store,
            policy,
            delta_capacity,
            eval_threads,
        } = self;
        let shared = match source {
            Source::Owned(mut db) => {
                if let Some(capacity) = delta_capacity {
                    db.set_delta_capacity(capacity);
                }
                SharedDatabase::new(*db)
            }
            Source::Shared(shared) => shared,
        };
        let mut db = shared.pin();
        if let Some(capacity) = delta_capacity {
            // On a shared handle this bounds the *local* buffer only; the
            // head keeps its own window (which bounds commit staleness).
            db.set_delta_capacity(capacity);
        }
        let base_epoch = db.delta_epoch();
        Session {
            shared,
            base_epoch,
            dirty: false,
            db,
            mode: Mode::Forest,
            selection: None,
            pages: Vec::new(),
            worksheet: None,
            undo: Vec::new(),
            redo: Vec::new(),
            messages: Vec::new(),
            store,
            stopped: false,
            offsets: Vec::new(),
            pan: (0, 0),
            policy,
            refresh_cursor: 0,
            maintainers: None,
            service: None,
            last_recovery: None,
            eval_threads,
        }
    }
}

impl Session {
    /// Starts a session on an in-memory database (no load/save).
    #[deprecated(note = "use Session::builder(db).build()")]
    pub fn new(db: Database) -> Session {
        Session::builder(db).build()
    }

    /// Starts configuring a session that owns its database (store, refresh
    /// policy, delta-log capacity).
    pub fn builder(db: Database) -> SessionBuilder {
        SessionBuilder {
            source: Source::Owned(Box::new(db)),
            store: None,
            policy: RefreshPolicy::Manual,
            delta_capacity: None,
            eval_threads: 1,
        }
    }

    /// Starts configuring a session on a [`SharedDatabase`] other sessions
    /// may also have open. The session pins a snapshot of the head at
    /// [`SessionBuilder::build`] time; see [`Session::commit_changes`] /
    /// [`Session::pull`] for how it publishes and observes commits.
    pub fn open(shared: &SharedDatabase) -> SessionBuilder {
        SessionBuilder {
            source: Source::Shared(shared.clone()),
            store: None,
            policy: RefreshPolicy::Manual,
            delta_capacity: None,
            eval_threads: 1,
        }
    }

    /// Starts a session attached to a database directory.
    #[deprecated(note = "use Session::builder(db).store(store).build()")]
    pub fn with_store(db: Database, store: StoreDir) -> Session {
        Session::builder(db).store(store).build()
    }

    /// What recovery found the last time a database was loaded from the
    /// store this session, if any load has happened.
    pub fn last_recovery(&self) -> Option<&RecoveryReport> {
        self.last_recovery.as_ref()
    }

    /// Read access to the pinned snapshot.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Mutable access to the pinned snapshot. Mutations land in the local
    /// buffer like any other write — they cannot bypass conflict detection,
    /// because [`Session::commit_changes`] extracts the write set from the
    /// delta log, not from the call path — but this accessor cannot run the
    /// refresh pipeline afterwards, which is why it is deprecated.
    #[deprecated(note = "use transact() so refresh policy and dirty tracking apply")]
    pub fn database_mut(&mut self) -> &mut Database {
        self.dirty = true;
        &mut self.db
    }

    /// The explicit write-transaction entry point: runs `f` against the
    /// pinned snapshot, records an undo point, marks the session dirty, and
    /// applies the refresh policy. The buffered changes publish on
    /// [`Session::commit_changes`].
    pub fn transact<R>(
        &mut self,
        f: impl FnOnce(&mut Database) -> isis_core::Result<R>,
    ) -> Result<R, SessionError> {
        self.snapshot();
        let out = f(&mut self.db)?;
        self.refresh_after_data_mod()?;
        Ok(out)
    }

    /// The shared handle this session participates in — clone it to open
    /// more sessions on the same database.
    pub fn shared(&self) -> &SharedDatabase {
        &self.shared
    }

    /// The epoch the local snapshot is pinned at.
    pub fn pinned_epoch(&self) -> u64 {
        self.base_epoch
    }

    /// `true` if the session has buffered uncommitted mutations.
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    /// Publishes everything buffered since the pin (or the last commit) to
    /// the shared head: first committer wins, conflicting concurrent
    /// commits surface as [`SessionError::Conflict`]. On success the
    /// session is clean and pinned at the new head; the undo history is
    /// cleared (a commit is a transaction boundary).
    pub fn commit_changes(&mut self) -> Result<CommitReceipt, SessionError> {
        let receipt = self.shared.commit(self.base_epoch, &self.db)?;
        if receipt.rebased || receipt.epoch != self.db.delta_epoch() {
            // The head ran ahead (our write set was replayed onto it, or
            // concurrent commits landed): re-pin.
            self.db = self.shared.pin();
            self.invalidate_refresh();
            self.revalidate_interactive_state();
        }
        self.base_epoch = receipt.epoch;
        self.dirty = false;
        self.undo.clear();
        self.redo.clear();
        self.refresh_after_commit()?;
        Ok(receipt)
    }

    /// Runs `f` as a transaction and commits it, retrying the whole
    /// cycle (re-pin at the new head, re-run `f`, re-commit) with the
    /// given backoff when the commit loses the first-committer-wins race.
    /// `f` must therefore be safe to re-run: it sees a *fresh* snapshot
    /// on every attempt, so name lookups belong inside the closure, not
    /// captured from before it.
    ///
    /// Only retryable conflicts are retried (see
    /// [`CommitConflict::is_retryable`](isis_core::CommitConflict::is_retryable)):
    /// a durability veto means the store refused the write and repeating
    /// it cannot help. Errors from `f` itself propagate immediately with
    /// the buffered changes discarded. Refuses to start while the session
    /// is dirty — buffered changes would be swept into the first commit.
    ///
    /// ```
    /// use isis_core::{RetryBackoff, SharedDatabase};
    /// use isis_session::Session;
    ///
    /// let mut db = isis_core::Database::new("demo");
    /// let people = db.create_baseclass("people").unwrap();
    /// let shared = SharedDatabase::new(db);
    /// let mut session = Session::open(&shared).build();
    /// let receipt = session.transact_with_retry(&RetryBackoff::default(), |db| {
    ///     db.insert_entity(people, "Ada")?;
    ///     Ok(())
    /// })?;
    /// assert!(!receipt.rebased);
    /// # Ok::<(), isis_session::SessionError>(())
    /// ```
    pub fn transact_with_retry(
        &mut self,
        backoff: &isis_core::RetryBackoff,
        mut f: impl FnMut(&mut Database) -> isis_core::Result<()>,
    ) -> Result<CommitReceipt, SessionError> {
        if self.dirty {
            return Err(SessionError::DirtySnapshot);
        }
        let mut attempt: u32 = 0;
        loop {
            if let Err(e) = self.transact(&mut f) {
                self.discard_changes()?;
                return Err(e);
            }
            match self.commit_changes() {
                Ok(receipt) => {
                    let obs = isis_obs::global();
                    if obs.enabled() {
                        obs.observe("session.commit.retry_attempts", u64::from(attempt));
                    }
                    return Ok(receipt);
                }
                Err(SessionError::Conflict(c))
                    if c.is_retryable() && attempt < backoff.max_retries =>
                {
                    self.discard_changes()?;
                    let delay = backoff.delay(attempt);
                    let obs = isis_obs::global();
                    if obs.enabled() {
                        obs.count("session.commit.retries", 1);
                        obs.observe("session.commit.backoff_ns", delay.as_nanos() as u64);
                    }
                    if !delay.is_zero() {
                        std::thread::sleep(delay);
                    }
                    attempt += 1;
                }
                Err(e) => {
                    self.discard_changes()?;
                    return Err(e);
                }
            }
        }
    }

    /// Re-pins the snapshot at the current shared head, making concurrent
    /// commits visible. Refuses while dirty ([`SessionError::DirtySnapshot`])
    /// — commit or [`Session::discard_changes`] first.
    pub fn pull(&mut self) -> Result<(), SessionError> {
        if self.dirty {
            return Err(SessionError::DirtySnapshot);
        }
        if self.shared.epoch() == self.base_epoch {
            return Ok(());
        }
        self.repin()?;
        Ok(())
    }

    /// Drops all buffered changes and re-pins at the current head.
    pub fn discard_changes(&mut self) -> Result<(), SessionError> {
        self.worksheet = None;
        self.repin()
    }

    fn repin(&mut self) -> Result<(), SessionError> {
        self.db = self.shared.pin();
        self.base_epoch = self.db.delta_epoch();
        self.dirty = false;
        self.undo.clear();
        self.redo.clear();
        self.invalidate_refresh();
        self.revalidate_interactive_state();
        self.refresh_after_commit()
    }

    /// After a re-pin the interactive anchors may dangle (a concurrent
    /// commit deleted the selected class or entity); drop the ones that no
    /// longer resolve rather than letting views error.
    fn revalidate_interactive_state(&mut self) {
        let ok = match self.selection {
            None => true,
            Some(Selection::Class(c)) => self.db.class(c).is_ok(),
            Some(Selection::Attr(a)) => self.db.attr(a).is_ok(),
            Some(Selection::Grouping(g)) => self.db.grouping(g).is_ok(),
        };
        if !ok {
            self.selection = None;
        }
        let db = &self.db;
        self.pages.retain(|p| match p.node {
            SchemaNode::Class(c) => db.class(c).is_ok(),
            SchemaNode::Grouping(g) => db.grouping(g).is_ok(),
        });
    }

    /// The current mode (view).
    pub fn mode(&self) -> &Mode {
        &self.mode
    }

    /// The current schema selection.
    pub fn selection(&self) -> Option<Selection> {
        self.selection
    }

    /// The data-level page stack.
    pub fn pages(&self) -> &[PageSpec] {
        &self.pages
    }

    /// The open worksheet, if any.
    pub fn worksheet(&self) -> Option<&WorksheetState> {
        self.worksheet.as_ref()
    }

    /// `true` once *stop* has been applied.
    pub fn stopped(&self) -> bool {
        self.stopped
    }

    /// The text-window message log (newest last).
    pub fn messages(&self) -> &[String] {
        &self.messages
    }

    /// The current refresh policy.
    pub fn refresh_policy(&self) -> RefreshPolicy {
        self.policy
    }

    /// Worker threads available to [`Session::query`] (1 = serial).
    pub fn eval_threads(&self) -> usize {
        self.eval_threads
    }

    /// Reconfigures how many worker threads [`Session::query`] may use.
    /// Takes effect on the next query; the service's persistent pool is
    /// resized lazily.
    pub fn set_eval_threads(&mut self, threads: usize) {
        self.eval_threads = threads.max(1);
        if let Some(svc) = self.service.as_ref() {
            svc.set_eval_threads(self.eval_threads);
        }
    }

    /// Chooses when derived subclasses and attributes are re-evaluated
    /// ([`RefreshPolicy::Manual`] by default: the paper keeps derivations
    /// stale until the next commit).
    pub fn set_refresh_policy(&mut self, policy: RefreshPolicy) {
        self.policy = policy;
    }

    /// Turns automatic re-evaluation of derived subclasses and attributes
    /// after data modifications on or off.
    #[deprecated(note = "use set_refresh_policy(RefreshPolicy::Immediate | Manual)")]
    pub fn set_auto_refresh(&mut self, on: bool) {
        self.policy = if on {
            RefreshPolicy::Immediate
        } else {
            RefreshPolicy::Manual
        };
    }

    /// Mark the incremental refresh state as unusable (the database was
    /// replaced wholesale: load, undo, redo). Epochs of different database
    /// lines are not comparable, so the next refresh must rebuild.
    fn invalidate_refresh(&mut self) {
        self.maintainers = None;
        self.service = None;
    }

    fn refresh_after_data_mod(&mut self) -> Result<(), SessionError> {
        if self.policy == RefreshPolicy::Immediate {
            self.refresh_derived()?;
        }
        Ok(())
    }

    fn refresh_after_commit(&mut self) -> Result<(), SessionError> {
        if matches!(
            self.policy,
            RefreshPolicy::OnCommit | RefreshPolicy::Immediate
        ) {
            self.refresh_derived()?;
        }
        Ok(())
    }

    /// Brings every derived subclass and derived attribute up to date.
    ///
    /// The fast path consumes the core delta log from the last synchronised
    /// epoch and re-evaluates only affected candidates (via
    /// [`DerivedMaintainer::apply_changes`]). A full re-evaluation happens
    /// only when the window contains schema edits, was evicted, or the
    /// database was replaced since the last refresh.
    pub fn refresh_derived(&mut self) -> Result<(), SessionError> {
        let obs = isis_obs::global();
        let _span = obs.span("session.refresh.drain");
        let needs_full = self.maintainers.is_none()
            || self.service.is_none()
            || match self.db.changes_since(self.refresh_cursor) {
                None => true,
                Some(cs) => cs.has_schema_changes(),
            };
        if needs_full {
            return self.full_refresh();
        }
        // Maintenance writes (membership changes, derived-attr values) are
        // themselves recorded, so drain the log in rounds until it runs
        // dry; a bound guards against pathological predicate interactions.
        const MAX_ROUNDS: usize = 8;
        for _ in 0..MAX_ROUNDS {
            let cs = match self.db.changes_since(self.refresh_cursor) {
                Some(cs) => cs,
                None => return self.full_refresh(),
            };
            if cs.is_empty() {
                return Ok(());
            }
            if cs.has_schema_changes() {
                return self.full_refresh();
            }
            obs.count("session.refresh.rounds", 1);
            self.refresh_cursor = self.db.delta_epoch();
            let mut maints = self.maintainers.take().unwrap_or_default();
            let mut service = self.service.take().unwrap_or_default();
            let outcome = self.apply_round(&mut maints, &mut service, &cs);
            self.maintainers = Some(maints);
            self.service = Some(service);
            outcome?;
        }
        // Did not quiesce within the bound; settle with a full pass.
        self.full_refresh()
    }

    /// One delta round, with a single shared index drain: every maintainer
    /// first collects its affected candidates against the *pre-state*
    /// indexes, the service consumes the window once, the maintainers
    /// re-collect against the post-state indexes and settle, and finally
    /// the derived attributes the window touches are refreshed.
    fn apply_round(
        &mut self,
        maints: &mut [DerivedMaintainer],
        service: &mut IndexService,
        cs: &ChangeSet,
    ) -> Result<(), SessionError> {
        let obs = isis_obs::global();
        let _round = obs.span("session.refresh.round");
        obs.event("session.refresh.window", || {
            format!("{} change(s), {} maintainer(s)", cs.len(), maints.len())
        });
        // Pre-state: the shared indexes still reflect the old attribute
        // values, so walk-backs find candidates that *used to* reach a
        // changed entity.
        let mut affected: Vec<OrderedSet> = Vec::with_capacity(maints.len());
        {
            let _collect = obs.span("session.refresh.collect");
            for m in maints.iter() {
                affected.push(m.collect_affected(&self.db, &*service, cs)?);
            }
        }
        // The one drain: both the maintainers and the ad-hoc query planner
        // read from these indexes afterwards.
        {
            let _apply = obs.span("session.refresh.apply");
            service.apply(&self.db, cs)?;
        }
        // Post-state: candidates that *now* reach a changed entity.
        {
            let _collect = obs.span("session.refresh.collect");
            for (m, aff) in maints.iter().zip(affected.iter_mut()) {
                aff.extend_from(&m.collect_affected(&self.db, &*service, cs)?);
            }
        }
        {
            let _settle = obs.span("session.refresh.settle");
            // Large affected sets settle over the service's worker pool —
            // the same one parallel queries use — when the session is
            // configured for parallel evaluation.
            let pool = (self.eval_threads > 1).then(|| {
                service.eval_pool().set_threads(self.eval_threads);
                service.eval_pool()
            });
            for (m, aff) in maints.iter().zip(affected.iter()) {
                let (added, removed) = m
                    .settle_with(&mut self.db, aff, pool)
                    .map_err(SessionError::Query)?;
                if added + removed > 0 {
                    let name = self.db.class(m.class())?.name.clone();
                    self.say(format!(
                        "{name} re-evaluated: +{added} -{removed} members (delta)"
                    ));
                }
            }
        }
        let touched = cs.touched_attrs();
        let membership_classes: Vec<ClassId> =
            cs.iter()
                .filter_map(|c| match c {
                    Change::MembershipAdded { class, .. }
                    | Change::MembershipRemoved { class, .. } => Some(*class),
                    _ => None,
                })
                .collect();
        let derived_attrs: Vec<(AttrId, AttrDerivation)> = self
            .db
            .attrs()
            .filter_map(|(id, a)| a.derivation.clone().map(|d| (id, d)))
            .collect();
        for (attr, derivation) in derived_attrs {
            let deps = derivation_attrs(&derivation);
            let rec = self.db.attr(attr)?;
            let owner = rec.owner;
            let value_class = match rec.value_class {
                ValueClass::Class(c) => Some(c),
                ValueClass::Grouping(_) => None,
            };
            let affected = touched.iter().any(|a| *a != attr && deps.contains(a))
                || membership_classes
                    .iter()
                    .any(|c| *c == owner || Some(*c) == value_class);
            if affected {
                self.db.refresh_derived_attr(attr)?;
            }
        }
        Ok(())
    }

    /// Full fallback: re-evaluates every derived subclass and derived
    /// attribute, rebuilds the maintainers, and re-anchors the cursor.
    fn full_refresh(&mut self) -> Result<(), SessionError> {
        let obs = isis_obs::global();
        let _span = obs.span("session.refresh.full");
        obs.count("session.refresh.fulls", 1);
        let derived_classes: Vec<ClassId> = self
            .db
            .classes()
            .filter(|(_, c)| c.is_derived())
            .map(|(id, _)| id)
            .collect();
        for c in &derived_classes {
            let before = self.db.members(*c)?.len();
            let after = self.db.refresh_derived_class(*c)?;
            if before != after {
                let name = self.db.class(*c)?.name.clone();
                self.say(format!("{name} re-evaluated: {before} -> {after} members"));
            }
        }
        let derived_attrs: Vec<AttrId> = self
            .db
            .attrs()
            .filter(|(_, a)| a.is_derived())
            .map(|(id, _)| id)
            .collect();
        for a in derived_attrs {
            self.db.refresh_derived_attr(a)?;
        }
        let mut maints = Vec::new();
        for c in derived_classes {
            maints.push(DerivedMaintainer::new(&self.db, c)?);
        }
        // Rebuild the shared index service to cover every attribute any
        // maintainer's predicate traverses; ad-hoc queries benefit from the
        // same postings.
        let mut service = IndexService::new(&self.db);
        for m in &maints {
            for &attr in m.used_attrs() {
                service.ensure_index(&self.db, attr)?;
            }
        }
        service.set_cursor(&self.db);
        service.set_eval_threads(self.eval_threads);
        self.maintainers = Some(maints);
        self.service = Some(service);
        self.refresh_cursor = self.db.delta_epoch();
        Ok(())
    }

    /// The shared index service, once a refresh has built it. The planner
    /// and maintenance counters it carries back the *stats* REPL command.
    pub fn index_service(&self) -> Option<&IndexService> {
        self.service.as_ref()
    }

    /// Answers `{ e ∈ parent | P(e) }` through the shared index service.
    ///
    /// Under [`RefreshPolicy::OnCommit`] / [`RefreshPolicy::Immediate`] the
    /// refresh pipeline is synchronised first, so the answer always comes
    /// from index-pruned evaluation. Under [`RefreshPolicy::Manual`] the
    /// session refuses to advance the shared indexes out from under the
    /// maintainers: if un-drained changes are pending, it falls back to a
    /// direct scan (correct, just unassisted) until the next refresh.
    pub fn query(&mut self, parent: ClassId, pred: &Predicate) -> Result<OrderedSet, SessionError> {
        let obs = isis_obs::global();
        let _span = obs.span("session.query.answer");
        if self.policy != RefreshPolicy::Manual {
            self.refresh_derived()?;
        }
        let in_sync = self.service.is_some()
            && matches!(self.db.changes_since(self.refresh_cursor), Some(cs) if cs.is_empty());
        if in_sync {
            let svc = self.service.as_ref().expect("in_sync implies a service");
            if self.eval_threads > 1 {
                Ok(isis_query::evaluate_pruned_parallel(
                    svc,
                    &self.db,
                    parent,
                    pred,
                    self.eval_threads,
                )?)
            } else {
                Ok(svc.evaluate(&self.db, parent, pred)?)
            }
        } else {
            // The direct scan bypasses the service, so record it there as a
            // sequential-scan query — before this it vanished from `stats`.
            if let Some(svc) = self.service.as_ref() {
                svc.note_unassisted_scan();
            }
            obs.count("session.query.unassisted", 1);
            obs.event("session.query.fallback", || {
                "pending changes under Manual policy; direct extent scan".to_string()
            });
            self.db.validate_predicate(parent, None, pred)?;
            Ok(self.db.evaluate_derived_members(parent, pred)?)
        }
    }

    /// Answers the query exactly like [`Session::query`] and additionally
    /// returns the full [`ExplainRecord`](isis_query::ExplainRecord) — the
    /// access path chosen per atom and why, the program-cache outcome,
    /// plan reuse and pinning, the parallel chunking decision, and
    /// per-phase timings. Counters advance identically to a plain query.
    ///
    /// On the unassisted fallback (Manual policy with pending changes)
    /// the record is marked `cache: "unassisted"` with an empty plan.
    pub fn explain(
        &mut self,
        parent: ClassId,
        pred: &Predicate,
    ) -> Result<(OrderedSet, isis_query::ExplainRecord), SessionError> {
        let obs = isis_obs::global();
        let _span = obs.span("session.query.explain");
        if self.policy != RefreshPolicy::Manual {
            self.refresh_derived()?;
        }
        let in_sync = self.service.is_some()
            && matches!(self.db.changes_since(self.refresh_cursor), Some(cs) if cs.is_empty());
        if in_sync {
            let svc = self.service.as_ref().expect("in_sync implies a service");
            Ok(svc.explain(&self.db, parent, pred)?)
        } else {
            if let Some(svc) = self.service.as_ref() {
                svc.note_unassisted_scan();
            }
            obs.count("session.query.unassisted", 1);
            self.db.validate_predicate(parent, None, pred)?;
            let t = std::time::Instant::now();
            let out = self.db.evaluate_derived_members(parent, pred)?;
            let total_ns = t.elapsed().as_nanos() as u64;
            let scanned = self.db.class(parent).map(|r| r.members.len()).unwrap_or(0);
            let record = isis_query::ExplainRecord::unassisted(
                &self.db,
                parent,
                pred,
                scanned,
                out.len(),
                total_ns,
            );
            obs.flight_event("query.service.explain", || record.to_json());
            Ok((out, record))
        }
    }

    fn say(&mut self, msg: impl Into<String>) {
        self.messages.push(msg.into());
    }

    fn prompt(&self) -> Vec<String> {
        self.messages
            .iter()
            .rev()
            .take(PROMPT_LINES)
            .rev()
            .cloned()
            .collect()
    }

    /// Records an undo point; called before every user mutation, so it
    /// doubles as the dirty-flag hook for commit tracking. (Undo snapshots
    /// are taken after the pin and cleared at every commit/re-pin, so an
    /// undone database still belongs to the pinned line and its epochs
    /// stay commit-comparable.)
    fn snapshot(&mut self) {
        self.dirty = true;
        self.undo.push(Snapshot {
            db: self.db.clone(),
            selection: self.selection,
            pages: self.pages.clone(),
        });
        if self.undo.len() > UNDO_DEPTH {
            self.undo.remove(0);
        }
        self.redo.clear();
    }

    fn selected_class(&self) -> Result<ClassId, SessionError> {
        match self.selection {
            Some(Selection::Class(c)) => Ok(c),
            _ => Err(SessionError::BadSelection(
                "a class must be selected".into(),
            )),
        }
    }

    fn selected_attr(&self) -> Result<AttrId, SessionError> {
        match self.selection {
            Some(Selection::Attr(a)) => Ok(a),
            _ => Err(SessionError::BadSelection(
                "an attribute must be selected".into(),
            )),
        }
    }

    fn top_page(&mut self) -> Result<&mut PageSpec, SessionError> {
        self.pages
            .last_mut()
            .ok_or_else(|| SessionError::WrongMode("no page at the data level".into()))
    }

    fn ws(&mut self) -> Result<&mut WorksheetState, SessionError> {
        self.worksheet
            .as_mut()
            .ok_or_else(|| SessionError::NoWorksheet("open one with (re)define".into()))
    }

    /// Applies one command.
    pub fn apply(&mut self, cmd: Command) -> Result<(), SessionError> {
        let obs = isis_obs::global();
        let _span = obs.span(cmd.span_name());
        obs.count("session.commands", 1);
        match cmd {
            // ---- navigation ------------------------------------------
            Command::Pick(node) => {
                match node {
                    SchemaNode::Class(c) => {
                        self.db.class(c)?;
                        self.selection = Some(Selection::Class(c));
                    }
                    SchemaNode::Grouping(g) => {
                        self.db.grouping(g)?;
                        self.selection = Some(Selection::Grouping(g));
                        if self.mode == Mode::Network {
                            // Groupings have no outgoing arcs; the network
                            // hands back to the forest.
                            self.mode = Mode::Forest;
                        }
                    }
                }
                let name = self.node_name(node)?;
                self.say(format!("schema selection: {name}"));
                Ok(())
            }
            Command::PickByName(name) => {
                let node = self.db.node_by_name(&name)?;
                self.apply(Command::Pick(node))
            }
            Command::PickAttr(a) => {
                self.db.attr(a)?;
                self.selection = Some(Selection::Attr(a));
                let name = self.db.attr(a)?.name.clone();
                self.say(format!("schema selection: attribute {name}"));
                Ok(())
            }
            Command::ViewAssociations => {
                let class = match self.selection {
                    Some(Selection::Class(c)) => c,
                    Some(Selection::Attr(a)) => self.db.attr(a)?.owner,
                    _ => {
                        return Err(SessionError::BadSelection(
                            "view associations needs a class".into(),
                        ))
                    }
                };
                self.selection = Some(Selection::Class(class));
                self.mode = Mode::Network;
                Ok(())
            }
            Command::ViewContents => {
                let node = match self.selection {
                    Some(sel) => sel.as_node().ok_or_else(|| {
                        SessionError::BadSelection("view contents needs a class or grouping".into())
                    })?,
                    None => return Err(SessionError::BadSelection("nothing is selected".into())),
                };
                self.pages = vec![PageSpec::new(node)];
                self.mode = Mode::Data;
                Ok(())
            }
            Command::Pop => {
                match &self.mode {
                    Mode::Network | Mode::Worksheet => {
                        self.mode = Mode::Forest;
                    }
                    Mode::Data => {
                        if self.pages.len() > 1 {
                            self.pages.pop();
                        } else {
                            self.mode = Mode::Forest;
                        }
                    }
                    Mode::ConstantPick { .. } => {
                        // Cancel the temporary visit.
                        self.mode = Mode::Worksheet;
                        self.say("constant selection cancelled");
                    }
                    Mode::Forest => {}
                }
                Ok(())
            }

            // ---- schema modification ----------------------------------
            Command::Rename(name) => {
                self.snapshot();
                match self.selection {
                    Some(Selection::Class(c)) => self.db.rename_class(c, &name)?,
                    Some(Selection::Attr(a)) => self.db.rename_attr(a, &name)?,
                    Some(Selection::Grouping(g)) => self.db.rename_grouping(g, &name)?,
                    None => return Err(SessionError::BadSelection("nothing selected".into())),
                };
                self.say(format!("renamed to {name}"));
                Ok(())
            }
            Command::CreateSubclass(name) => {
                let parent = self.selected_class()?;
                self.snapshot();
                let c = self.db.create_subclass(parent, &name)?;
                self.selection = Some(Selection::Class(c));
                self.say(format!("created subclass {name}"));
                Ok(())
            }
            Command::CreateAttribute { name, multiplicity } => {
                let class = self.selected_class()?;
                self.snapshot();
                // The value class starts at STRINGS; the user then applies
                // (re)specify value class, as in §4.2's all_inst flow.
                let strings = self.db.predefined(isis_core::BaseKind::Strings);
                let a = self
                    .db
                    .create_attribute(class, &name, strings, multiplicity)?;
                self.selection = Some(Selection::Attr(a));
                self.say(format!("created attribute {name} (value class STRINGS)"));
                Ok(())
            }
            Command::SpecifyValueClass(node) => {
                let a = self.selected_attr()?;
                self.snapshot();
                match node {
                    SchemaNode::Class(c) => self.db.respecify_value_class(a, c)?,
                    SchemaNode::Grouping(g) => self.db.respecify_value_class(a, g)?,
                };
                let name = self.node_name(node)?;
                self.say(format!("value class is now {name}"));
                Ok(())
            }
            Command::CreateGrouping { name, attr } => {
                let class = self.selected_class()?;
                self.snapshot();
                let g = self.db.create_grouping(class, &name, attr)?;
                self.selection = Some(Selection::Grouping(g));
                self.say(format!("created grouping {name}"));
                Ok(())
            }
            Command::Delete => {
                self.snapshot();
                match self.selection {
                    Some(Selection::Class(c)) => self.db.delete_class(c)?,
                    Some(Selection::Attr(a)) => self.db.delete_attr(a)?,
                    Some(Selection::Grouping(g)) => self.db.delete_grouping(g)?,
                    None => return Err(SessionError::BadSelection("nothing selected".into())),
                };
                self.selection = None;
                self.say("deleted");
                Ok(())
            }
            Command::DisplayPredicate => {
                let msg = match self.selection {
                    Some(Selection::Class(c)) => match self.db.class(c)?.kind.predicate() {
                        Some(p) => {
                            format!("{}: {}", self.db.class(c)?.name, self.display_predicate(p)?)
                        }
                        None => format!("{} has no defining predicate", self.db.class(c)?.name),
                    },
                    Some(Selection::Grouping(g)) => {
                        let gr = self.db.grouping(g)?;
                        format!(
                            "{}: sets of {} grouped by common value of their {} attribute",
                            gr.name,
                            self.db.class(gr.parent)?.name,
                            self.db.attr(gr.on_attr)?.name
                        )
                    }
                    Some(Selection::Attr(a)) => match &self.db.attr(a)?.derivation {
                        Some(d) => format!("{} derivation: {d}", self.db.attr(a)?.name),
                        None => format!("{} has no derivation", self.db.attr(a)?.name),
                    },
                    None => return Err(SessionError::BadSelection("nothing selected".into())),
                };
                self.say(msg);
                Ok(())
            }

            // ---- data level --------------------------------------------
            Command::SelectEntity(e) => {
                // Identify the page's node first (immutable), validate the
                // pick against it, then toggle the selection.
                let node = match &self.mode {
                    Mode::ConstantPick { page, .. } => page.node,
                    Mode::Data => {
                        self.pages
                            .last()
                            .ok_or_else(|| {
                                SessionError::WrongMode("no page at the data level".into())
                            })?
                            .node
                    }
                    _ => {
                        return Err(SessionError::WrongMode(
                            "select/reject is a data-level command".into(),
                        ))
                    }
                };
                let valid = match node {
                    SchemaNode::Class(c) => self.db.members(c)?.contains(e),
                    SchemaNode::Grouping(g) => {
                        let idx_class = self.db.grouping_index_class(g)?;
                        self.db.members(idx_class)?.contains(e)
                    }
                };
                if !valid {
                    return Err(SessionError::Core(CoreError::NotAMember {
                        entity: e,
                        class: match node {
                            SchemaNode::Class(c) => c,
                            SchemaNode::Grouping(g) => self.db.grouping(g)?.parent,
                        },
                    }));
                }
                let page = match &mut self.mode {
                    Mode::ConstantPick { page, .. } => page,
                    _ => self.pages.last_mut().unwrap(),
                };
                if let Some(i) = page.selected.iter().position(|x| *x == e) {
                    page.selected.remove(i);
                } else {
                    page.selected.push(e);
                }
                Ok(())
            }
            Command::Follow(attr) => {
                if self.mode != Mode::Data {
                    return Err(SessionError::WrongMode(
                        "follow is a data-level command".into(),
                    ));
                }
                let page =
                    self.pages.last().cloned().ok_or_else(|| {
                        SessionError::WrongMode("no page at the data level".into())
                    })?;
                let class = match page.node {
                    SchemaNode::Class(c) => c,
                    SchemaNode::Grouping(_) => {
                        return Err(SessionError::WrongMode(
                            "follow on a grouping page needs no attribute".into(),
                        ))
                    }
                };
                if !self.db.attr_visible_on(attr, class)? {
                    return Err(SessionError::Core(CoreError::AttrNotOnClass {
                        attr,
                        class,
                    }));
                }
                if page.selected.is_empty() {
                    return Err(SessionError::NothingSelected);
                }
                // Raw values (grouping-ranged attributes land on the
                // grouping page with the index sets highlighted).
                let mut targets = Vec::new();
                for e in &page.selected {
                    for v in self.db.attr_value(*e, attr)?.as_set().iter() {
                        if !targets.contains(&v) {
                            targets.push(v);
                        }
                    }
                }
                let target_node = match self.db.attr(attr)?.value_class {
                    ValueClass::Class(c) => SchemaNode::Class(c),
                    ValueClass::Grouping(g) => SchemaNode::Grouping(g),
                };
                let mut new_page = PageSpec::new(target_node);
                new_page.selected = targets;
                new_page.followed_from = Some(attr);
                self.pages.push(new_page);
                // Following changes the schema selection too (the new page
                // becomes the examined object).
                self.selection = Some(match target_node {
                    SchemaNode::Class(c) => Selection::Class(c),
                    SchemaNode::Grouping(g) => Selection::Grouping(g),
                });
                Ok(())
            }
            Command::FollowGrouping => {
                if self.mode != Mode::Data {
                    return Err(SessionError::WrongMode(
                        "follow is a data-level command".into(),
                    ));
                }
                let page =
                    self.pages.last().cloned().ok_or_else(|| {
                        SessionError::WrongMode("no page at the data level".into())
                    })?;
                let g = match page.node {
                    SchemaNode::Grouping(g) => g,
                    SchemaNode::Class(_) => {
                        return Err(SessionError::WrongMode(
                            "follow on a class page needs an attribute".into(),
                        ))
                    }
                };
                if page.selected.is_empty() {
                    return Err(SessionError::NothingSelected);
                }
                // "We merely follow the selected set(s) into the parent
                // class and highlight the members of the set(s)."
                let mut members = Vec::new();
                for idx in &page.selected {
                    for m in self.db.grouping_set_members(g, *idx)?.iter() {
                        if !members.contains(&m) {
                            members.push(m);
                        }
                    }
                }
                let parent = self.db.grouping(g)?.parent;
                let mut new_page = PageSpec::new(SchemaNode::Class(parent));
                new_page.selected = members;
                new_page.followed_from = None;
                self.pages.push(new_page);
                self.selection = Some(Selection::Class(parent));
                Ok(())
            }
            Command::ReassignAttrValue { attr, value } => {
                if self.mode != Mode::Data {
                    return Err(SessionError::WrongMode(
                        "(re)assign is a data-level command".into(),
                    ));
                }
                let selected = self.top_page()?.selected.clone();
                if selected.is_empty() {
                    return Err(SessionError::NothingSelected);
                }
                self.snapshot();
                for e in &selected {
                    self.db.assign_single(*e, attr, value)?;
                }
                let attr_name = self.db.attr(attr)?.name.clone();
                self.say(format!(
                    "assigned {} = {} for {} entities",
                    attr_name,
                    self.db.entity_name(value)?,
                    selected.len()
                ));
                self.refresh_after_data_mod()?;
                Ok(())
            }
            Command::ReassignAttrValues { attr, values } => {
                if self.mode != Mode::Data {
                    return Err(SessionError::WrongMode(
                        "(re)assign is a data-level command".into(),
                    ));
                }
                let selected = self.top_page()?.selected.clone();
                if selected.is_empty() {
                    return Err(SessionError::NothingSelected);
                }
                self.snapshot();
                for e in &selected {
                    self.db.assign_multi(*e, attr, values.iter().copied())?;
                }
                self.say(format!("assigned a set of {} values", values.len()));
                self.refresh_after_data_mod()?;
                Ok(())
            }
            Command::CreateEntity(name) => {
                if self.mode != Mode::Data {
                    return Err(SessionError::WrongMode(
                        "create entity is a data-level command".into(),
                    ));
                }
                let node = self.top_page()?.node;
                let class = node.as_class().ok_or_else(|| {
                    SessionError::BadSelection("entities are created in classes".into())
                })?;
                let base = self.db.class(class)?.base;
                self.snapshot();
                let e = self.db.insert_entity(base, &name)?;
                if base != class {
                    self.db.add_to_class(e, class)?;
                }
                self.say(format!("created entity {name}"));
                self.refresh_after_data_mod()?;
                Ok(())
            }
            Command::MakeSubclass(name) => {
                if self.mode != Mode::Data {
                    return Err(SessionError::WrongMode(
                        "make subclass is a data-level command".into(),
                    ));
                }
                let page = self.top_page()?.clone();
                let class = page.node.as_class().ok_or_else(|| {
                    SessionError::BadSelection("make subclass needs a class page".into())
                })?;
                if page.selected.is_empty() {
                    return Err(SessionError::NothingSelected);
                }
                self.snapshot();
                // Temporary visit to the forest: the new class "automatically
                // becomes the child of the class on the current page"; the
                // hand points at it on return.
                let sub = self.db.create_subclass(class, &name)?;
                for e in &page.selected {
                    self.db.add_to_class(*e, sub)?;
                }
                self.selection = Some(Selection::Class(sub));
                self.say(format!(
                    "made subclass {name} with {} members",
                    page.selected.len()
                ));
                Ok(())
            }
            Command::Move(dx, dy) => {
                let node = match self.selection {
                    Some(sel) => sel.as_node().ok_or_else(|| {
                        SessionError::BadSelection("move applies to classes and groupings".into())
                    })?,
                    None => return Err(SessionError::BadSelection("nothing selected".into())),
                };
                match self.offsets.iter_mut().find(|(n, _)| *n == node) {
                    Some((_, d)) => {
                        d.0 += dx;
                        d.1 += dy;
                    }
                    None => self.offsets.push((node, (dx, dy))),
                }
                Ok(())
            }
            Command::Pan(dx, dy) => {
                self.pan.0 += dx;
                self.pan.1 += dy;
                Ok(())
            }
            Command::Scroll(delta) => {
                let page = self.top_page()?;
                let s = page.scroll as i32 + delta;
                page.scroll = s.max(0) as usize;
                Ok(())
            }

            // ---- worksheet ---------------------------------------------
            Command::DefineMembership => {
                let class = self.selected_class()?;
                let parent = self.db.class(class)?.parent.ok_or_else(|| {
                    SessionError::BadSelection(
                        "baseclass membership is not predicate-defined".into(),
                    )
                })?;
                self.worksheet = Some(WorksheetState::new(
                    WsTarget::Membership(class),
                    parent,
                    None,
                ));
                self.mode = Mode::Worksheet;
                Ok(())
            }
            Command::DefineDerivation => {
                let attr = self.selected_attr()?;
                let rec = self.db.attr(attr)?;
                let value_class = match rec.value_class {
                    ValueClass::Class(c) => c,
                    ValueClass::Grouping(_) => {
                        return Err(SessionError::BadSelection(
                            "derivations onto groupings are not supported".into(),
                        ))
                    }
                };
                let owner = rec.owner;
                self.worksheet = Some(WorksheetState::new(
                    WsTarget::Derivation(attr),
                    value_class,
                    Some(owner),
                ));
                self.mode = Mode::Worksheet;
                Ok(())
            }
            Command::DefineConstraint { name, kind } => {
                let class = self.selected_class()?;
                self.worksheet = Some(WorksheetState::new(
                    WsTarget::Constraint { name, kind },
                    class,
                    None,
                ));
                self.mode = Mode::Worksheet;
                Ok(())
            }
            Command::CheckConstraints => {
                let failing = self.db.check_all_constraints()?;
                if failing.is_empty() {
                    let n = self.db.constraints().count();
                    self.say(format!("all {n} constraints hold"));
                } else {
                    for (id, report) in failing {
                        let name = self.db.constraint(id)?.name.clone();
                        let names: Vec<String> = report
                            .violators
                            .iter()
                            .map(|e| self.db.entity_name(*e).map(str::to_string))
                            .collect::<Result<_, _>>()?;
                        self.say(format!("constraint {name:?} violated by {names:?}"));
                    }
                }
                Ok(())
            }
            Command::WsNewAtom => {
                let ws = self.ws()?;
                let tag = ws.next_tag();
                ws.atoms.push(AtomDraft::new(tag));
                ws.editing = Some(ws.atoms.len() - 1);
                Ok(())
            }
            Command::WsEdit(tag) => {
                let ws = self.ws()?;
                let idx = ws
                    .atoms
                    .iter()
                    .position(|a| a.tag == tag)
                    .ok_or_else(|| SessionError::NoWorksheet(format!("no atom {tag}")))?;
                ws.editing = Some(idx);
                Ok(())
            }
            Command::WsLhsPush(attr) => {
                let candidate = self.ws()?.candidate_class;
                let mut map = self
                    .ws()?
                    .editing_atom()
                    .ok_or_else(|| SessionError::NoWorksheet("no atom being edited".into()))?
                    .lhs
                    .clone();
                map.push(attr);
                self.db.trace_map(candidate, &map)?;
                self.ws()?.editing_atom().unwrap().lhs = map;
                Ok(())
            }
            Command::WsLhsPop => {
                self.ws()?
                    .editing_atom()
                    .ok_or_else(|| SessionError::NoWorksheet("no atom being edited".into()))?
                    .lhs
                    .pop();
                Ok(())
            }
            Command::WsOperator(op) => {
                self.ws()?
                    .editing_atom()
                    .ok_or_else(|| SessionError::NoWorksheet("no atom being edited".into()))?
                    .op = Some(op);
                Ok(())
            }
            Command::WsRhsSelfMap(steps) => {
                let candidate = self.ws()?.candidate_class;
                let map = Map::new(steps);
                self.db.trace_map(candidate, &map)?;
                self.ws()?
                    .editing_atom()
                    .ok_or_else(|| SessionError::NoWorksheet("no atom being edited".into()))?
                    .rhs = Some(Rhs::SelfMap(map));
                Ok(())
            }
            Command::WsRhsSourceMap(steps) => {
                let source = self.ws()?.source_class.ok_or_else(|| {
                    SessionError::NoWorksheet("source maps need a derivation worksheet".into())
                })?;
                let map = Map::new(steps);
                self.db.trace_map(source, &map)?;
                self.ws()?
                    .editing_atom()
                    .ok_or_else(|| SessionError::NoWorksheet("no atom being edited".into()))?
                    .rhs = Some(Rhs::SourceMap(map));
                Ok(())
            }
            Command::WsRhsConstant(start) => {
                let candidate = self.ws()?.candidate_class;
                let lhs = self
                    .ws()?
                    .editing_atom()
                    .ok_or_else(|| SessionError::NoWorksheet("no atom being edited".into()))?
                    .lhs
                    .clone();
                // "constant … temporarily takes the user into the data
                // level, where he may select or create a constant in the
                // class at which the left hand side mapping terminates."
                let class = match start {
                    Some(c) => c,
                    None => self.db.trace_map(candidate, &lhs)?.terminal(),
                };
                self.db.class(class)?;
                self.mode = Mode::ConstantPick {
                    class,
                    page: PageSpec::new(SchemaNode::Class(class)),
                };
                self.say(format!(
                    "select constant(s) in {}",
                    self.db.class(class)?.name
                ));
                Ok(())
            }
            Command::ConstantToggle(e) => self.apply(Command::SelectEntity(e)),
            Command::ConstantDone => {
                let (class, selected) = match &self.mode {
                    Mode::ConstantPick { class, page } => (*class, page.selected.clone()),
                    _ => {
                        return Err(SessionError::WrongMode(
                            "no constant selection in progress".into(),
                        ))
                    }
                };
                self.ws()?
                    .editing_atom()
                    .ok_or_else(|| SessionError::NoWorksheet("no atom being edited".into()))?
                    .rhs = Some(Rhs::Constant {
                    class,
                    anchors: selected.iter().copied().collect(),
                    map: Map::identity(),
                });
                // Return from the temporary visit: schema and data
                // selections are untouched (Diagram 1's loop arrow).
                self.mode = Mode::Worksheet;
                Ok(())
            }
            Command::WsPlaceInClause(i) => {
                if i >= isis_views::worksheet_view::CLAUSE_WINDOWS {
                    return Err(SessionError::NoWorksheet(format!("no clause window {i}")));
                }
                self.ws()?
                    .editing_atom()
                    .ok_or_else(|| SessionError::NoWorksheet("no atom being edited".into()))?
                    .placed = Some(i);
                Ok(())
            }
            Command::WsSwitchAndOr => {
                let ws = self.ws()?;
                ws.form = ws.form.switched();
                Ok(())
            }
            Command::WsHandAssign(steps) => {
                let source = self.ws()?.source_class.ok_or_else(|| {
                    SessionError::NoWorksheet(
                        "the hand operator needs a derivation worksheet".into(),
                    )
                })?;
                let map = Map::new(steps);
                self.db.trace_map(source, &map)?;
                self.ws()?.hand = Some(map);
                Ok(())
            }
            Command::WsCommit => self.commit_worksheet(),

            // ---- session ----------------------------------------------
            Command::Load(name) => {
                let store = self.store.as_ref().ok_or(SessionError::NoStore)?;
                let (db, report) = store.recover(&name)?;
                // Loading replaces the database line wholesale: the session
                // detaches onto a fresh private shared handle (other
                // sessions on the old handle keep the old line).
                self.shared = SharedDatabase::new(db.clone());
                self.base_epoch = db.delta_epoch();
                self.dirty = false;
                self.db = db;
                self.mode = Mode::Forest;
                self.selection = None;
                self.pages.clear();
                self.worksheet = None;
                self.undo.clear();
                self.redo.clear();
                self.invalidate_refresh();
                self.say(format!("loaded database {name}"));
                if !report.is_pristine() {
                    for line in report.to_string().lines() {
                        self.say(line.to_string());
                    }
                }
                self.last_recovery = Some(report);
                Ok(())
            }
            Command::Save(name) => {
                let store = self.store.as_ref().ok_or(SessionError::NoStore)?;
                store.save(&self.db, &name)?;
                self.say(format!("saved database as {name}"));
                Ok(())
            }
            Command::Doctor(name) => {
                match name {
                    Some(name) => {
                        // Diagnose a stored database: a recovery dry run.
                        let store = self.store.as_ref().ok_or(SessionError::NoStore)?;
                        let (_, report) = store.recover(&name)?;
                        for line in report.to_string().lines() {
                            self.say(line.to_string());
                        }
                    }
                    None => match &self.last_recovery {
                        Some(report) => {
                            for line in report.to_string().lines() {
                                self.say(line.to_string());
                            }
                        }
                        None => self.say(
                            "no database loaded from the store yet; try doctor NAME".to_string(),
                        ),
                    },
                }
                Ok(())
            }
            Command::Fsck(name) => {
                let store = self.store.as_ref().ok_or(SessionError::NoStore)?;
                let name = match name {
                    Some(name) => name,
                    None => self.db.name.clone(),
                };
                let report = store.fsck(&name)?;
                for line in report.to_string().lines() {
                    self.say(line.to_string());
                }
                self.say(format!(
                    "fsck {name}: {}",
                    if report.clean() { "clean" } else { "NOT CLEAN" }
                ));
                Ok(())
            }
            Command::Undo => {
                let snap = self.undo.pop().ok_or(SessionError::NothingToUndo)?;
                self.redo.push(Snapshot {
                    db: self.db.clone(),
                    selection: self.selection,
                    pages: self.pages.clone(),
                });
                self.db = snap.db;
                self.selection = snap.selection;
                self.pages = snap.pages;
                self.dirty = true;
                self.invalidate_refresh();
                self.say("undone");
                Ok(())
            }
            Command::Redo => {
                let snap = self.redo.pop().ok_or(SessionError::NothingToUndo)?;
                self.undo.push(Snapshot {
                    db: self.db.clone(),
                    selection: self.selection,
                    pages: self.pages.clone(),
                });
                self.db = snap.db;
                self.selection = snap.selection;
                self.pages = snap.pages;
                self.dirty = true;
                self.invalidate_refresh();
                self.say("redone");
                Ok(())
            }
            Command::Refresh => {
                // A clean session also pulls: "refresh" at the interface
                // means "show me the current state of the world", which on
                // a shared database includes concurrent commits.
                if !self.dirty && self.shared.epoch() != self.base_epoch {
                    self.pull()?;
                    self.say(format!("pulled shared head (epoch {})", self.base_epoch));
                }
                let before = self.messages.len();
                self.refresh_derived()?;
                if self.messages.len() == before {
                    self.say("derived state is up to date");
                }
                Ok(())
            }
            Command::Commit => {
                let receipt = self.commit_changes()?;
                self.say(if receipt.changes == 0 {
                    "nothing to commit".to_string()
                } else {
                    format!(
                        "committed {} change(s) as commit {}{}",
                        receipt.changes,
                        receipt.commits,
                        if receipt.rebased {
                            " (rebased onto concurrent commits)"
                        } else {
                            ""
                        }
                    )
                });
                Ok(())
            }
            Command::Pull => {
                let before = self.base_epoch;
                self.pull()?;
                self.say(if self.base_epoch == before {
                    "already at the shared head".to_string()
                } else {
                    format!("pulled shared head (epoch {})", self.base_epoch)
                });
                Ok(())
            }
            Command::SetRefreshPolicy(policy) => {
                self.set_refresh_policy(policy);
                self.say(format!(
                    "refresh policy: {}",
                    match policy {
                        RefreshPolicy::Manual => "manual",
                        RefreshPolicy::OnCommit => "on commit",
                        RefreshPolicy::Immediate => "immediate",
                    }
                ));
                Ok(())
            }
            Command::Stop => {
                self.stopped = true;
                self.say("stopped");
                Ok(())
            }
        }
    }

    fn commit_worksheet(&mut self) -> Result<(), SessionError> {
        let ws = self
            .worksheet
            .clone()
            .ok_or_else(|| SessionError::NoWorksheet("nothing to commit".into()))?;
        // Hand derivation short-circuits the predicate.
        if let (WsTarget::Derivation(attr), Some(map)) = (ws.target.clone(), ws.hand.clone()) {
            self.snapshot();
            let n = self
                .db
                .commit_derivation(attr, isis_core::AttrDerivation::Assign(map))?;
            self.say(format!("derivation committed for {n} entities"));
            self.worksheet = None;
            self.mode = Mode::Forest;
            self.selection = Some(Selection::Attr(attr));
            return Ok(());
        }
        // Assemble clauses from the placed atoms, in clause-window order.
        let max_clause = ws
            .atoms
            .iter()
            .filter_map(|a| a.placed)
            .max()
            .ok_or_else(|| SessionError::NoWorksheet("no atoms placed in clauses".into()))?;
        let mut clauses = Vec::new();
        for i in 0..=max_clause {
            let atoms: Vec<Atom> = ws
                .atoms
                .iter()
                .filter(|a| a.placed == Some(i))
                .map(|a| -> Result<Atom, SessionError> {
                    Ok(Atom {
                        lhs: a.lhs.clone(),
                        op: a.op.ok_or_else(|| {
                            SessionError::NoWorksheet(format!("atom {} has no operator", a.tag))
                        })?,
                        rhs: a.rhs.clone().ok_or_else(|| {
                            SessionError::NoWorksheet(format!(
                                "atom {} has no right hand side",
                                a.tag
                            ))
                        })?,
                    })
                })
                .collect::<Result<_, _>>()?;
            if !atoms.is_empty() {
                clauses.push(isis_core::Clause::new(atoms));
            }
        }
        let pred = Predicate {
            form: ws.form,
            clauses,
        };
        self.snapshot();
        match ws.target.clone() {
            WsTarget::Membership(class) => {
                let n = self.db.commit_membership(class, pred)?;
                let name = self.db.class(class)?.name.clone();
                self.say(format!("{name} committed: {n} members"));
                self.selection = Some(Selection::Class(class));
            }
            WsTarget::Derivation(attr) => {
                let n = self
                    .db
                    .commit_derivation(attr, isis_core::AttrDerivation::Predicate(pred))?;
                self.say(format!("derivation committed for {n} entities"));
                self.selection = Some(Selection::Attr(attr));
            }
            WsTarget::Constraint { name, kind } => {
                let class = ws.candidate_class;
                let id = self.db.create_constraint(&name, class, pred, kind)?;
                let report = self.db.check_constraint(id)?;
                if report.holds() {
                    self.say(format!("constraint {name:?} installed and holds"));
                } else {
                    self.say(format!(
                        "constraint {name:?} installed; {} existing violators",
                        report.violators.len()
                    ));
                }
                self.selection = Some(Selection::Class(class));
            }
        }
        self.worksheet = None;
        self.mode = Mode::Forest;
        self.refresh_after_commit()?;
        Ok(())
    }

    fn node_name(&self, node: SchemaNode) -> Result<String, SessionError> {
        Ok(self.db.node_name(node)?.to_string())
    }

    // ------------------------------------------------------------------
    // Rendering
    // ------------------------------------------------------------------

    /// Builds the scene for the current view.
    pub fn scene(&self) -> Result<Scene, SessionError> {
        Ok(match &self.mode {
            Mode::Forest => {
                let selection = match self.selection {
                    Some(Selection::Attr(a)) => Some(SchemaNode::Class(self.db.attr(a)?.owner)),
                    Some(s) => s.as_node(),
                    None => None,
                };
                forest_view(
                    &self.db,
                    &ForestViewOptions {
                        selection,
                        show_predefined: false,
                        prompt: self.prompt(),
                        offsets: self.offsets.clone(),
                        pan: self.pan,
                    },
                )?
                .scene
            }
            Mode::Network => {
                let class = match self.selection {
                    Some(Selection::Class(c)) => c,
                    Some(Selection::Attr(a)) => self.db.attr(a)?.owner,
                    _ => {
                        return Err(SessionError::BadSelection(
                            "the network view needs a class selection".into(),
                        ))
                    }
                };
                network_view(&self.db, class)?.scene
            }
            Mode::Data => {
                data_view(
                    &self.db,
                    &DataViewInput {
                        pages: self.pages.clone(),
                        prompt: self.prompt(),
                    },
                )?
                .scene
            }
            Mode::ConstantPick { page, .. } => {
                data_view(
                    &self.db,
                    &DataViewInput {
                        pages: vec![page.clone()],
                        prompt: vec!["select constant(s), then done".into()],
                    },
                )?
                .scene
            }
            Mode::Worksheet => worksheet_view(&self.worksheet_input()?).scene,
        })
    }

    /// Builds the worksheet display input from the live worksheet state.
    pub fn worksheet_input(&self) -> Result<WorksheetInput, SessionError> {
        let ws = self
            .worksheet
            .as_ref()
            .ok_or_else(|| SessionError::NoWorksheet("no worksheet open".into()))?;
        let target = match &ws.target {
            WsTarget::Membership(c) => self.db.class(*c)?.name.clone(),
            WsTarget::Derivation(a) => {
                let ar = self.db.attr(*a)?;
                format!("{}.{}", self.db.class(ar.owner)?.name, ar.name)
            }
            WsTarget::Constraint { name, kind } => format!(
                "constraint {name} ({})",
                match kind {
                    isis_core::ConstraintKind::ForAll => "for all",
                    isis_core::ConstraintKind::Forbidden => "forbidden",
                }
            ),
        };
        let mut clauses = vec![Vec::new(); isis_views::worksheet_view::CLAUSE_WINDOWS];
        for a in &ws.atoms {
            if let Some(i) = a.placed {
                clauses[i].push(a.tag.to_string());
            }
        }
        let atom_list = ws
            .atoms
            .iter()
            .map(|a| self.display_atom(a))
            .collect::<Result<Vec<_>, _>>()?;
        let (lhs_stack, operator, rhs) = match ws.editing.and_then(|i| ws.atoms.get(i)) {
            Some(a) => {
                let trace = self.db.trace_map(ws.candidate_class, &a.lhs)?;
                let stack = trace
                    .classes
                    .iter()
                    .map(|c| Ok(self.db.class(*c)?.name.clone()))
                    .collect::<Result<Vec<_>, SessionError>>()?;
                let op = a.op.map(|o| o.to_string());
                let rhs = match &a.rhs {
                    Some(r) => self.display_rhs(r)?,
                    None => String::new(),
                };
                (stack, op, rhs)
            }
            None => (Vec::new(), None, String::new()),
        };
        let class_list = self
            .db
            .classes()
            .map(|(_, c)| c.name.clone())
            .collect::<Vec<_>>();
        Ok(WorksheetInput {
            database: self.db.name.clone(),
            target,
            form: ws.form,
            clauses,
            atom_list,
            lhs_stack,
            operator,
            rhs,
            class_list,
            derivation_mode: matches!(ws.target, WsTarget::Derivation(_)),
            prompt: self.prompt(),
        })
    }

    /// Formats a map with attribute names.
    pub fn display_map(&self, map: &Map) -> Result<String, SessionError> {
        if map.is_identity() {
            return Ok("·".into());
        }
        let names = map
            .steps()
            .iter()
            .map(|a| Ok(self.db.attr(*a)?.name.clone()))
            .collect::<Result<Vec<_>, SessionError>>()?;
        Ok(names.join(" "))
    }

    fn display_rhs(&self, rhs: &Rhs) -> Result<String, SessionError> {
        Ok(match rhs {
            Rhs::SelfMap(m) => format!("{}(e)", self.display_map(m)?),
            Rhs::SourceMap(m) => format!("{}(x)", self.display_map(m)?),
            Rhs::Constant { anchors, map, .. } => {
                let names = anchors
                    .iter()
                    .map(|e| Ok(self.db.entity_name(e)?.to_string()))
                    .collect::<Result<Vec<_>, SessionError>>()?;
                let set = format!("{{{}}}", names.join(", "));
                if map.is_identity() {
                    set
                } else {
                    format!("{}({set})", self.display_map(map)?)
                }
            }
        })
    }

    fn display_atom(&self, a: &AtomDraft) -> Result<String, SessionError> {
        let lhs = self.display_map(&a.lhs)?;
        let op = a.op.map(|o| o.to_string()).unwrap_or_else(|| "?".into());
        let rhs = match &a.rhs {
            Some(r) => self.display_rhs(r)?,
            None => "?".into(),
        };
        Ok(format!("{}: {lhs} {op} {rhs}", a.tag))
    }

    fn display_predicate(&self, p: &Predicate) -> Result<String, SessionError> {
        // Render with names instead of raw ids.
        let mut parts = Vec::new();
        for clause in &p.clauses {
            let atoms = clause
                .atoms
                .iter()
                .map(|a| {
                    Ok(format!(
                        "{} {} {}",
                        self.display_map(&a.lhs)?,
                        a.op,
                        self.display_rhs(&a.rhs)?
                    ))
                })
                .collect::<Result<Vec<_>, SessionError>>()?;
            let joint = match p.form {
                isis_core::NormalForm::Dnf => " AND ",
                isis_core::NormalForm::Cnf => " OR ",
            };
            parts.push(format!("({})", atoms.join(joint)));
        }
        let joint = match p.form {
            isis_core::NormalForm::Dnf => " OR ",
            isis_core::NormalForm::Cnf => " AND ",
        };
        Ok(parts.join(joint))
    }
}

/// The attributes a derivation's maps mention (its value-level dependency
/// set, mirroring the maintainer's notion for membership predicates).
fn derivation_attrs(d: &AttrDerivation) -> Vec<AttrId> {
    let mut out = Vec::new();
    let mut push_map = |m: &Map| {
        for &a in m.steps() {
            if !out.contains(&a) {
                out.push(a);
            }
        }
    };
    match d {
        AttrDerivation::Assign(m) => push_map(m),
        AttrDerivation::Predicate(p) => {
            for atom in p.atoms() {
                push_map(&atom.lhs);
                match &atom.rhs {
                    Rhs::SelfMap(m) | Rhs::SourceMap(m) => push_map(m),
                    Rhs::Constant { map, .. } => push_map(map),
                }
            }
        }
    }
    out
}
