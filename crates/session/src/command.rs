//! The uniform command set (§3, §4.2).
//!
//! Each variant corresponds to a menu command, function key, or mouse
//! gesture of the original interface; commands with the same name have the
//! same semantics in every view ("commands in different views with the same
//! names have the same semantics", §3). A [`Command`] stream stands in for
//! the one-button mouse and function keys of the Apollo workstation.

use isis_core::{AttrId, ClassId, EntityId, GroupingId, Multiplicity, Operator, SchemaNode};

/// One user gesture.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    // ---- navigation (Diagram 1) -------------------------------------
    /// Pick a schema object with the mouse (forest or network views):
    /// changes the schema selection.
    Pick(SchemaNode),
    /// Pick a schema object by name (used by scripts that refer to classes
    /// they created earlier in the same script).
    PickByName(String),
    /// Pick an attribute (in a class box) as the schema selection.
    PickAttr(AttrId),
    /// *view associations*: go to the semantic network of the selection.
    ViewAssociations,
    /// *view contents*: go to the data level for the selection.
    ViewContents,
    /// *pop*: back out (network → forest; data page stack → shallower;
    /// data level with one page → forest; worksheet → forest).
    Pop,

    // ---- schema modification ----------------------------------------
    /// *(re)name* the schema selection.
    Rename(String),
    /// *create subclass* of the selected class (Figure 8's dragged box).
    CreateSubclass(String),
    /// *create attribute* on the selected class.
    CreateAttribute {
        /// Attribute name.
        name: String,
        /// Single- or multivalued.
        multiplicity: Multiplicity,
    },
    /// *(re)specify value class* of the selected attribute.
    SpecifyValueClass(SchemaNode),
    /// Create a grouping of the selected class on an attribute.
    CreateGrouping {
        /// Grouping name.
        name: String,
        /// The attribute grouped on.
        attr: AttrId,
    },
    /// *delete* the schema selection.
    Delete,
    /// *display predicate*: show the selection's defining predicate or
    /// grouping description in the text window (Figure 6 flow).
    DisplayPredicate,

    // ---- data level ---------------------------------------------------
    /// *select/reject*: toggle an entity in the data selection.
    SelectEntity(EntityId),
    /// *follow* an attribute from the selected entities (class pages).
    Follow(AttrId),
    /// *follow* the selected sets of a grouping page into the parent class.
    FollowGrouping,
    /// *(re)assign att. value*: assign `value` to `attr` for **all**
    /// selected entities simultaneously (Figure 5).
    ReassignAttrValue {
        /// The attribute to update.
        attr: AttrId,
        /// The new value.
        value: EntityId,
    },
    /// Assign a set value to a multivalued attribute of all selected
    /// entities.
    ReassignAttrValues {
        /// The attribute to update.
        attr: AttrId,
        /// The new value set.
        values: Vec<EntityId>,
    },
    /// Create a new entity in the class on the top page (baseclasses only).
    CreateEntity(String),
    /// *make subclass*: a user-defined subclass of the top page's class
    /// containing exactly the selected entities (temporary visit to the
    /// forest to name it; Figure 12's edith_plays).
    MakeSubclass(String),
    /// Pan the member list of the top page.
    Scroll(i32),
    /// *move*: drag the selected class or grouping by (dx, dy) in the
    /// forest view (Figure 8's box placement).
    Move(i32, i32),
    /// *pan*: shift the forest view's window over the schema plane.
    Pan(i32, i32),

    // ---- predicate worksheet -----------------------------------------
    /// *(re)define membership* of the selected subclass: open the worksheet.
    DefineMembership,
    /// *(re)define derivation* of the selected attribute: open the
    /// worksheet in derivation mode (Figure 10).
    DefineDerivation,
    /// Open the worksheet to define an integrity constraint over the
    /// selected class (§5 extension).
    DefineConstraint {
        /// The constraint's name.
        name: String,
        /// For-all or forbidden reading.
        kind: isis_core::ConstraintKind,
    },
    /// Check all constraints and report violations in the text window.
    CheckConstraints,
    /// Select (create) the next atom and start editing it.
    WsNewAtom,
    /// *edit* an existing atom by tag.
    WsEdit(char),
    /// Push a map attribute onto the left-hand side (grows the stack of
    /// classes).
    WsLhsPush(AttrId),
    /// Remove the last map attribute from the left-hand side.
    WsLhsPop,
    /// Choose the operator.
    WsOperator(Operator),
    /// Right-hand side: *map* — a map from the candidate entity itself.
    WsRhsSelfMap(Vec<AttrId>),
    /// Right-hand side: a map from the source entity `x` (derivations).
    WsRhsSourceMap(Vec<AttrId>),
    /// Right-hand side: *constant* / *constant starting at class* — takes
    /// the user temporarily into the data level to pick the constant.
    /// `None` starts at the class the left-hand-side map terminates in.
    WsRhsConstant(Option<ClassId>),
    /// Toggle an entity while picking a constant (temporary visit).
    ConstantToggle(EntityId),
    /// Finish the constant pick and return to the worksheet.
    ConstantDone,
    /// Place the edited atom into clause window `i` (0-based).
    WsPlaceInClause(usize),
    /// *switch and/or*: flip the DNF/CNF reading.
    WsSwitchAndOr,
    /// The unary hand operator: assign the given map (from the source
    /// entity) as the whole derivation (Figure 10).
    WsHandAssign(Vec<AttrId>),
    /// *commit*: evaluate and install the predicate/derivation, then
    /// return to the inheritance forest.
    WsCommit,

    // ---- session --------------------------------------------------------
    /// Load a named database from the attached directory.
    Load(String),
    /// Save the database under a (possibly new) name — "saves this new
    /// database as entertainment".
    Save(String),
    /// Print the recovery report for a stored database (a dry run that
    /// modifies nothing), or with `None` reprint what recovery did at the
    /// last load.
    Doctor(Option<String>),
    /// Verify a stored database: recovery dry run plus a consistency check
    /// of the recovered state. `None` checks the database of the current
    /// session's name.
    Fsck(Option<String>),
    /// Re-evaluate derived subclasses and derived attributes now, using the
    /// delta log where possible (full re-evaluation only after schema
    /// changes or when the log window has been evicted).
    Refresh,
    /// Publish the session's buffered changes to the shared head
    /// (first-committer-wins; see DESIGN.md §6).
    Commit,
    /// Re-pin the session's snapshot at the shared head, making concurrent
    /// commits visible. Refused while the session is dirty.
    Pull,
    /// Choose when derived state is refreshed automatically.
    SetRefreshPolicy(crate::state::RefreshPolicy),
    /// Undo the last modification.
    Undo,
    /// Redo the last undone modification.
    Redo,
    /// *stop*.
    Stop,
}

impl Command {
    /// The observability span this command runs under —
    /// `session.command.<verb>` per the naming contract in DESIGN.md §5c.
    pub fn span_name(&self) -> &'static str {
        match self {
            Command::Pick(_) => "session.command.pick",
            Command::PickByName(_) => "session.command.pick_by_name",
            Command::PickAttr(_) => "session.command.pick_attr",
            Command::ViewAssociations => "session.command.view_associations",
            Command::ViewContents => "session.command.view_contents",
            Command::Pop => "session.command.pop",
            Command::Rename(_) => "session.command.rename",
            Command::CreateSubclass(_) => "session.command.create_subclass",
            Command::CreateAttribute { .. } => "session.command.create_attribute",
            Command::SpecifyValueClass(_) => "session.command.specify_value_class",
            Command::CreateGrouping { .. } => "session.command.create_grouping",
            Command::Delete => "session.command.delete",
            Command::DisplayPredicate => "session.command.display_predicate",
            Command::SelectEntity(_) => "session.command.select_entity",
            Command::Follow(_) => "session.command.follow",
            Command::FollowGrouping => "session.command.follow_grouping",
            Command::ReassignAttrValue { .. } => "session.command.reassign_attr_value",
            Command::ReassignAttrValues { .. } => "session.command.reassign_attr_values",
            Command::CreateEntity(_) => "session.command.create_entity",
            Command::MakeSubclass(_) => "session.command.make_subclass",
            Command::Scroll(_) => "session.command.scroll",
            Command::Move(..) => "session.command.move",
            Command::Pan(..) => "session.command.pan",
            Command::DefineMembership => "session.command.define_membership",
            Command::DefineDerivation => "session.command.define_derivation",
            Command::DefineConstraint { .. } => "session.command.define_constraint",
            Command::CheckConstraints => "session.command.check_constraints",
            Command::WsNewAtom => "session.command.ws_new_atom",
            Command::WsEdit(_) => "session.command.ws_edit",
            Command::WsLhsPush(_) => "session.command.ws_lhs_push",
            Command::WsLhsPop => "session.command.ws_lhs_pop",
            Command::WsOperator(_) => "session.command.ws_operator",
            Command::WsRhsSelfMap(_) => "session.command.ws_rhs_self_map",
            Command::WsRhsSourceMap(_) => "session.command.ws_rhs_source_map",
            Command::WsRhsConstant(_) => "session.command.ws_rhs_constant",
            Command::ConstantToggle(_) => "session.command.constant_toggle",
            Command::ConstantDone => "session.command.constant_done",
            Command::WsPlaceInClause(_) => "session.command.ws_place_in_clause",
            Command::WsSwitchAndOr => "session.command.ws_switch_and_or",
            Command::WsHandAssign(_) => "session.command.ws_hand_assign",
            Command::WsCommit => "session.command.ws_commit",
            Command::Load(_) => "session.command.load",
            Command::Save(_) => "session.command.save",
            Command::Doctor(_) => "session.command.doctor",
            Command::Fsck(_) => "session.command.fsck",
            Command::Refresh => "session.command.refresh",
            Command::Commit => "session.command.commit",
            Command::Pull => "session.command.pull",
            Command::SetRefreshPolicy(_) => "session.command.set_refresh_policy",
            Command::Undo => "session.command.undo",
            Command::Redo => "session.command.redo",
            Command::Stop => "session.command.stop",
        }
    }
}

/// Grouping id helper used by scripts (re-exported for convenience).
pub type Grouping = GroupingId;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commands_are_cloneable_and_comparable() {
        let c = Command::CreateSubclass("quartets".into());
        assert_eq!(c.clone(), c);
        assert_ne!(c, Command::Stop);
    }
}
