//! Scripted sessions: recorded command streams and replay.
//!
//! Because the engine consumes a typed [`Command`] stream (standing in for
//! the one-button mouse and function keys), whole sessions — including the
//! paper's §4.2 holiday-party session — can be captured as scripts, replayed
//! deterministically, and their views rendered as the figures.

use isis_views::Scene;

use crate::command::Command;
use crate::engine::Session;
use crate::error::SessionError;

/// One step of a transcript: the command, the messages it produced, and
/// optionally a named scene captured after it.
#[derive(Debug)]
pub struct Step {
    /// The command applied.
    pub command: Command,
    /// Messages the command logged.
    pub messages: Vec<String>,
    /// A scene captured after the command, when requested.
    pub scene: Option<(String, Scene)>,
}

/// A replayable script: commands interleaved with capture points.
#[derive(Debug, Clone, Default)]
pub struct Script {
    items: Vec<Item>,
}

#[derive(Debug, Clone)]
enum Item {
    Cmd(Command),
    Capture(String),
}

impl Script {
    /// An empty script.
    pub fn new() -> Script {
        Script::default()
    }

    /// Appends a command.
    pub fn cmd(&mut self, c: Command) -> &mut Self {
        self.items.push(Item::Cmd(c));
        self
    }

    /// Appends several commands.
    pub fn cmds(&mut self, cs: impl IntoIterator<Item = Command>) -> &mut Self {
        for c in cs {
            self.items.push(Item::Cmd(c));
        }
        self
    }

    /// Appends a capture point: the current scene is recorded under `name`
    /// (used to regenerate the paper's figures).
    pub fn capture(&mut self, name: impl Into<String>) -> &mut Self {
        self.items.push(Item::Capture(name.into()));
        self
    }

    /// Number of commands (captures excluded).
    pub fn command_count(&self) -> usize {
        self.items
            .iter()
            .filter(|i| matches!(i, Item::Cmd(_)))
            .count()
    }

    /// Replays the script against a session, returning the transcript.
    /// Stops at the first failing command.
    pub fn run(&self, session: &mut Session) -> Result<Transcript, SessionError> {
        let mut steps = Vec::new();
        let mut captures = Vec::new();
        for item in &self.items {
            match item {
                Item::Cmd(c) => {
                    let before = session.messages().len();
                    session.apply(c.clone())?;
                    steps.push(Step {
                        command: c.clone(),
                        messages: session.messages()[before..].to_vec(),
                        scene: None,
                    });
                }
                Item::Capture(name) => {
                    let scene = session.scene()?;
                    captures.push((name.clone(), scene));
                }
            }
        }
        Ok(Transcript { steps, captures })
    }
}

/// The result of replaying a script.
#[derive(Debug)]
pub struct Transcript {
    /// Per-command records.
    pub steps: Vec<Step>,
    /// Captured scenes, in order.
    pub captures: Vec<(String, Scene)>,
}

impl Transcript {
    /// Looks up a captured scene by name.
    pub fn scene(&self, name: &str) -> Option<&Scene> {
        self.captures
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isis_core::Database;

    #[test]
    fn script_runs_and_captures() {
        let mut db = Database::new("t");
        let m = db.create_baseclass("musicians").unwrap();
        let mut session = Session::builder(db).build();
        let mut script = Script::new();
        script
            .cmd(Command::Pick(isis_core::SchemaNode::Class(m)))
            .capture("forest")
            .cmd(Command::ViewContents)
            .capture("data");
        let t = script.run(&mut session).unwrap();
        assert_eq!(script.command_count(), 2);
        assert_eq!(t.steps.len(), 2);
        assert!(t.scene("forest").unwrap().has_text("musicians"));
        assert!(t.scene("data").is_some());
        assert!(t.scene("nope").is_none());
        // The pick logged a message.
        assert!(t.steps[0].messages.iter().any(|m| m.contains("musicians")));
    }

    #[test]
    fn script_stops_on_error() {
        let db = Database::new("t");
        let mut session = Session::builder(db).build();
        let mut script = Script::new();
        script.cmd(Command::ViewContents); // nothing selected
        assert!(script.run(&mut session).is_err());
    }
}
