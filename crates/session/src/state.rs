//! Session state: the two-level structure of Diagram 1.
//!
//! "The state of ISIS consists of a *schema selection* (the class,
//! attribute, or grouping being examined) and a *data selection*. Schema
//! selection can be changed at both levels as part of navigating through
//! the schema. Data selection can be changed at the data level. When one
//! switches levels temporarily to select a constant or create a
//! user-defined subclass, neither the schema selection nor the data
//! selection are changed upon returning from the temporary visit."

use isis_core::{AttrId, ClassId, Map, NormalForm, Operator, Rhs, SchemaNode};
use isis_views::PageSpec;

/// When derived subclasses and derived attributes are re-evaluated.
///
/// The paper leaves derivations stale between commits (§2); the delta log
/// in `isis-core` lets the session do better without re-evaluating from
/// scratch, so the old `auto_refresh` boolean became a policy:
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RefreshPolicy {
    /// Never refresh automatically; the user issues an explicit *refresh*
    /// (the paper's behaviour, and the default).
    #[default]
    Manual,
    /// Refresh when a worksheet predicate or derivation is committed.
    OnCommit,
    /// Refresh after every data modification.
    Immediate,
}

/// The schema selection: a class, an attribute, or a grouping (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Selection {
    /// A class is selected.
    Class(ClassId),
    /// An attribute is selected.
    Attr(AttrId),
    /// A grouping is selected.
    Grouping(isis_core::GroupingId),
}

impl Selection {
    /// The selection as a schema node, if it is a class or grouping.
    pub fn as_node(self) -> Option<SchemaNode> {
        match self {
            Selection::Class(c) => Some(SchemaNode::Class(c)),
            Selection::Grouping(g) => Some(SchemaNode::Grouping(g)),
            Selection::Attr(_) => None,
        }
    }
}

/// Which view the session is showing (the boxes of Diagram 1).
#[derive(Debug, Clone, PartialEq)]
pub enum Mode {
    /// Schema level: the inheritance forest.
    Forest,
    /// Schema level: the semantic network.
    Network,
    /// Schema level: the predicate worksheet.
    Worksheet,
    /// The data level.
    Data,
    /// A *temporary visit* to the data level to pick a constant for the
    /// worksheet (the loop arrow of Diagram 1). The saved page stack and
    /// selections are untouched; this carries its own page.
    ConstantPick {
        /// The class whose entities are being offered.
        class: ClassId,
        /// The temporary page (with its own transient selection).
        page: PageSpec,
    },
}

/// What the open worksheet defines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WsTarget {
    /// (Re)defining the membership of a subclass.
    Membership(ClassId),
    /// (Re)defining the derivation of an attribute.
    Derivation(AttrId),
    /// Defining an integrity constraint over a class (the §5 extension:
    /// constraints are specified "in a similar graphical way" — on the
    /// same worksheet).
    Constraint {
        /// The constraint's name.
        name: String,
        /// For-all or forbidden reading.
        kind: isis_core::ConstraintKind,
    },
}

/// An atom under construction or constructed, tagged A, B, C, … as in
/// Figure 9.
#[derive(Debug, Clone, PartialEq)]
pub struct AtomDraft {
    /// The display tag ('A'…).
    pub tag: char,
    /// The left-hand-side map from the candidate entity.
    pub lhs: Map,
    /// The chosen operator.
    pub op: Option<Operator>,
    /// The chosen right-hand side.
    pub rhs: Option<Rhs>,
    /// The clause window (0-based) the atom is placed in, if placed.
    pub placed: Option<usize>,
}

impl AtomDraft {
    /// A fresh, empty draft.
    pub fn new(tag: char) -> AtomDraft {
        AtomDraft {
            tag,
            lhs: Map::identity(),
            op: None,
            rhs: None,
            placed: None,
        }
    }

    /// `true` when lhs/op/rhs are all specified.
    pub fn complete(&self) -> bool {
        self.op.is_some() && self.rhs.is_some()
    }
}

/// The open worksheet.
#[derive(Debug, Clone, PartialEq)]
pub struct WorksheetState {
    /// What is being defined.
    pub target: WsTarget,
    /// The class candidates range over (the parent class for membership;
    /// the attribute's value class for a derivation predicate).
    pub candidate_class: ClassId,
    /// For derivations: the class the source entity `x` belongs to.
    pub source_class: Option<ClassId>,
    /// DNF/CNF reading of the clause windows.
    pub form: NormalForm,
    /// All atom drafts, in tag order.
    pub atoms: Vec<AtomDraft>,
    /// Index of the atom currently being edited.
    pub editing: Option<usize>,
    /// The hand-operator assignment map (derivations only, Figure 10).
    pub hand: Option<Map>,
}

impl WorksheetState {
    /// Opens a worksheet.
    pub fn new(target: WsTarget, candidate_class: ClassId, source_class: Option<ClassId>) -> Self {
        WorksheetState {
            target,
            candidate_class,
            source_class,
            form: NormalForm::Dnf,
            atoms: Vec::new(),
            editing: None,
            hand: None,
        }
    }

    /// The next free atom tag.
    pub fn next_tag(&self) -> char {
        (b'A' + self.atoms.len() as u8) as char
    }

    /// The atom currently being edited.
    pub fn editing_atom(&mut self) -> Option<&mut AtomDraft> {
        self.editing.and_then(|i| self.atoms.get_mut(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selection_projection() {
        let c = Selection::Class(ClassId::from_raw(1));
        assert_eq!(c.as_node(), Some(SchemaNode::Class(ClassId::from_raw(1))));
        assert_eq!(Selection::Attr(AttrId::from_raw(2)).as_node(), None);
    }

    #[test]
    fn atom_draft_completeness() {
        let mut a = AtomDraft::new('A');
        assert!(!a.complete());
        a.op = Some(isis_core::CompareOp::SetEq.into());
        assert!(!a.complete());
        a.rhs = Some(Rhs::SelfMap(Map::identity()));
        assert!(a.complete());
    }

    #[test]
    fn worksheet_tags_advance() {
        let mut ws = WorksheetState::new(
            WsTarget::Membership(ClassId::from_raw(1)),
            ClassId::from_raw(0),
            None,
        );
        assert_eq!(ws.next_tag(), 'A');
        ws.atoms.push(AtomDraft::new('A'));
        assert_eq!(ws.next_tag(), 'B');
        ws.editing = Some(0);
        assert!(ws.editing_atom().is_some());
    }
}
