//! # isis-session
//!
//! The interaction engine of the ISIS reproduction — the paper's primary
//! contribution (§3): a two-level state machine (Diagram 1) over a semantic
//! database, driven by a typed [`Command`] stream that stands in for the
//! original one-button mouse and function keys.
//!
//! * Schema level: the inheritance forest, the semantic network, and the
//!   predicate worksheet.
//! * Data level: overlapping pages with select/reject, follow, (re)assign,
//!   create entity, and make subclass.
//! * Temporary visits (constant selection) that preserve the schema
//!   selection `S` and the data selection `D`, exactly as Diagram 1 draws
//!   them.
//! * Undo/redo over every modification, save/load through `isis-store`,
//!   and scripted replay ([`Script`]) — which is how the paper's §4.2
//!   session and its twelve figures are regenerated.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod command;
pub mod engine;
pub mod error;
pub mod script;
pub mod state;

pub use command::Command;
pub use engine::{Session, SessionBuilder};
pub use error::SessionError;
// Re-exported so multi-session callers need only this crate.
pub use isis_core::{CommitConflict, CommitReceipt, SharedDatabase};
pub use script::{Script, Step, Transcript};
pub use state::{AtomDraft, Mode, RefreshPolicy, Selection, WorksheetState, WsTarget};
