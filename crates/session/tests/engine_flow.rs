//! End-to-end tests of the session engine against the §4.2 narrative and
//! the Diagram-1 state invariants.
//!
//! Deliberately stays on the deprecated `Session::new` / `with_store` /
//! `database_mut` shims: this file is the compat coverage proving they
//! still behave like the builder path they wrap.
#![allow(deprecated)]

use isis_core::{CompareOp, EntityId, Multiplicity, SchemaNode};
use isis_sample::instrumental_music;
use isis_session::{Command, Mode, Selection, Session};
use isis_views::Emphasis;

fn session() -> (Session, isis_sample::InstrumentalMusic) {
    let im = instrumental_music().unwrap();
    (Session::new(im.db.clone()), im)
}

#[test]
fn pick_and_view_associations_figure1_to_2() {
    let (mut s, im) = session();
    // Figure 1: pick soloists.
    s.apply(Command::Pick(SchemaNode::Class(im.soloists)))
        .unwrap();
    assert_eq!(s.selection(), Some(Selection::Class(im.soloists)));
    let scene = s.scene().unwrap();
    assert!(scene.hand().is_some());
    // view associations → network of soloists.
    s.apply(Command::ViewAssociations).unwrap();
    assert_eq!(*s.mode(), Mode::Network);
    // Picking the value class of plays (instruments) re-targets the network
    // (Figure 2).
    s.apply(Command::Pick(SchemaNode::Class(im.instruments)))
        .unwrap();
    assert_eq!(*s.mode(), Mode::Network);
    let scene = s.scene().unwrap();
    assert!(scene.has_text("family"));
    // pop → forest with instruments still selected.
    s.apply(Command::Pop).unwrap();
    assert_eq!(*s.mode(), Mode::Forest);
    assert_eq!(s.selection(), Some(Selection::Class(im.instruments)));
}

#[test]
fn data_level_select_follow_and_reassign_figures_3_to_5() {
    let (mut s, im) = session();
    s.apply(Command::Pick(SchemaNode::Class(im.instruments)))
        .unwrap();
    s.apply(Command::ViewContents).unwrap();
    assert_eq!(*s.mode(), Mode::Data);
    // Figure 3: select flute, then oboe.
    s.apply(Command::SelectEntity(im.flute)).unwrap();
    s.apply(Command::SelectEntity(im.oboe)).unwrap();
    let scene = s.scene().unwrap();
    assert!(scene.has_text_with("flute", Emphasis::Bold));
    assert!(scene.has_text_with("oboe", Emphasis::Bold));
    // Figure 4: follow family → families page, brass highlighted (the
    // deliberate data error).
    s.apply(Command::Follow(im.family)).unwrap();
    assert_eq!(s.pages().len(), 2);
    assert_eq!(s.pages()[1].node, SchemaNode::Class(im.families));
    assert_eq!(s.pages()[1].selected, vec![im.brass]);
    // The user corrects: unhighlight brass, highlight woodwind.
    s.apply(Command::SelectEntity(im.brass)).unwrap(); // toggle off
    s.apply(Command::SelectEntity(im.woodwind)).unwrap();
    // Figure 5: (re)assign happens on the instruments page — pop back.
    s.apply(Command::Pop).unwrap();
    assert_eq!(s.pages().len(), 1);
    // flute and oboe are still the data selection (D preserved).
    assert_eq!(s.pages()[0].selected, vec![im.flute, im.oboe]);
    s.apply(Command::ReassignAttrValue {
        attr: im.family,
        value: im.woodwind,
    })
    .unwrap();
    for e in [im.flute, im.oboe] {
        assert_eq!(
            s.database()
                .attr_value_set(e, im.family)
                .unwrap()
                .as_slice(),
            &[im.woodwind]
        );
    }
}

#[test]
fn grouping_follow_figures_6_and_7() {
    let (mut s, im) = session();
    // display predicate of by_family (the user wonders what it is).
    s.apply(Command::Pick(SchemaNode::Grouping(im.by_family)))
        .unwrap();
    s.apply(Command::DisplayPredicate).unwrap();
    assert!(s
        .messages()
        .last()
        .unwrap()
        .contains("grouped by common value of their family attribute"));
    // Figure 6: contents of the grouping, select percussion.
    s.apply(Command::ViewContents).unwrap();
    s.apply(Command::SelectEntity(im.percussion)).unwrap();
    // Figure 7: follow (no attribute needed on a grouping page).
    s.apply(Command::FollowGrouping).unwrap();
    let top = s.pages().last().unwrap();
    assert_eq!(top.node, SchemaNode::Class(im.instruments));
    let drums = s
        .database()
        .entity_by_name(im.instruments, "drums")
        .unwrap();
    let cymbals = s
        .database()
        .entity_by_name(im.instruments, "cymbals")
        .unwrap();
    assert!(top.selected.contains(&drums));
    assert!(top.selected.contains(&cymbals));
    assert_eq!(top.selected.len(), 2);
}

/// The full Figure 8–10 worksheet flow: create quartets, define its
/// membership (atoms A and E), commit, then define all_inst by the hand
/// operator.
#[test]
fn worksheet_flow_figures_8_to_10() {
    let (mut s, im) = session();
    // Figure 8: create subclass of music_groups, name it quartets.
    s.apply(Command::Pick(SchemaNode::Class(im.music_groups)))
        .unwrap();
    s.apply(Command::CreateSubclass("quartets".into())).unwrap();
    let quartets = s.database().class_by_name("quartets").unwrap();
    assert_eq!(s.selection(), Some(Selection::Class(quartets)));

    // (re)define membership → worksheet.
    s.apply(Command::DefineMembership).unwrap();
    assert_eq!(*s.mode(), Mode::Worksheet);

    // Atom A: size = {4}, placed in the second clause.
    s.apply(Command::WsNewAtom).unwrap();
    s.apply(Command::WsPlaceInClause(1)).unwrap();
    s.apply(Command::WsLhsPush(im.size)).unwrap();
    s.apply(Command::WsOperator(CompareOp::SetEq.into()))
        .unwrap();
    // constant → temporary data-level visit into INTEGERS.
    s.apply(Command::WsRhsConstant(None)).unwrap();
    match s.mode() {
        Mode::ConstantPick { class, .. } => {
            assert_eq!(
                *class,
                s.database().predefined(isis_core::BaseKind::Integers)
            );
        }
        m => panic!("expected constant pick, got {m:?}"),
    }
    let four = s.database_mut().int(4);
    s.apply(Command::ConstantToggle(four)).unwrap();
    s.apply(Command::ConstantDone).unwrap();
    assert_eq!(*s.mode(), Mode::Worksheet);

    // Atom B (the paper calls it E): members plays ⊇ {piano}, clause 1.
    s.apply(Command::WsNewAtom).unwrap();
    s.apply(Command::WsPlaceInClause(0)).unwrap();
    s.apply(Command::WsLhsPush(im.members)).unwrap();
    s.apply(Command::WsLhsPush(im.plays)).unwrap();
    // The worksheet shows the stack of classes for the map.
    let input = s.worksheet_input().unwrap();
    assert_eq!(
        input.lhs_stack,
        vec!["music_groups", "musicians", "instruments"]
    );
    s.apply(Command::WsOperator(CompareOp::Superset.into()))
        .unwrap();
    s.apply(Command::WsRhsConstant(None)).unwrap();
    s.apply(Command::ConstantToggle(im.piano)).unwrap();
    s.apply(Command::ConstantDone).unwrap();

    // Switch to CNF and commit.
    s.apply(Command::WsSwitchAndOr).unwrap();
    s.apply(Command::WsCommit).unwrap();
    assert_eq!(*s.mode(), Mode::Forest);
    assert_eq!(s.selection(), Some(Selection::Class(quartets)));
    // Exactly LaBelle Musique qualifies.
    let members: Vec<EntityId> = s.database().members(quartets).unwrap().iter().collect();
    assert_eq!(members, vec![im.labelle]);

    // Figure 10: all_inst derived by the hand operator.
    s.apply(Command::CreateAttribute {
        name: "all_inst".into(),
        multiplicity: Multiplicity::Multi,
    })
    .unwrap();
    s.apply(Command::SpecifyValueClass(SchemaNode::Class(
        im.instruments,
    )))
    .unwrap();
    s.apply(Command::DefineDerivation).unwrap();
    let input = s.worksheet_input().unwrap();
    assert!(input.derivation_mode);
    assert!(input.target.contains("all_inst"));
    s.apply(Command::WsHandAssign(vec![im.members, im.plays]))
        .unwrap();
    s.apply(Command::WsCommit).unwrap();
    let all_inst = s.database().attr_by_name(quartets, "all_inst").unwrap();
    let set = s.database().attr_value_set(im.labelle, all_inst).unwrap();
    assert!(set.contains(im.piano));
    assert!(set.contains(im.viola));
    assert_eq!(set.len(), 4);
}

#[test]
fn make_subclass_figures_11_and_12() {
    let (mut s, im) = session();
    // Look at musicians, keep only Edith selected (Figure 11), follow
    // plays, make the edith_plays subclass of instruments (Figure 12).
    s.apply(Command::Pick(SchemaNode::Class(im.musicians)))
        .unwrap();
    s.apply(Command::ViewContents).unwrap();
    s.apply(Command::SelectEntity(im.edith)).unwrap();
    s.apply(Command::Follow(im.plays)).unwrap();
    let top = s.pages().last().unwrap();
    assert_eq!(top.selected, vec![im.viola, im.violin]);
    s.apply(Command::MakeSubclass("edith_plays".into()))
        .unwrap();
    // Still at the data level (temporary visit), but the new class is the
    // schema selection, under instruments.
    assert_eq!(*s.mode(), Mode::Data);
    let edith_plays = s.database().class_by_name("edith_plays").unwrap();
    assert_eq!(s.selection(), Some(Selection::Class(edith_plays)));
    assert_eq!(
        s.database().class(edith_plays).unwrap().parent,
        Some(im.instruments)
    );
    let members: Vec<EntityId> = s.database().members(edith_plays).unwrap().iter().collect();
    assert_eq!(members, vec![im.viola, im.violin]);
    // Back at the forest, the hand points at edith_plays (Figure 12).
    s.apply(Command::Pop).unwrap();
    s.apply(Command::Pop).unwrap();
    assert_eq!(*s.mode(), Mode::Forest);
    let scene = s.scene().unwrap();
    assert!(scene.has_text("edith_plays"));
    assert!(scene.hand().is_some());
}

#[test]
fn save_and_load_via_store() {
    let root = std::env::temp_dir().join(format!("isis_session_store_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let dir = isis_store::StoreDir::open(&root).unwrap();
    let im = instrumental_music().unwrap();
    dir.save(&im.db, "Instrumental_Music").unwrap();
    let mut s = Session::with_store(isis_core::Database::new("scratch"), dir);
    s.apply(Command::Load("Instrumental_Music".into())).unwrap();
    assert!(s.database().class_by_name("musicians").is_ok());
    // Modify and save as entertainment (the session's ending).
    s.apply(Command::Pick(SchemaNode::Class(im.music_groups)))
        .unwrap();
    s.apply(Command::CreateSubclass("quartets".into())).unwrap();
    s.apply(Command::Save("entertainment".into())).unwrap();
    let dir2 = isis_store::StoreDir::open(&root).unwrap();
    let loaded = dir2.load("entertainment").unwrap();
    assert!(loaded.class_by_name("quartets").is_ok());
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn undo_redo_roundtrip() {
    let (mut s, im) = session();
    s.apply(Command::Pick(SchemaNode::Class(im.musicians)))
        .unwrap();
    s.apply(Command::CreateSubclass("temp".into())).unwrap();
    assert!(s.database().class_by_name("temp").is_ok());
    s.apply(Command::Undo).unwrap();
    assert!(s.database().class_by_name("temp").is_err());
    s.apply(Command::Redo).unwrap();
    assert!(s.database().class_by_name("temp").is_ok());
    // Undo twice → error on the second empty undo… (one snapshot exists).
    s.apply(Command::Undo).unwrap();
    assert!(s.apply(Command::Undo).is_err());
}

#[test]
fn reassign_on_data_level_is_undoable() {
    let (mut s, im) = session();
    s.apply(Command::Pick(SchemaNode::Class(im.instruments)))
        .unwrap();
    s.apply(Command::ViewContents).unwrap();
    s.apply(Command::SelectEntity(im.flute)).unwrap();
    s.apply(Command::ReassignAttrValue {
        attr: im.family,
        value: im.woodwind,
    })
    .unwrap();
    assert!(s
        .database()
        .attr_value_set(im.flute, im.family)
        .unwrap()
        .contains(im.woodwind));
    s.apply(Command::Undo).unwrap();
    assert!(s
        .database()
        .attr_value_set(im.flute, im.family)
        .unwrap()
        .contains(im.brass));
}

#[test]
fn temporary_visit_preserves_selections() {
    let (mut s, im) = session();
    // Establish a data selection D, then enter the worksheet and pick a
    // constant; D and S must survive untouched (Diagram 1).
    s.apply(Command::Pick(SchemaNode::Class(im.instruments)))
        .unwrap();
    s.apply(Command::ViewContents).unwrap();
    s.apply(Command::SelectEntity(im.flute)).unwrap();
    let pages_before = s.pages().to_vec();
    s.apply(Command::Pop).unwrap(); // back to forest, D retained

    s.apply(Command::Pick(SchemaNode::Class(im.play_strings)))
        .unwrap();
    s.apply(Command::DefineMembership).unwrap();
    s.apply(Command::WsNewAtom).unwrap();
    s.apply(Command::WsPlaceInClause(0)).unwrap();
    s.apply(Command::WsLhsPush(im.plays)).unwrap();
    s.apply(Command::WsOperator(CompareOp::Match.into()))
        .unwrap();
    s.apply(Command::WsRhsConstant(None)).unwrap();
    s.apply(Command::ConstantToggle(im.viola)).unwrap();
    s.apply(Command::ConstantDone).unwrap();
    // D unchanged by the temporary visit.
    assert_eq!(s.pages(), pages_before.as_slice());
    assert_eq!(s.selection(), Some(Selection::Class(im.play_strings)));
}

#[test]
fn command_errors_are_informative() {
    let (mut s, im) = session();
    // Data-level commands outside the data level.
    assert!(s.apply(Command::Follow(im.plays)).is_err());
    assert!(s
        .apply(Command::ReassignAttrValue {
            attr: im.family,
            value: im.brass
        })
        .is_err());
    // Worksheet commands without a worksheet.
    assert!(s.apply(Command::WsNewAtom).is_err());
    assert!(s.apply(Command::WsCommit).is_err());
    // view contents with an attribute selected.
    s.apply(Command::PickAttr(im.plays)).unwrap();
    assert!(s.apply(Command::ViewContents).is_err());
    // Save without a store.
    assert!(matches!(
        s.apply(Command::Save("x".into())),
        Err(isis_session::SessionError::NoStore)
    ));
    // Follow with nothing selected.
    s.apply(Command::Pick(SchemaNode::Class(im.instruments)))
        .unwrap();
    s.apply(Command::ViewContents).unwrap();
    assert!(matches!(
        s.apply(Command::Follow(im.family)),
        Err(isis_session::SessionError::NothingSelected)
    ));
    // Follow with an attribute not on the class.
    s.apply(Command::SelectEntity(im.flute)).unwrap();
    assert!(s.apply(Command::Follow(im.members)).is_err());
    // Selecting a non-member.
    assert!(s.apply(Command::SelectEntity(im.edith)).is_err());
}

#[test]
fn create_entity_at_data_level() {
    let (mut s, im) = session();
    s.apply(Command::Pick(SchemaNode::Class(im.instruments)))
        .unwrap();
    s.apply(Command::ViewContents).unwrap();
    s.apply(Command::CreateEntity("ocarina".into())).unwrap();
    let e = s
        .database()
        .entity_by_name(im.instruments, "ocarina")
        .unwrap();
    assert!(s.database().members(im.instruments).unwrap().contains(e));
    // Creating in a subclass page inserts into the baseclass and the
    // subclass (the paper's cascade).
    s.apply(Command::Pop).unwrap();
    s.apply(Command::Pick(SchemaNode::Class(im.soloists)))
        .unwrap();
    s.apply(Command::ViewContents).unwrap();
    s.apply(Command::CreateEntity("Zara".into())).unwrap();
    let z = s.database().entity_by_name(im.musicians, "Zara").unwrap();
    assert!(s.database().members(im.soloists).unwrap().contains(z));
    assert!(s.database().members(im.musicians).unwrap().contains(z));
}

#[test]
fn rename_and_delete_via_session() {
    let (mut s, im) = session();
    s.apply(Command::Pick(SchemaNode::Class(im.soloists)))
        .unwrap();
    s.apply(Command::Rename("stars".into())).unwrap();
    assert!(s.database().class_by_name("stars").is_ok());
    s.apply(Command::Delete).unwrap();
    assert!(s.database().class_by_name("stars").is_err());
    assert_eq!(s.selection(), None);
    // Deleting predefined classes is refused and surfaces as a core error.
    s.apply(Command::Pick(SchemaNode::Class(
        s.database().predefined(isis_core::BaseKind::Strings),
    )))
    .unwrap();
    assert!(s.apply(Command::Delete).is_err());
}

#[test]
fn scroll_pans_member_list() {
    let (mut s, im) = session();
    s.apply(Command::Pick(SchemaNode::Class(im.instruments)))
        .unwrap();
    s.apply(Command::ViewContents).unwrap();
    s.apply(Command::Scroll(5)).unwrap();
    assert_eq!(s.pages()[0].scroll, 5);
    s.apply(Command::Scroll(-10)).unwrap();
    assert_eq!(s.pages()[0].scroll, 0);
}

#[test]
fn stop_flag() {
    let (mut s, _) = session();
    assert!(!s.stopped());
    s.apply(Command::Stop).unwrap();
    assert!(s.stopped());
}

#[test]
fn display_predicate_of_derived_class() {
    let (mut s, im) = session();
    s.apply(Command::Pick(SchemaNode::Class(im.play_strings)))
        .unwrap();
    s.apply(Command::DisplayPredicate).unwrap();
    let msg = s.messages().last().unwrap();
    assert!(msg.contains("plays family"), "got: {msg}");
    assert!(msg.contains("stringed"), "got: {msg}");
}

#[test]
fn move_and_pan_affect_the_forest_view() {
    let (mut s, im) = session();
    s.apply(Command::Pick(SchemaNode::Class(im.soloists)))
        .unwrap();
    let before = s.scene().unwrap();
    // Drag soloists right and down (Figure 8's box placement).
    s.apply(Command::Move(10, 2)).unwrap();
    let after = s.scene().unwrap();
    assert_ne!(before, after);
    // The hand follows the moved box.
    let (hb, ha) = (before.hand().unwrap(), after.hand().unwrap());
    assert_eq!(ha.x, hb.x + 10);
    assert_eq!(ha.y, hb.y + 2);
    // Panning shifts everything.
    s.apply(Command::Pan(5, 0)).unwrap();
    let panned = s.scene().unwrap();
    assert_eq!(panned.hand().unwrap().x, ha.x + 5);
    // Moves require a class/grouping selection.
    s.apply(Command::PickAttr(im.plays)).unwrap();
    assert!(s.apply(Command::Move(1, 1)).is_err());
}

#[test]
fn auto_refresh_keeps_derived_classes_fresh() {
    let (mut s, im) = session();
    // Commit the quartets query first.
    s.apply(Command::Pick(SchemaNode::Class(im.music_groups)))
        .unwrap();
    s.apply(Command::CreateSubclass("quartets".into())).unwrap();
    s.apply(Command::DefineMembership).unwrap();
    s.apply(Command::WsNewAtom).unwrap();
    s.apply(Command::WsPlaceInClause(0)).unwrap();
    s.apply(Command::WsLhsPush(im.size)).unwrap();
    s.apply(Command::WsOperator(CompareOp::SetEq.into()))
        .unwrap();
    s.apply(Command::WsRhsConstant(None)).unwrap();
    let four = s.database_mut().int(4);
    s.apply(Command::ConstantToggle(four)).unwrap();
    s.apply(Command::ConstantDone).unwrap();
    s.apply(Command::WsCommit).unwrap();
    let quartets = s.database().class_by_name("quartets").unwrap();
    let before = s.database().members(quartets).unwrap().len();
    assert_eq!(before, 2); // LaBelle Musique and String Fling have size 4

    // Without auto-refresh the class goes stale after a data edit…
    s.apply(Command::PickByName("music_groups".into())).unwrap();
    s.apply(Command::ViewContents).unwrap();
    let trio = s
        .database()
        .entity_by_name(im.music_groups, "Trio Grande")
        .unwrap();
    s.apply(Command::SelectEntity(trio)).unwrap();
    s.apply(Command::ReassignAttrValue {
        attr: im.size,
        value: four,
    })
    .unwrap();
    assert_eq!(s.database().members(quartets).unwrap().len(), 2); // stale

    // …with auto-refresh it tracks immediately. The boolean setter is the
    // deprecated compatibility shim for RefreshPolicy; keep exercising it.
    #[allow(deprecated)]
    s.set_auto_refresh(true);
    let two = s.database_mut().int(2);
    s.apply(Command::ReassignAttrValue {
        attr: im.size,
        value: two,
    })
    .unwrap();
    s.apply(Command::ReassignAttrValue {
        attr: im.size,
        value: four,
    })
    .unwrap();
    assert_eq!(s.database().members(quartets).unwrap().len(), 3);
    assert!(s
        .messages()
        .iter()
        .any(|m| m.contains("quartets re-evaluated")));
}

#[test]
fn parallel_query_matches_serial_and_keeps_a_persistent_pool() {
    use isis_sample::{synthetic_music, workload, Scale};
    use isis_session::RefreshPolicy;

    let mut syn = synthetic_music(Scale::of(400), 11).unwrap();
    let instrument = syn.instrument_ids[0];
    let pred = workload::quartets_query(&mut syn, instrument, 4);

    let mut serial = Session::builder(syn.db.clone())
        .refresh_policy(RefreshPolicy::OnCommit)
        .build();
    let mut parallel = Session::builder(syn.db.clone())
        .refresh_policy(RefreshPolicy::OnCommit)
        .eval_threads(4)
        .build();
    assert_eq!(serial.eval_threads(), 1);
    assert_eq!(parallel.eval_threads(), 4);

    let want = serial.query(syn.music_groups, &pred).unwrap();
    for _ in 0..3 {
        let got = parallel.query(syn.music_groups, &pred).unwrap();
        assert_eq!(got.as_slice(), want.as_slice());
    }
    // The pool was spawned once on the service and reused across queries.
    assert_eq!(
        parallel.index_service().unwrap().eval_pool_threads(),
        Some(4)
    );
    assert_eq!(serial.index_service().unwrap().eval_pool_threads(), None);

    // Reconfiguring mid-session takes effect on the next query.
    parallel.set_eval_threads(2);
    let got = parallel.query(syn.music_groups, &pred).unwrap();
    assert_eq!(got.as_slice(), want.as_slice());
    assert_eq!(
        parallel.index_service().unwrap().eval_pool_threads(),
        Some(2)
    );
}
