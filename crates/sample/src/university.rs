//! A second sample domain: a university database.
//!
//! Exercises parts of the model the Instrumental_Music schema doesn't: a
//! deeper inheritance chain (people → students → graduate_students), a
//! grouping-ranged attribute (departments.teaches_in → by_building), the
//! multiple-inheritance extension (teaching_assistants under both students
//! and staff), and an integrity constraint (nobody advises themselves).

use isis_core::{
    Atom, AttrId, ClassId, Clause, CompareOp, ConstraintKind, Database, EntityId, GroupingId, Map,
    Multiplicity, Operator, Predicate, Result, Rhs,
};

/// Ids of the university schema and notable entities.
#[derive(Debug, Clone)]
pub struct University {
    /// The database.
    pub db: Database,
    /// Baseclass *people*.
    pub people: ClassId,
    /// Baseclass *courses*.
    pub courses: ClassId,
    /// Baseclass *rooms*.
    pub rooms: ClassId,
    /// Baseclass *departments*.
    pub departments: ClassId,
    /// Subclass chain people → students → graduate_students.
    pub students: ClassId,
    /// Deep subclass: graduate students.
    pub graduate_students: ClassId,
    /// Subclass people → staff.
    pub staff: ClassId,
    /// Multi-parent subclass: teaching assistants (students ∧ staff).
    pub teaching_assistants: ClassId,
    /// people.advisor → people.
    pub advisor: AttrId,
    /// people.takes ↔ courses.
    pub takes: AttrId,
    /// courses.held_in → rooms.
    pub held_in: AttrId,
    /// courses.dept → departments.
    pub dept: AttrId,
    /// rooms.building → STRINGS.
    pub building: AttrId,
    /// departments.teaches_in ↔ by_building (grouping-ranged).
    pub teaches_in: AttrId,
    /// Grouping of rooms on building.
    pub by_building: GroupingId,
    /// Grouping of courses on dept.
    pub by_dept: GroupingId,
    /// Kenneth, the TA.
    pub kenneth: EntityId,
    /// Paris, the advisor.
    pub paris: EntityId,
    /// The databases course.
    pub cs227: EntityId,
}

/// Builds the university database.
pub fn university() -> Result<University> {
    let mut db = Database::new("university");
    db.enable_multiple_inheritance();
    let people = db.create_baseclass("people")?;
    let courses = db.create_baseclass("courses")?;
    let rooms = db.create_baseclass("rooms")?;
    let departments = db.create_baseclass("departments")?;
    let strings = db.predefined(isis_core::BaseKind::Strings);

    let advisor = db.create_attribute(people, "advisor", people, Multiplicity::Single)?;
    let takes = db.create_attribute(people, "takes", courses, Multiplicity::Multi)?;
    let held_in = db.create_attribute(courses, "held_in", rooms, Multiplicity::Single)?;
    let dept = db.create_attribute(courses, "dept", departments, Multiplicity::Single)?;
    let building = db.create_attribute(rooms, "building", strings, Multiplicity::Single)?;
    let by_building = db.create_grouping(rooms, "by_building", building)?;
    let by_dept = db.create_grouping(courses, "by_dept", dept)?;
    // Departments teach in *sets of rooms named by building* — a
    // grouping-ranged attribute (§2's B: S ↔ parent(G)).
    let teaches_in =
        db.create_attribute(departments, "teaches_in", by_building, Multiplicity::Multi)?;

    let students = db.create_subclass(people, "students")?;
    let graduate_students = db.create_subclass(students, "graduate_students")?;
    let staff = db.create_subclass(people, "staff")?;
    let teaching_assistants = db.create_subclass(graduate_students, "teaching_assistants")?;
    db.add_secondary_parent(teaching_assistants, staff)?;

    // Rooms and buildings.
    let cit = db.str("CIT");
    let barus = db.str("Barus-Holley");
    let r368 = db.insert_entity(rooms, "CIT 368")?;
    let r166 = db.insert_entity(rooms, "BH 166")?;
    let r159 = db.insert_entity(rooms, "CIT 159")?;
    db.assign_single(r368, building, cit)?;
    db.assign_single(r159, building, cit)?;
    db.assign_single(r166, building, barus)?;

    // Departments.
    let cs = db.insert_entity(departments, "computer_science")?;
    let math = db.insert_entity(departments, "mathematics")?;
    db.assign_multi(cs, teaches_in, [cit])?;
    db.assign_multi(math, teaches_in, [barus])?;

    // Courses.
    let cs227 = db.insert_entity(courses, "CS227 databases")?;
    let cs101 = db.insert_entity(courses, "CS101 intro")?;
    let ma52 = db.insert_entity(courses, "MA52 linear algebra")?;
    db.assign_single(cs227, held_in, r368)?;
    db.assign_single(cs101, held_in, r159)?;
    db.assign_single(ma52, held_in, r166)?;
    db.assign_single(cs227, dept, cs)?;
    db.assign_single(cs101, dept, cs)?;
    db.assign_single(ma52, dept, math)?;

    // People.
    let paris = db.insert_entity(people, "Paris")?;
    db.add_to_class(paris, staff)?;
    let kenneth = db.insert_entity(people, "Kenneth")?;
    db.add_to_class(kenneth, teaching_assistants)?;
    db.assign_single(kenneth, advisor, paris)?;
    db.assign_multi(kenneth, takes, [cs227])?;
    let sally = db.insert_entity(people, "Sally")?;
    db.add_to_class(sally, graduate_students)?;
    db.assign_single(sally, advisor, paris)?;
    db.assign_multi(sally, takes, [cs227, ma52])?;
    let stan = db.insert_entity(people, "Stan")?;
    db.add_to_class(stan, staff)?;
    let uma = db.insert_entity(people, "Uma")?;
    db.add_to_class(uma, students)?;
    db.assign_multi(uma, takes, [cs101])?;

    // Constraint: nobody advises themselves (forbidden: advisor(e) ~ {e}…
    // expressed with form (a): identity(e) ~ advisor(e)).
    let self_advised = Predicate::dnf(vec![Clause::new(vec![Atom::new(
        Map::identity(),
        Operator::plain(CompareOp::Match),
        Rhs::SelfMap(Map::single(advisor)),
    )])]);
    db.create_constraint(
        "no_self_advising",
        people,
        self_advised,
        ConstraintKind::Forbidden,
    )?;

    debug_assert!(db.is_consistent()?);
    Ok(University {
        db,
        people,
        courses,
        rooms,
        departments,
        students,
        graduate_students,
        staff,
        teaching_assistants,
        advisor,
        takes,
        held_in,
        dept,
        building,
        teaches_in,
        by_building,
        by_dept,
        kenneth,
        paris,
        cs227,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_is_consistent() {
        let u = university().unwrap();
        assert!(u.db.is_consistent().unwrap());
        assert!(u.db.multiple_inheritance_enabled());
    }

    #[test]
    fn deep_inheritance_chain_cascades() {
        let u = university().unwrap();
        // Kenneth is a TA → graduate student → student → person, and staff.
        for class in [
            u.teaching_assistants,
            u.graduate_students,
            u.students,
            u.staff,
            u.people,
        ] {
            assert!(u.db.members(class).unwrap().contains(u.kenneth));
        }
        // The TA class sees attributes through both parents without dups.
        let vis = u.db.visible_attrs(u.teaching_assistants).unwrap();
        let names: Vec<String> = vis
            .iter()
            .map(|a| u.db.attr(*a).unwrap().name.clone())
            .collect();
        assert!(names.contains(&"advisor".to_string()));
        let mut dedup = names.clone();
        dedup.dedup();
        assert_eq!(names, dedup);
    }

    #[test]
    fn grouping_ranged_attribute_expands_to_rooms() {
        let u = university().unwrap();
        let cs =
            u.db.entity_by_name(u.departments, "computer_science")
                .unwrap();
        let rooms = u.db.attr_value_set(cs, u.teaches_in).unwrap();
        // CS teaches in the CIT building's rooms.
        let r368 = u.db.entity_by_name(u.rooms, "CIT 368").unwrap();
        let r159 = u.db.entity_by_name(u.rooms, "CIT 159").unwrap();
        let r166 = u.db.entity_by_name(u.rooms, "BH 166").unwrap();
        assert!(rooms.contains(r368));
        assert!(rooms.contains(r159));
        assert!(!rooms.contains(r166));
    }

    #[test]
    fn advising_constraint_holds_and_catches() {
        let mut u = university().unwrap();
        let k = u.db.constraint_by_name("no_self_advising").unwrap();
        assert!(u.db.check_constraint(k).unwrap().holds());
        // A self-advising edit is rejected transactionally.
        let paris = u.paris;
        let advisor = u.advisor;
        assert!(u
            .db
            .apply_checked(|db| db.assign_single(paris, advisor, paris))
            .is_err());
        assert!(u.db.check_constraint(k).unwrap().holds());
    }

    #[test]
    fn classmates_query_through_three_hops() {
        let u = university().unwrap();
        // People who take a course held in the CIT building: a 3-hop map
        // takes → held_in → building compared to the constant {CIT}.
        let cit =
            u.db.entity_by_name(u.db.predefined(isis_core::BaseKind::Strings), "CIT")
                .unwrap();
        let pred = Predicate::dnf(vec![Clause::new(vec![Atom::new(
            Map::new(vec![u.takes, u.held_in, u.building]),
            CompareOp::Match,
            Rhs::constant(u.db.predefined(isis_core::BaseKind::Strings), [cit]),
        )])]);
        let sel = u.db.evaluate_derived_members(u.people, &pred).unwrap();
        let names: Vec<&str> = sel.iter().map(|e| u.db.entity_name(e).unwrap()).collect();
        assert!(names.contains(&"Kenneth"));
        assert!(names.contains(&"Sally"));
        assert!(names.contains(&"Uma"));
        assert!(!names.contains(&"Paris"));
    }
}
