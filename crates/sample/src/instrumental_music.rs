//! The *Instrumental_Music* sample database of §4.1, in the state the §4.2
//! session starts from.
//!
//! Baseclasses: *musicians*, *instruments*, *music_groups*, *families*.
//! Groupings: *by_instrument*, *work_status* (on musicians), *by_family*
//! (on instruments), *by_in_group* (on play_strings). Subclasses:
//! *play_strings* (derived), *soloists* (user-defined).
//!
//! Deliberate fidelity detail: **flute and oboe start with family =
//! brass** — the data error the user notices and corrects in Figures 4–5.

use isis_core::{
    Atom, AttrDerivation, AttrId, ClassId, Clause, CompareOp, Database, EntityId, GroupingId, Map,
    Multiplicity, Predicate, Result, Rhs,
};

/// Every id of the Instrumental_Music schema and its notable entities,
/// for use by tests, figures and examples.
#[derive(Debug, Clone)]
pub struct InstrumentalMusic {
    /// The database itself.
    pub db: Database,
    // Classes -----------------------------------------------------------
    /// Baseclass *musicians*.
    pub musicians: ClassId,
    /// Baseclass *instruments*.
    pub instruments: ClassId,
    /// Baseclass *music_groups*.
    pub music_groups: ClassId,
    /// Baseclass *families*.
    pub families: ClassId,
    /// Derived subclass *play_strings* ⊆ musicians.
    pub play_strings: ClassId,
    /// User-defined subclass *soloists* ⊆ musicians.
    pub soloists: ClassId,
    // Attributes ---------------------------------------------------------
    /// musicians.stage_name (naming).
    pub stage_name: AttrId,
    /// musicians.plays ↔ instruments.
    pub plays: AttrId,
    /// musicians.union → YES/NO.
    pub union_attr: AttrId,
    /// play_strings.in_group → YES/NO.
    pub in_group: AttrId,
    /// instruments.family → families.
    pub family: AttrId,
    /// instruments.popular → YES/NO.
    pub popular: AttrId,
    /// music_groups.members ↔ musicians.
    pub members: AttrId,
    /// music_groups.size → INTEGERS.
    pub size: AttrId,
    /// music_groups.includes ↔ families.
    pub includes: AttrId,
    // Groupings ----------------------------------------------------------
    /// by_instrument: musicians grouped on plays.
    pub by_instrument: GroupingId,
    /// work_status: musicians grouped on union.
    pub work_status: GroupingId,
    /// by_family: instruments grouped on family.
    pub by_family: GroupingId,
    /// by_in_group: play_strings grouped on in_group.
    pub by_in_group: GroupingId,
    // Notable entities ----------------------------------------------------
    /// Edith, the violist/violinist of the winning quartet (Figure 11).
    pub edith: EntityId,
    /// flute — starts mis-filed under brass (Figures 3–5).
    pub flute: EntityId,
    /// oboe — starts mis-filed under brass (Figures 3–5).
    pub oboe: EntityId,
    /// piano — the accompanist's instrument (atom E, Figure 9).
    pub piano: EntityId,
    /// viola (Edith plays it).
    pub viola: EntityId,
    /// violin (Edith plays it).
    pub violin: EntityId,
    /// The brass family entity.
    pub brass: EntityId,
    /// The woodwind family entity.
    pub woodwind: EntityId,
    /// The stringed family entity.
    pub stringed: EntityId,
    /// The percussion family entity.
    pub percussion: EntityId,
    /// The keyboard family entity.
    pub keyboard: EntityId,
    /// "LaBelle Musique": the only quartet of size 4 with a pianist.
    pub labelle: EntityId,
    /// All musicians, in insertion order.
    pub all_musicians: Vec<EntityId>,
    /// All instruments, in insertion order.
    pub all_instruments: Vec<EntityId>,
    /// All music groups, in insertion order.
    pub all_groups: Vec<EntityId>,
}

/// Builds the Instrumental_Music database exactly as the §4.2 session finds
/// it (including the flute/oboe family error).
pub fn instrumental_music() -> Result<InstrumentalMusic> {
    let mut db = Database::new("Instrumental_Music");

    // ---- Schema ---------------------------------------------------------
    let musicians = db.create_baseclass("musicians")?;
    let instruments = db.create_baseclass("instruments")?;
    let music_groups = db.create_baseclass("music_groups")?;
    let families = db.create_baseclass("families")?;

    let yn = db.predefined(isis_core::BaseKind::Booleans);
    let ints = db.predefined(isis_core::BaseKind::Integers);

    let stage_name = db.naming_attr(musicians)?;
    db.rename_attr(stage_name, "stage_name")?;
    let plays = db.create_attribute(musicians, "plays", instruments, Multiplicity::Multi)?;
    let union_attr = db.create_attribute(musicians, "union", yn, Multiplicity::Single)?;

    let family = db.create_attribute(instruments, "family", families, Multiplicity::Single)?;
    let popular = db.create_attribute(instruments, "popular", yn, Multiplicity::Single)?;

    let members = db.create_attribute(music_groups, "members", musicians, Multiplicity::Multi)?;
    let size = db.create_attribute(music_groups, "size", ints, Multiplicity::Single)?;
    let includes = db.create_attribute(music_groups, "includes", families, Multiplicity::Multi)?;

    let by_instrument = db.create_grouping(musicians, "by_instrument", plays)?;
    let work_status = db.create_grouping(musicians, "work_status", union_attr)?;
    let by_family = db.create_grouping(instruments, "by_family", family)?;

    let play_strings = db.create_derived_subclass(musicians, "play_strings")?;
    let in_group = db.create_attribute(play_strings, "in_group", yn, Multiplicity::Single)?;
    let by_in_group = db.create_grouping(play_strings, "by_in_group", in_group)?;

    let soloists = db.create_subclass(musicians, "soloists")?;

    // ---- families -------------------------------------------------------
    let brass = db.insert_entity(families, "brass")?;
    let woodwind = db.insert_entity(families, "woodwind")?;
    let stringed = db.insert_entity(families, "stringed")?;
    let percussion = db.insert_entity(families, "percussion")?;
    let keyboard = db.insert_entity(families, "keyboard")?;

    // ---- instruments ----------------------------------------------------
    let yes = db.boolean(true);
    let no = db.boolean(false);
    let mut all_instruments = Vec::new();
    let instr = |db: &mut Database, name: &str, fam: EntityId, pop: bool| -> Result<EntityId> {
        let e = db.insert_entity(instruments, name)?;
        db.assign_single(e, family, fam)?;
        db.assign_single(e, popular, if pop { yes } else { no })?;
        Ok(e)
    };
    // The session's deliberate data error: flute and oboe filed under brass.
    let flute = instr(&mut db, "flute", brass, true)?;
    let oboe = instr(&mut db, "oboe", brass, false)?;
    let piano = instr(&mut db, "piano", keyboard, true)?;
    let viola = instr(&mut db, "viola", stringed, false)?;
    let violin = instr(&mut db, "violin", stringed, true)?;
    let cello = instr(&mut db, "cello", stringed, false)?;
    let guitar = instr(&mut db, "guitar", stringed, true)?;
    let harp = instr(&mut db, "harp", stringed, false)?;
    let trumpet = instr(&mut db, "trumpet", brass, true)?;
    let tuba = instr(&mut db, "tuba", brass, false)?;
    let drums = instr(&mut db, "drums", percussion, true)?;
    let cymbals = instr(&mut db, "cymbals", percussion, false)?;
    all_instruments.extend([
        flute, oboe, piano, viola, violin, cello, guitar, harp, trumpet, tuba, drums, cymbals,
    ]);

    // ---- musicians ------------------------------------------------------
    let mut all_musicians = Vec::new();
    let musician = |db: &mut Database,
                    name: &str,
                    plays_set: &[EntityId],
                    in_union: bool|
     -> Result<EntityId> {
        let e = db.insert_entity(musicians, name)?;
        db.assign_multi(e, plays, plays_set.iter().copied())?;
        db.assign_single(e, union_attr, if in_union { yes } else { no })?;
        Ok(e)
    };
    let edith = musician(&mut db, "Edith", &[viola, violin], true)?;
    let ian = musician(&mut db, "Ian", &[cello], true)?;
    let kurt = musician(&mut db, "Kurt", &[piano], true)?;
    let donna = musician(&mut db, "Donna", &[violin], false)?;
    let amy = musician(&mut db, "Amy", &[flute, oboe], true)?;
    let bob = musician(&mut db, "Bob", &[trumpet, tuba], false)?;
    let carol = musician(&mut db, "Carol", &[drums, cymbals], true)?;
    let dave = musician(&mut db, "Dave", &[guitar], false)?;
    let fiona = musician(&mut db, "Fiona", &[harp, piano], true)?;
    let gil = musician(&mut db, "Gil", &[violin, viola], false)?;
    let hana = musician(&mut db, "Hana", &[piano], true)?;
    let ivan = musician(&mut db, "Ivan", &[oboe], true)?;
    all_musicians.extend([
        edith, ian, kurt, donna, amy, bob, carol, dave, fiona, gil, hana, ivan,
    ]);

    // ---- music groups ---------------------------------------------------
    let mut all_groups = Vec::new();
    let group =
        |db: &mut Database, name: &str, mem: &[EntityId], fams: &[EntityId]| -> Result<EntityId> {
            let e = db.insert_entity(music_groups, name)?;
            db.assign_multi(e, members, mem.iter().copied())?;
            let n = db.int(mem.len() as i64);
            db.assign_single(e, size, n)?;
            db.assign_multi(e, includes, fams.iter().copied())?;
            Ok(e)
        };
    // The one group satisfying size = 4 AND plays ⊇ {piano}.
    let labelle = group(
        &mut db,
        "LaBelle Musique",
        &[edith, ian, kurt, donna],
        &[stringed, keyboard],
    )?;
    // A string quartet of four — but no pianist.
    group(
        &mut db,
        "String Fling",
        &[edith, donna, dave, gil],
        &[stringed],
    )?;
    // A trio with a pianist — wrong size.
    group(
        &mut db,
        "Trio Grande",
        &[fiona, hana, carol],
        &[stringed, keyboard, percussion],
    )?;
    // A brass five-piece.
    group(
        &mut db,
        "Brass Attack",
        &[bob, amy, carol, ivan, gil],
        &[brass, percussion, stringed],
    )?;
    let g2 = db.entity_by_name(music_groups, "String Fling")?;
    let g3 = db.entity_by_name(music_groups, "Trio Grande")?;
    let g4 = db.entity_by_name(music_groups, "Brass Attack")?;
    all_groups.extend([labelle, g2, g3, g4]);

    // ---- play_strings: derived subclass --------------------------------
    // "musicians who play at least one instrument whose attribute family
    // has the value stringed": plays family ~ {stringed}.
    let pred = Predicate::dnf(vec![Clause::new(vec![Atom::new(
        Map::new(vec![plays, family]),
        CompareOp::Match,
        Rhs::constant(families, [stringed]),
    )])]);
    db.commit_membership(play_strings, pred)?;

    // in_group: whether the string player is a member of some music group.
    // Derived via form (b): identity(e) ∈ members of some group — expressed
    // as a YES/NO assignment maintained by derivation over the data we just
    // built (the paper leaves its derivation informal; we materialise it).
    let members_of_groups: Vec<EntityId> = {
        let mut v = Vec::new();
        for g in &all_groups {
            for m in db.attr_value_set(*g, members)?.iter() {
                v.push(m);
            }
        }
        v
    };
    let string_players: Vec<EntityId> = db.members(play_strings)?.iter().collect();
    for p in string_players {
        let val = if members_of_groups.contains(&p) {
            yes
        } else {
            no
        };
        db.assign_single(p, in_group, val)?;
    }

    // ---- soloists: user-defined (hand-picked) subclass ------------------
    for s in [edith, fiona, amy] {
        db.add_to_class(s, soloists)?;
    }

    // in_group derivation sanity: the database must be consistent.
    debug_assert!(db.is_consistent()?);

    Ok(InstrumentalMusic {
        db,
        musicians,
        instruments,
        music_groups,
        families,
        play_strings,
        soloists,
        stage_name,
        plays,
        union_attr,
        in_group,
        family,
        popular,
        members,
        size,
        includes,
        by_instrument,
        work_status,
        by_family,
        by_in_group,
        edith,
        flute,
        oboe,
        piano,
        viola,
        violin,
        brass,
        woodwind,
        stringed,
        percussion,
        keyboard,
        labelle,
        all_musicians,
        all_instruments,
        all_groups,
    })
}

/// The quartets predicate of Figure 9: CNF of
/// clause 1 `{ members plays ⊇ {piano} }` and clause 2 `{ size = {4} }`.
pub fn quartets_predicate(im: &mut InstrumentalMusic) -> Predicate {
    let four = im.db.int(4);
    let ints = im.db.predefined(isis_core::BaseKind::Integers);
    let atom_a = Atom::new(
        Map::single(im.size),
        CompareOp::SetEq,
        Rhs::constant(ints, [four]),
    );
    let atom_e = Atom::new(
        Map::new(vec![im.members, im.plays]),
        CompareOp::Superset,
        Rhs::constant(im.instruments, [im.piano]),
    );
    Predicate::cnf(vec![Clause::new(vec![atom_e]), Clause::new(vec![atom_a])])
}

/// The all_inst derivation of Figure 10: the hand operator applied to the
/// map `members plays`.
pub fn all_inst_derivation(im: &InstrumentalMusic) -> AttrDerivation {
    AttrDerivation::Assign(Map::new(vec![im.members, im.plays]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_is_consistent() {
        let im = instrumental_music().unwrap();
        assert!(im.db.is_consistent().unwrap());
        assert_eq!(im.db.name, "Instrumental_Music");
        assert_eq!(im.all_musicians.len(), 12);
        assert_eq!(im.all_instruments.len(), 12);
        assert_eq!(im.all_groups.len(), 4);
    }

    #[test]
    fn flute_and_oboe_start_misfiled_as_brass() {
        let im = instrumental_music().unwrap();
        let fam_of = |e| im.db.attr_value_set(e, im.family).unwrap();
        assert_eq!(fam_of(im.flute).as_slice(), &[im.brass]);
        assert_eq!(fam_of(im.oboe).as_slice(), &[im.brass]);
    }

    #[test]
    fn play_strings_contains_exactly_string_players() {
        let im = instrumental_music().unwrap();
        let ps = im.db.members(im.play_strings).unwrap();
        for m in &im.all_musicians {
            let plays_string = im
                .db
                .eval_map([*m], &Map::new(vec![im.plays, im.family]))
                .unwrap()
                .contains(im.stringed);
            assert_eq!(ps.contains(*m), plays_string, "musician {m}");
        }
        // Edith plays viola+violin → a string player.
        assert!(ps.contains(im.edith));
    }

    #[test]
    fn quartets_query_selects_labelle_only() {
        let mut im = instrumental_music().unwrap();
        let pred = quartets_predicate(&mut im);
        let sel = im
            .db
            .evaluate_derived_members(im.music_groups, &pred)
            .unwrap();
        assert_eq!(sel.as_slice(), &[im.labelle]);
    }

    #[test]
    fn all_inst_derivation_yields_quartet_instruments() {
        let mut im = instrumental_music().unwrap();
        let pred = quartets_predicate(&mut im);
        let quartets = im
            .db
            .create_derived_subclass(im.music_groups, "quartets")
            .unwrap();
        im.db.commit_membership(quartets, pred).unwrap();
        let all_inst = im
            .db
            .create_attribute(quartets, "all_inst", im.instruments, Multiplicity::Multi)
            .unwrap();
        im.db
            .commit_derivation(all_inst, all_inst_derivation(&im))
            .unwrap();
        let set = im.db.attr_value_set(im.labelle, all_inst).unwrap();
        // Edith: viola+violin, Ian: cello, Kurt: piano, Donna: violin.
        let cello = im.db.entity_by_name(im.instruments, "cello").unwrap();
        for e in [im.viola, im.violin, im.piano, cello] {
            assert!(set.contains(e));
        }
        assert_eq!(set.len(), 4);
    }

    #[test]
    fn by_family_grouping_reflects_the_misfiled_flute() {
        let im = instrumental_music().unwrap();
        let sets = im.db.grouping_sets(im.by_family).unwrap();
        let brass_set = sets.iter().find(|s| s.index == im.brass).unwrap();
        assert!(brass_set.members.contains(im.flute));
        assert!(brass_set.members.contains(im.oboe));
        let wood_set = sets.iter().find(|s| s.index == im.woodwind).unwrap();
        assert!(wood_set.members.is_empty());
    }

    #[test]
    fn groupings_cover_musicians() {
        let im = instrumental_music().unwrap();
        // work_status splits into union / non-union, covering everyone.
        let sets = im.db.grouping_sets(im.work_status).unwrap();
        let total: usize = sets.iter().map(|s| s.members.len()).sum();
        assert_eq!(total, im.all_musicians.len());
        // by_instrument: every musician appears once per instrument played.
        let sets = im.db.grouping_sets(im.by_instrument).unwrap();
        let total: usize = sets.iter().map(|s| s.members.len()).sum();
        let expected: usize = im
            .all_musicians
            .iter()
            .map(|m| im.db.attr_value_set(*m, im.plays).unwrap().len())
            .sum();
        assert_eq!(total, expected);
    }

    #[test]
    fn soloists_enumerated() {
        let im = instrumental_music().unwrap();
        assert_eq!(im.db.members(im.soloists).unwrap().len(), 3);
        assert!(im.db.members(im.soloists).unwrap().contains(im.edith));
        assert!(!im.db.class(im.soloists).unwrap().is_derived());
    }
}
