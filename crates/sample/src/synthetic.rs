//! Scalable synthetic Instrumental_Music-shaped databases.
//!
//! The paper ran on interactive data sizes; the benchmark harness needs the
//! same *shape* of schema at parameterised scale. `synthetic_music` builds a
//! database with `n_musicians` musicians, `n_instruments` instruments,
//! `n_families` families and `n_groups` music groups, with deterministic
//! pseudo-random attribute assignments driven by `seed`.

use isis_core::{AttrId, ClassId, Database, EntityId, Multiplicity, Result};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Scale parameters for [`synthetic_music`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Number of musicians.
    pub musicians: usize,
    /// Number of instruments.
    pub instruments: usize,
    /// Number of families.
    pub families: usize,
    /// Number of music groups.
    pub groups: usize,
    /// Maximum instruments per musician (≥ 1).
    pub max_plays: usize,
    /// Maximum members per group (≥ 1).
    pub max_members: usize,
}

impl Scale {
    /// A scale with `n` musicians and proportionate everything else.
    pub fn of(n: usize) -> Scale {
        Scale {
            musicians: n,
            instruments: (n / 4).max(4),
            families: (n / 20).clamp(4, 64),
            groups: (n / 4).max(2),
            max_plays: 4,
            max_members: 6,
        }
    }
}

/// Ids of the synthetic schema (mirrors the §4.1 schema).
#[derive(Debug, Clone)]
pub struct SyntheticMusic {
    /// The generated database.
    pub db: Database,
    /// Baseclass musicians.
    pub musicians: ClassId,
    /// Baseclass instruments.
    pub instruments: ClassId,
    /// Baseclass music_groups.
    pub music_groups: ClassId,
    /// Baseclass families.
    pub families: ClassId,
    /// musicians.plays ↔ instruments.
    pub plays: AttrId,
    /// musicians.union → YES/NO.
    pub union_attr: AttrId,
    /// instruments.family → families.
    pub family: AttrId,
    /// music_groups.members ↔ musicians.
    pub members: AttrId,
    /// music_groups.size → INTEGERS.
    pub size: AttrId,
    /// by_family grouping on instruments.
    pub by_family: isis_core::GroupingId,
    /// All musician ids.
    pub musician_ids: Vec<EntityId>,
    /// All instrument ids.
    pub instrument_ids: Vec<EntityId>,
    /// All family ids.
    pub family_ids: Vec<EntityId>,
    /// All group ids.
    pub group_ids: Vec<EntityId>,
}

/// Builds a deterministic synthetic database at the given scale.
pub fn synthetic_music(scale: Scale, seed: u64) -> Result<SyntheticMusic> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new(format!("synthetic_{}m", scale.musicians));
    let musicians = db.create_baseclass("musicians")?;
    let instruments = db.create_baseclass("instruments")?;
    let music_groups = db.create_baseclass("music_groups")?;
    let families = db.create_baseclass("families")?;
    let yn = db.predefined(isis_core::BaseKind::Booleans);
    let ints = db.predefined(isis_core::BaseKind::Integers);
    let plays = db.create_attribute(musicians, "plays", instruments, Multiplicity::Multi)?;
    let union_attr = db.create_attribute(musicians, "union", yn, Multiplicity::Single)?;
    let family = db.create_attribute(instruments, "family", families, Multiplicity::Single)?;
    let members = db.create_attribute(music_groups, "members", musicians, Multiplicity::Multi)?;
    let size = db.create_attribute(music_groups, "size", ints, Multiplicity::Single)?;
    let by_family = db.create_grouping(instruments, "by_family", family)?;

    let family_ids: Vec<EntityId> = (0..scale.families)
        .map(|i| db.insert_entity(families, &format!("family{i}")))
        .collect::<Result<_>>()?;
    let instrument_ids: Vec<EntityId> = (0..scale.instruments)
        .map(|i| db.insert_entity(instruments, &format!("instrument{i}")))
        .collect::<Result<_>>()?;
    for &i in &instrument_ids {
        let f = family_ids[rng.gen_range(0..family_ids.len())];
        db.assign_single(i, family, f)?;
    }
    let yes = db.boolean(true);
    let no = db.boolean(false);
    let musician_ids: Vec<EntityId> = (0..scale.musicians)
        .map(|i| db.insert_entity(musicians, &format!("musician{i}")))
        .collect::<Result<_>>()?;
    for &m in &musician_ids {
        let k = rng.gen_range(1..=scale.max_plays.min(instrument_ids.len()));
        let chosen: Vec<EntityId> = instrument_ids
            .choose_multiple(&mut rng, k)
            .copied()
            .collect();
        db.assign_multi(m, plays, chosen)?;
        db.assign_single(m, union_attr, if rng.gen_bool(0.7) { yes } else { no })?;
    }
    let group_ids: Vec<EntityId> = (0..scale.groups)
        .map(|i| db.insert_entity(music_groups, &format!("group{i}")))
        .collect::<Result<_>>()?;
    for &g in &group_ids {
        let k = rng.gen_range(1..=scale.max_members.min(musician_ids.len()));
        let chosen: Vec<EntityId> = musician_ids.choose_multiple(&mut rng, k).copied().collect();
        let n = db.int(chosen.len() as i64);
        db.assign_multi(g, members, chosen)?;
        db.assign_single(g, size, n)?;
    }
    Ok(SyntheticMusic {
        db,
        musicians,
        instruments,
        music_groups,
        families,
        plays,
        union_attr,
        family,
        members,
        size,
        by_family,
        musician_ids,
        instrument_ids,
        family_ids,
        group_ids,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let a = synthetic_music(Scale::of(50), 7).unwrap();
        let b = synthetic_music(Scale::of(50), 7).unwrap();
        assert_eq!(a.db.entity_count(), b.db.entity_count());
        for (&ma, &mb) in a.musician_ids.iter().zip(&b.musician_ids) {
            assert_eq!(
                a.db.attr_value_set(ma, a.plays).unwrap().as_slice(),
                b.db.attr_value_set(mb, b.plays).unwrap().as_slice()
            );
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = synthetic_music(Scale::of(50), 1).unwrap();
        let b = synthetic_music(Scale::of(50), 2).unwrap();
        let mut same = true;
        for (&ma, &mb) in a.musician_ids.iter().zip(&b.musician_ids) {
            if a.db.attr_value_set(ma, a.plays).unwrap().as_slice()
                != b.db.attr_value_set(mb, b.plays).unwrap().as_slice()
            {
                same = false;
                break;
            }
        }
        assert!(!same);
    }

    #[test]
    fn generated_database_is_consistent() {
        let s = synthetic_music(Scale::of(120), 42).unwrap();
        assert!(s.db.is_consistent().unwrap());
        assert_eq!(s.musician_ids.len(), 120);
        // Every musician plays at least one instrument.
        for &m in &s.musician_ids {
            assert!(!s.db.attr_value_set(m, s.plays).unwrap().is_empty());
        }
        // Sizes match member counts.
        for &g in &s.group_ids {
            let n = s.db.attr_value_set(g, s.members).unwrap().len() as i64;
            let stored = s.db.attr_value(g, s.size).unwrap().as_set();
            let lit = s.db.literal_of(stored.as_singleton().unwrap()).unwrap();
            assert_eq!(lit, &isis_core::Literal::Int(n));
        }
    }

    #[test]
    fn tiny_scale_works() {
        let s = synthetic_music(
            Scale {
                musicians: 1,
                instruments: 1,
                families: 1,
                groups: 1,
                max_plays: 1,
                max_members: 1,
            },
            0,
        )
        .unwrap();
        assert!(s.db.is_consistent().unwrap());
    }
}
