//! Scalable synthetic Instrumental_Music-shaped databases.
//!
//! The paper ran on interactive data sizes; the benchmark harness needs the
//! same *shape* of schema at parameterised scale. `synthetic_music` builds a
//! database with `n_musicians` musicians, `n_instruments` instruments,
//! `n_families` families and `n_groups` music groups, with deterministic
//! pseudo-random attribute assignments driven by `seed`.

use isis_core::{AttrId, AttrValue, ClassId, Database, EntityId, Multiplicity, Result};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Scale parameters for [`synthetic_music`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Number of musicians.
    pub musicians: usize,
    /// Number of instruments.
    pub instruments: usize,
    /// Number of families.
    pub families: usize,
    /// Number of music groups.
    pub groups: usize,
    /// Maximum instruments per musician (≥ 1).
    pub max_plays: usize,
    /// Maximum members per group (≥ 1).
    pub max_members: usize,
}

impl Scale {
    /// A scale with `n` musicians and proportionate everything else.
    pub fn of(n: usize) -> Scale {
        Scale {
            musicians: n,
            instruments: (n / 4).max(4),
            families: (n / 20).clamp(4, 64),
            groups: (n / 4).max(2),
            max_plays: 4,
            max_members: 6,
        }
    }
}

/// Ids of the synthetic schema (mirrors the §4.1 schema).
#[derive(Debug, Clone)]
pub struct SyntheticMusic {
    /// The generated database.
    pub db: Database,
    /// Baseclass musicians.
    pub musicians: ClassId,
    /// Baseclass instruments.
    pub instruments: ClassId,
    /// Baseclass music_groups.
    pub music_groups: ClassId,
    /// Baseclass families.
    pub families: ClassId,
    /// musicians.plays ↔ instruments.
    pub plays: AttrId,
    /// musicians.union → YES/NO.
    pub union_attr: AttrId,
    /// instruments.family → families.
    pub family: AttrId,
    /// music_groups.members ↔ musicians.
    pub members: AttrId,
    /// music_groups.size → INTEGERS.
    pub size: AttrId,
    /// by_family grouping on instruments.
    pub by_family: isis_core::GroupingId,
    /// All musician ids.
    pub musician_ids: Vec<EntityId>,
    /// All instrument ids.
    pub instrument_ids: Vec<EntityId>,
    /// All family ids.
    pub family_ids: Vec<EntityId>,
    /// All group ids.
    pub group_ids: Vec<EntityId>,
}

/// Builds a deterministic synthetic database at the given scale.
pub fn synthetic_music(scale: Scale, seed: u64) -> Result<SyntheticMusic> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new(format!("synthetic_{}m", scale.musicians));
    let musicians = db.create_baseclass("musicians")?;
    let instruments = db.create_baseclass("instruments")?;
    let music_groups = db.create_baseclass("music_groups")?;
    let families = db.create_baseclass("families")?;
    let yn = db.predefined(isis_core::BaseKind::Booleans);
    let ints = db.predefined(isis_core::BaseKind::Integers);
    let plays = db.create_attribute(musicians, "plays", instruments, Multiplicity::Multi)?;
    let union_attr = db.create_attribute(musicians, "union", yn, Multiplicity::Single)?;
    let family = db.create_attribute(instruments, "family", families, Multiplicity::Single)?;
    let members = db.create_attribute(music_groups, "members", musicians, Multiplicity::Multi)?;
    let size = db.create_attribute(music_groups, "size", ints, Multiplicity::Single)?;
    let by_family = db.create_grouping(instruments, "by_family", family)?;

    let family_ids: Vec<EntityId> = (0..scale.families)
        .map(|i| db.insert_entity(families, &format!("family{i}")))
        .collect::<Result<_>>()?;
    let instrument_ids: Vec<EntityId> = (0..scale.instruments)
        .map(|i| db.insert_entity(instruments, &format!("instrument{i}")))
        .collect::<Result<_>>()?;
    for &i in &instrument_ids {
        let f = family_ids[rng.gen_range(0..family_ids.len())];
        db.assign_single(i, family, f)?;
    }
    let yes = db.boolean(true);
    let no = db.boolean(false);
    let musician_ids: Vec<EntityId> = (0..scale.musicians)
        .map(|i| db.insert_entity(musicians, &format!("musician{i}")))
        .collect::<Result<_>>()?;
    for &m in &musician_ids {
        let k = rng.gen_range(1..=scale.max_plays.min(instrument_ids.len()));
        let chosen: Vec<EntityId> = instrument_ids
            .choose_multiple(&mut rng, k)
            .copied()
            .collect();
        db.assign_multi(m, plays, chosen)?;
        db.assign_single(m, union_attr, if rng.gen_bool(0.7) { yes } else { no })?;
    }
    let group_ids: Vec<EntityId> = (0..scale.groups)
        .map(|i| db.insert_entity(music_groups, &format!("group{i}")))
        .collect::<Result<_>>()?;
    for &g in &group_ids {
        let k = rng.gen_range(1..=scale.max_members.min(musician_ids.len()));
        let chosen: Vec<EntityId> = musician_ids.choose_multiple(&mut rng, k).copied().collect();
        let n = db.int(chosen.len() as i64);
        db.assign_multi(g, members, chosen)?;
        db.assign_single(g, size, n)?;
    }
    Ok(SyntheticMusic {
        db,
        musicians,
        instruments,
        music_groups,
        families,
        plays,
        union_attr,
        family,
        members,
        size,
        by_family,
        musician_ids,
        instrument_ids,
        family_ids,
        group_ids,
    })
}

/// How scaled generation distributes attribute values over their value
/// class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueDist {
    /// Every value equally likely.
    Uniform,
    /// Zipf-skewed (weight 1/rank): a few values dominate, as real
    /// catalogues do — stresses skewed posting lists and hot grouping
    /// sets.
    Zipf,
}

impl ValueDist {
    /// Harness label ("uniform" / "zipf").
    pub fn label(self) -> &'static str {
        match self {
            ValueDist::Uniform => "uniform",
            ValueDist::Zipf => "zipf",
        }
    }
}

/// The schema axis of the scaling sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchemaShape {
    /// Extra single-valued attributes on musicians: more attributes per
    /// entity, same map depth.
    Wide,
    /// An extra `regions` class with `families.region → regions`, so map
    /// chains reach four steps (`members plays family region`).
    Deep,
}

impl SchemaShape {
    /// Harness label ("wide" / "deep").
    pub fn label(self) -> &'static str {
        match self {
            SchemaShape::Wide => "wide",
            SchemaShape::Deep => "deep",
        }
    }
}

/// Specification for [`synthetic_scaled`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SynthSpec {
    /// Approximate total entity budget (musicians + instruments + groups +
    /// families + shape extras land within ~5% of this).
    pub entities: usize,
    /// Value distribution for instrument/family assignments.
    pub dist: ValueDist,
    /// Schema shape.
    pub shape: SchemaShape,
    /// Generation seed.
    pub seed: u64,
}

/// Number of extra single-valued attributes [`SchemaShape::Wide`] adds.
pub const WIDE_EXTRA_ATTRS: usize = 6;

/// A [`SyntheticMusic`] database grown to an entity budget, with the
/// scaling sweep's distribution and shape extras.
#[derive(Debug, Clone)]
pub struct ScaledMusic {
    /// The base schema and population (same shape as [`synthetic_music`]).
    pub s: SyntheticMusic,
    /// The extra single-valued integer attributes on musicians
    /// ([`SchemaShape::Wide`] only; empty for deep).
    pub wide_attrs: Vec<AttrId>,
    /// Baseclass regions ([`SchemaShape::Deep`] only).
    pub regions: Option<ClassId>,
    /// families.region → regions ([`SchemaShape::Deep`] only).
    pub region: Option<AttrId>,
    /// All region ids (empty for wide).
    pub region_ids: Vec<EntityId>,
}

/// Normalised cumulative Zipf weights (weight of rank k ∝ 1/k) for
/// [`pick_index`]'s binary search.
fn zipf_cum(n: usize) -> Vec<f64> {
    let mut cum = Vec::with_capacity(n);
    let mut total = 0.0;
    for k in 0..n {
        total += 1.0 / (k + 1) as f64;
        cum.push(total);
    }
    for v in &mut cum {
        *v /= total;
    }
    cum
}

/// Samples an index in `0..len`: uniform when `cum` is `None`, otherwise
/// by inverse transform over the cumulative weights.
fn pick_index(rng: &mut StdRng, cum: Option<&[f64]>, len: usize) -> usize {
    match cum {
        None => rng.gen_range(0..len),
        Some(c) => {
            let x: f64 = rng.gen();
            c.partition_point(|&v| v < x).min(len - 1)
        }
    }
}

/// Samples `k` distinct indices in `0..len` under the distribution;
/// bounded retries, then a linear fill, so heavy skew still terminates.
fn pick_distinct(rng: &mut StdRng, cum: Option<&[f64]>, len: usize, k: usize) -> Vec<usize> {
    let k = k.min(len);
    let mut out: Vec<usize> = Vec::with_capacity(k);
    let mut tries = 0;
    while out.len() < k && tries < 8 * k + 16 {
        tries += 1;
        let i = pick_index(rng, cum, len);
        if !out.contains(&i) {
            out.push(i);
        }
    }
    let mut next = 0;
    while out.len() < k {
        if !out.contains(&next) {
            out.push(next);
        }
        next += 1;
    }
    out
}

/// Builds a deterministic database of roughly `spec.entities` entities
/// with the requested value distribution and schema shape. The base
/// population follows [`Scale::of`] proportions (musicians ≈ 2/3 of the
/// budget, instruments and groups ≈ 1/6 each).
pub fn synthetic_scaled(spec: SynthSpec) -> Result<ScaledMusic> {
    let musicians_n = (spec.entities * 2 / 3).max(4);
    let scale = Scale::of(musicians_n);
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut db = Database::new(format!(
        "scaled_{}e_{}_{}",
        spec.entities,
        spec.dist.label(),
        spec.shape.label()
    ));
    let musicians = db.create_baseclass("musicians")?;
    let instruments = db.create_baseclass("instruments")?;
    let music_groups = db.create_baseclass("music_groups")?;
    let families = db.create_baseclass("families")?;
    let yn = db.predefined(isis_core::BaseKind::Booleans);
    let ints = db.predefined(isis_core::BaseKind::Integers);
    let plays = db.create_attribute(musicians, "plays", instruments, Multiplicity::Multi)?;
    let union_attr = db.create_attribute(musicians, "union", yn, Multiplicity::Single)?;
    let family = db.create_attribute(instruments, "family", families, Multiplicity::Single)?;
    let members = db.create_attribute(music_groups, "members", musicians, Multiplicity::Multi)?;
    let size = db.create_attribute(music_groups, "size", ints, Multiplicity::Single)?;
    let by_family = db.create_grouping(instruments, "by_family", family)?;

    // Shape extras are part of the schema before any data lands, so the
    // delta log sees one schema era for the whole population.
    let mut wide_attrs = Vec::new();
    let mut regions = None;
    let mut region = None;
    match spec.shape {
        SchemaShape::Wide => {
            for i in 0..WIDE_EXTRA_ATTRS {
                wide_attrs.push(db.create_attribute(
                    musicians,
                    &format!("metric{i}"),
                    ints,
                    Multiplicity::Single,
                )?);
            }
        }
        SchemaShape::Deep => {
            let r = db.create_baseclass("regions")?;
            regions = Some(r);
            region = Some(db.create_attribute(families, "region", r, Multiplicity::Single)?);
        }
    }

    let fam_cum = match spec.dist {
        ValueDist::Uniform => None,
        ValueDist::Zipf => Some(zipf_cum(scale.families)),
    };
    let inst_cum = match spec.dist {
        ValueDist::Uniform => None,
        ValueDist::Zipf => Some(zipf_cum(scale.instruments)),
    };

    // Bulk load: entities land through `insert_entities` (baseclass
    // validated once, arena capacity reserved) and assignments through
    // `assign_batch` in BULK-sized batches, so the generator materialises
    // one ChangeSet per batch instead of one per assignment. Semantics per
    // item are identical to the scalar calls; only the delta-suffix count
    // changes.
    const BULK: usize = 4096;
    fn flush(db: &mut Database, batch: &mut Vec<(EntityId, AttrId, AttrValue)>) -> Result<()> {
        if !batch.is_empty() {
            db.assign_batch(batch.drain(..))?;
        }
        Ok(())
    }
    let mut batch: Vec<(EntityId, AttrId, AttrValue)> = Vec::with_capacity(BULK);

    let region_ids: Vec<EntityId> = match regions {
        Some(r) => db.insert_entities(
            r,
            (0..(scale.families / 4).max(2)).map(|i| format!("region{i}")),
        )?,
        None => Vec::new(),
    };
    let family_ids: Vec<EntityId> =
        db.insert_entities(families, (0..scale.families).map(|i| format!("family{i}")))?;
    if let Some(attr) = region {
        for &f in &family_ids {
            let r = region_ids[pick_index(&mut rng, None, region_ids.len())];
            batch.push((f, attr, AttrValue::Single(r)));
            if batch.len() >= BULK {
                flush(&mut db, &mut batch)?;
            }
        }
        flush(&mut db, &mut batch)?;
    }
    let instrument_ids: Vec<EntityId> = db.insert_entities(
        instruments,
        (0..scale.instruments).map(|i| format!("instrument{i}")),
    )?;
    for &i in &instrument_ids {
        let f = family_ids[pick_index(&mut rng, fam_cum.as_deref(), family_ids.len())];
        batch.push((i, family, AttrValue::Single(f)));
        if batch.len() >= BULK {
            flush(&mut db, &mut batch)?;
        }
    }
    flush(&mut db, &mut batch)?;
    let yes = db.boolean(true);
    let no = db.boolean(false);
    let musician_ids: Vec<EntityId> = db.insert_entities(
        musicians,
        (0..scale.musicians).map(|i| format!("musician{i}")),
    )?;
    for &m in &musician_ids {
        let k = rng.gen_range(1..=scale.max_plays.min(instrument_ids.len()));
        let chosen = pick_distinct(&mut rng, inst_cum.as_deref(), instrument_ids.len(), k)
            .into_iter()
            .map(|i| instrument_ids[i])
            .collect();
        batch.push((m, plays, AttrValue::Multi(chosen)));
        batch.push((
            m,
            union_attr,
            AttrValue::Single(if rng.gen_bool(0.7) { yes } else { no }),
        ));
        for &w in &wide_attrs {
            let v = db.int(rng.gen_range(0..100));
            batch.push((m, w, AttrValue::Single(v)));
        }
        if batch.len() >= BULK {
            flush(&mut db, &mut batch)?;
        }
    }
    flush(&mut db, &mut batch)?;
    let group_ids: Vec<EntityId> =
        db.insert_entities(music_groups, (0..scale.groups).map(|i| format!("group{i}")))?;
    for &g in &group_ids {
        let k = rng.gen_range(1..=scale.max_members.min(musician_ids.len()));
        let chosen: isis_core::OrderedSet = pick_distinct(&mut rng, None, musician_ids.len(), k)
            .into_iter()
            .map(|i| musician_ids[i])
            .collect();
        let n = db.int(chosen.len() as i64);
        batch.push((g, members, AttrValue::Multi(chosen)));
        batch.push((g, size, AttrValue::Single(n)));
        if batch.len() >= BULK {
            flush(&mut db, &mut batch)?;
        }
    }
    flush(&mut db, &mut batch)?;
    Ok(ScaledMusic {
        s: SyntheticMusic {
            db,
            musicians,
            instruments,
            music_groups,
            families,
            plays,
            union_attr,
            family,
            members,
            size,
            by_family,
            musician_ids,
            instrument_ids,
            family_ids,
            group_ids,
        },
        wide_attrs,
        regions,
        region,
        region_ids,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let a = synthetic_music(Scale::of(50), 7).unwrap();
        let b = synthetic_music(Scale::of(50), 7).unwrap();
        assert_eq!(a.db.entity_count(), b.db.entity_count());
        for (&ma, &mb) in a.musician_ids.iter().zip(&b.musician_ids) {
            assert_eq!(
                a.db.attr_value_set(ma, a.plays).unwrap().as_slice(),
                b.db.attr_value_set(mb, b.plays).unwrap().as_slice()
            );
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = synthetic_music(Scale::of(50), 1).unwrap();
        let b = synthetic_music(Scale::of(50), 2).unwrap();
        let mut same = true;
        for (&ma, &mb) in a.musician_ids.iter().zip(&b.musician_ids) {
            if a.db.attr_value_set(ma, a.plays).unwrap().as_slice()
                != b.db.attr_value_set(mb, b.plays).unwrap().as_slice()
            {
                same = false;
                break;
            }
        }
        assert!(!same);
    }

    #[test]
    fn generated_database_is_consistent() {
        let s = synthetic_music(Scale::of(120), 42).unwrap();
        assert!(s.db.is_consistent().unwrap());
        assert_eq!(s.musician_ids.len(), 120);
        // Every musician plays at least one instrument.
        for &m in &s.musician_ids {
            assert!(!s.db.attr_value_set(m, s.plays).unwrap().is_empty());
        }
        // Sizes match member counts.
        for &g in &s.group_ids {
            let n = s.db.attr_value_set(g, s.members).unwrap().len() as i64;
            let stored = s.db.attr_value(g, s.size).unwrap().as_set();
            let lit = s.db.literal_of(stored.as_singleton().unwrap()).unwrap();
            assert_eq!(lit, &isis_core::Literal::Int(n));
        }
    }

    #[test]
    fn scaled_generator_respects_budget_and_shape() {
        for dist in [ValueDist::Uniform, ValueDist::Zipf] {
            for shape in [SchemaShape::Wide, SchemaShape::Deep] {
                let g = synthetic_scaled(SynthSpec {
                    entities: 600,
                    dist,
                    shape,
                    seed: 5,
                })
                .unwrap();
                assert!(g.s.db.is_consistent().unwrap());
                let total = g.s.musician_ids.len()
                    + g.s.instrument_ids.len()
                    + g.s.family_ids.len()
                    + g.s.group_ids.len()
                    + g.region_ids.len();
                assert!(
                    (480..=780).contains(&total),
                    "budget 600 produced {total} entities"
                );
                match shape {
                    SchemaShape::Wide => {
                        assert_eq!(g.wide_attrs.len(), WIDE_EXTRA_ATTRS);
                        assert!(g.regions.is_none());
                    }
                    SchemaShape::Deep => {
                        assert!(g.wide_attrs.is_empty());
                        // Four-step chains must typecheck end to end.
                        let p = isis_core::Predicate::dnf(vec![isis_core::Clause::new(vec![
                            isis_core::Atom::new(
                                isis_core::Map::new(vec![
                                    g.s.members,
                                    g.s.plays,
                                    g.s.family,
                                    g.region.unwrap(),
                                ]),
                                isis_core::CompareOp::Match,
                                isis_core::Rhs::constant(g.regions.unwrap(), [g.region_ids[0]]),
                            ),
                        ])]);
                        g.s.db
                            .evaluate_derived_members(g.s.music_groups, &p)
                            .unwrap();
                    }
                }
            }
        }
    }

    #[test]
    fn zipf_skews_posting_sizes() {
        let spec = |dist| SynthSpec {
            entities: 1500,
            dist,
            shape: SchemaShape::Wide,
            seed: 11,
        };
        let max_owners = |g: &ScaledMusic| {
            let mut counts = vec![0usize; g.s.instrument_ids.len()];
            for &m in &g.s.musician_ids {
                for v in g.s.db.attr_value_set(m, g.s.plays).unwrap().iter() {
                    if let Some(i) = g.s.instrument_ids.iter().position(|&x| x == v) {
                        counts[i] += 1;
                    }
                }
            }
            counts.into_iter().max().unwrap()
        };
        let uni = max_owners(&synthetic_scaled(spec(ValueDist::Uniform)).unwrap());
        let zipf = max_owners(&synthetic_scaled(spec(ValueDist::Zipf)).unwrap());
        assert!(
            zipf > uni * 3,
            "zipf hot instrument ({zipf} owners) must dwarf uniform ({uni})"
        );
    }

    #[test]
    fn tiny_scale_works() {
        let s = synthetic_music(
            Scale {
                musicians: 1,
                instruments: 1,
                families: 1,
                groups: 1,
                max_plays: 1,
                max_members: 1,
            },
            0,
        )
        .unwrap();
        assert!(s.db.is_consistent().unwrap());
    }
}
