//! Workload generators for the benchmark harness.
//!
//! Each generator produces predicates or operation streams over a
//! [`SyntheticMusic`] database, parameterised so benches can sweep the axes
//! the harness reports (class size, atoms per clause, clause count, map
//! length, selectivity).

use isis_core::{Atom, Clause, CompareOp, EntityId, Map, Predicate, Result, Rhs};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::synthetic::SyntheticMusic;

/// A size-equality query over music groups: `size = {k}` (atom A of
/// Figure 9 at arbitrary k).
pub fn size_query(s: &mut SyntheticMusic, k: i64) -> Predicate {
    let kk = s.db.int(k);
    let ints = s.db.predefined(isis_core::BaseKind::Integers);
    Predicate::dnf(vec![Clause::new(vec![Atom::new(
        Map::single(s.size),
        CompareOp::SetEq,
        Rhs::constant(ints, [kk]),
    )])])
}

/// The Figure-9 quartets query shape over the synthetic schema:
/// CNF of `members plays ⊇ {instrument}` and `size = {k}`.
pub fn quartets_query(s: &mut SyntheticMusic, instrument: EntityId, k: i64) -> Predicate {
    let kk = s.db.int(k);
    let ints = s.db.predefined(isis_core::BaseKind::Integers);
    Predicate::cnf(vec![
        Clause::new(vec![Atom::new(
            Map::new(vec![s.members, s.plays]),
            CompareOp::Superset,
            Rhs::constant(s.instruments, [instrument]),
        )]),
        Clause::new(vec![Atom::new(
            Map::single(s.size),
            CompareOp::SetEq,
            Rhs::constant(ints, [kk]),
        )]),
    ])
}

/// A random predicate over musicians with the given clause layout: each
/// clause holds `atoms_per_clause` atoms of the form
/// `plays ~ {random instrument}`.
pub fn random_musician_predicate(
    s: &SyntheticMusic,
    clauses: usize,
    atoms_per_clause: usize,
    dnf: bool,
    seed: u64,
) -> Predicate {
    let mut rng = StdRng::seed_from_u64(seed);
    let mk_atom = |rng: &mut StdRng| {
        let inst = s.instrument_ids[rng.gen_range(0..s.instrument_ids.len())];
        Atom::new(
            Map::single(s.plays),
            CompareOp::Match,
            Rhs::constant(s.instruments, [inst]),
        )
    };
    let cs = (0..clauses)
        .map(|_| Clause::new((0..atoms_per_clause).map(|_| mk_atom(&mut rng)).collect()))
        .collect();
    if dnf {
        Predicate::dnf(cs)
    } else {
        Predicate::cnf(cs)
    }
}

/// A long-map predicate over music groups: a chain
/// `members plays family … ~ {constant}` of the requested length, cycling
/// through `members → plays → family` as far as the schema allows (length is
/// clamped to 3).
pub fn long_map_predicate(s: &SyntheticMusic, len: usize, anchor: EntityId) -> Predicate {
    let steps: Vec<_> = [s.members, s.plays, s.family][..len.clamp(1, 3)].to_vec();
    let class = match len.clamp(1, 3) {
        1 => s.musicians,
        2 => s.instruments,
        _ => s.families,
    };
    Predicate::dnf(vec![Clause::new(vec![Atom::new(
        Map::new(steps),
        CompareOp::Match,
        Rhs::constant(class, [anchor]),
    )])])
}

/// A stepwise-refinement navigation session over musicians, after Query
/// By Navigation: step `i` is a CNF of `i+1` single-atom clauses, so each
/// step narrows the previous one by one more condition. The atoms are
/// single-step and index-shaped (`plays ~ {instrument}`, `union ⊇ {yes}`),
/// exactly what an interactive worksheet refines by, and the chain re-uses
/// the same predicates every browsing round — the workload the program
/// cache exists for.
pub fn navigation_chain(s: &mut SyntheticMusic, steps: usize, seed: u64) -> Vec<Predicate> {
    let mut rng = StdRng::seed_from_u64(seed);
    let yes = s.db.boolean(true);
    let booleans = s.db.predefined(isis_core::BaseKind::Booleans);
    let mut clauses: Vec<Clause> = Vec::new();
    let mut chain = Vec::with_capacity(steps);
    for step in 0..steps {
        let atom = if step == 1 {
            // The second refinement narrows to union members; the rest
            // keep adding instruments.
            Atom::new(
                Map::single(s.union_attr),
                CompareOp::Superset,
                Rhs::constant(booleans, [yes]),
            )
        } else {
            let inst = s.instrument_ids[rng.gen_range(0..s.instrument_ids.len())];
            Atom::new(
                Map::single(s.plays),
                CompareOp::Match,
                Rhs::constant(s.instruments, [inst]),
            )
        };
        clauses.push(Clause::new(vec![atom]));
        chain.push(Predicate::cnf(clauses.clone()));
    }
    chain
}

/// One step of a data-modification stream (used by storage/WAL benches and
/// by randomised consistency tests).
#[derive(Debug, Clone, PartialEq)]
pub enum DataOp {
    /// Insert a fresh musician with the given name suffix.
    InsertMusician(u32),
    /// Reassign `plays` of musician *i* (mod population) to instrument *j*.
    ReassignPlays(u32, u32),
    /// Toggle the union flag of musician *i*.
    ToggleUnion(u32),
    /// Delete musician *i* if still alive.
    DeleteMusician(u32),
}

/// Generates a deterministic stream of `n` data operations.
pub fn data_op_stream(n: usize, seed: u64) -> Vec<DataOp> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| match rng.gen_range(0..10) {
            0..=3 => DataOp::InsertMusician(i as u32),
            4..=6 => DataOp::ReassignPlays(rng.gen(), rng.gen()),
            7..=8 => DataOp::ToggleUnion(rng.gen()),
            _ => DataOp::DeleteMusician(rng.gen()),
        })
        .collect()
}

/// Applies a [`DataOp`] stream to a synthetic database, skipping operations
/// that target entities which no longer exist. Returns how many ops took
/// effect.
pub fn apply_data_ops(s: &mut SyntheticMusic, ops: &[DataOp]) -> Result<usize> {
    let mut applied = 0;
    for op in ops {
        match op {
            DataOp::InsertMusician(i) => {
                let name = format!("extra_musician{i}");
                if s.db.entity_by_name(s.musicians, &name).is_err() {
                    let m = s.db.insert_entity(s.musicians, &name)?;
                    s.musician_ids.push(m);
                    applied += 1;
                }
            }
            DataOp::ReassignPlays(i, j) => {
                let m = s.musician_ids[*i as usize % s.musician_ids.len()];
                let inst = s.instrument_ids[*j as usize % s.instrument_ids.len()];
                if s.db.entity(m).is_ok() {
                    s.db.assign_multi(m, s.plays, [inst])?;
                    applied += 1;
                }
            }
            DataOp::ToggleUnion(i) => {
                let m = s.musician_ids[*i as usize % s.musician_ids.len()];
                if s.db.entity(m).is_ok() {
                    let yes = s.db.boolean(true);
                    let no = s.db.boolean(false);
                    let cur = s.db.attr_value(m, s.union_attr)?.as_set();
                    let next = if cur.contains(yes) { no } else { yes };
                    s.db.assign_single(m, s.union_attr, next)?;
                    applied += 1;
                }
            }
            DataOp::DeleteMusician(i) => {
                let m = s.musician_ids[*i as usize % s.musician_ids.len()];
                if s.db.entity(m).is_ok() && s.db.members(s.musicians)?.len() > 1 {
                    s.db.delete_entity(m)?;
                    applied += 1;
                }
            }
        }
    }
    Ok(applied)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{synthetic_music, Scale};

    #[test]
    fn size_query_selects_only_matching_groups() {
        let mut s = synthetic_music(Scale::of(80), 3).unwrap();
        let pred = size_query(&mut s, 4);
        let sel =
            s.db.evaluate_derived_members(s.music_groups, &pred)
                .unwrap();
        for g in &s.group_ids {
            let n = s.db.attr_value_set(*g, s.members).unwrap().len();
            assert_eq!(sel.contains(*g), n == 4);
        }
    }

    #[test]
    fn random_predicates_are_valid() {
        let s = synthetic_music(Scale::of(60), 9).unwrap();
        for dnf in [true, false] {
            let p = random_musician_predicate(&s, 3, 2, dnf, 5);
            assert_eq!(p.atom_count(), 6);
            // Validate + evaluate without error.
            s.db.evaluate_derived_members(s.musicians, &p).unwrap();
        }
    }

    #[test]
    fn long_map_predicates_typecheck_for_each_length() {
        let s = synthetic_music(Scale::of(40), 11).unwrap();
        for (len, anchor) in [
            (1usize, s.musician_ids[0]),
            (2, s.instrument_ids[0]),
            (3, s.family_ids[0]),
        ] {
            let p = long_map_predicate(&s, len, anchor);
            s.db.evaluate_derived_members(s.music_groups, &p).unwrap();
        }
    }

    #[test]
    fn navigation_chain_refines_monotonically() {
        let mut s = synthetic_music(Scale::of(200), 17).unwrap();
        let chain = navigation_chain(&mut s, 4, 3);
        assert_eq!(chain.len(), 4);
        let mut prev: Option<isis_core::OrderedSet> = None;
        for pred in &chain {
            let got = s.db.evaluate_derived_members(s.musicians, pred).unwrap();
            if let Some(p) = &prev {
                assert!(
                    got.iter().all(|e| p.contains(e)),
                    "each step must be a subset of the previous"
                );
            }
            prev = Some(got);
        }
    }

    #[test]
    fn op_stream_is_deterministic_and_keeps_consistency() {
        let ops = data_op_stream(200, 13);
        assert_eq!(ops, data_op_stream(200, 13));
        let mut s = synthetic_music(Scale::of(50), 13).unwrap();
        let applied = apply_data_ops(&mut s, &ops).unwrap();
        assert!(applied > 0);
        assert!(s.db.is_consistent().unwrap());
    }
}
