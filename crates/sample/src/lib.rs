//! # isis-sample
//!
//! Sample databases and workload generators for the ISIS reproduction:
//!
//! * [`instrumental_music`] — the §4.1 *Instrumental_Music* database, in
//!   exactly the state the §4.2 session begins from (including the
//!   flute/oboe family error the user corrects in Figures 4–5);
//! * [`synthetic_music`] — the same schema shape at parameterised scale,
//!   for benchmarks;
//! * [`workload`] — predicate and operation-stream generators for the
//!   benchmark sweeps.
//!
//! [`instrumental_music`]: instrumental_music::instrumental_music
//! [`synthetic_music`]: synthetic::synthetic_music

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod instrumental_music;
pub mod synthetic;
pub mod university;
pub mod workload;

pub use instrumental_music::{
    all_inst_derivation, instrumental_music, quartets_predicate, InstrumentalMusic,
};
pub use synthetic::{
    synthetic_music, synthetic_scaled, Scale, ScaledMusic, SchemaShape, SynthSpec, SyntheticMusic,
    ValueDist,
};
pub use university::{university, University};
