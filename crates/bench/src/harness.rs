//! Shared helpers for the benchmark suite: prepared databases at sweep
//! scales, and the standard queries each bench exercises.

use isis_core::{EntityId, Predicate};
use isis_sample::{synthetic_music, Scale, SyntheticMusic};

/// The class-size sweep every bench reports over.
pub const SIZES: [usize; 4] = [100, 400, 1600, 6400];

/// A prepared benchmark fixture: a synthetic database plus the two standard
/// queries (the Figure-9 quartets shape and a simple size equality).
pub struct Fixture {
    /// The synthetic database and its ids.
    pub s: SyntheticMusic,
    /// The Figure-9-shaped query (map + superset ∧ size equality, CNF).
    pub quartets: Predicate,
    /// The plain `size = {4}` query.
    pub size4: Predicate,
    /// An instrument with non-trivial selectivity, for index benches.
    pub probe_instrument: EntityId,
}

/// Builds the fixture at `n` musicians, deterministically.
pub fn fixture(n: usize) -> Fixture {
    let mut s = synthetic_music(Scale::of(n), 0xC0FFEE).expect("synthetic build");
    let probe_instrument = s.instrument_ids[0];
    let quartets = isis_sample::workload::quartets_query(&mut s, probe_instrument, 4);
    let size4 = isis_sample::workload::size_query(&mut s, 4);
    Fixture {
        s,
        quartets,
        size4,
        probe_instrument,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_builds_and_queries_run() {
        let f = fixture(100);
        let sel =
            f.s.db
                .evaluate_derived_members(f.s.music_groups, &f.quartets)
                .unwrap();
        let sel2 =
            f.s.db
                .evaluate_derived_members(f.s.music_groups, &f.size4)
                .unwrap();
        // Quartets is strictly more selective than size=4 alone.
        assert!(sel.len() <= sel2.len());
        assert!(f.s.db.is_consistent().unwrap());
    }
}
