//! # isis-bench
//!
//! The benchmark harness for the ISIS reproduction: shared fixtures
//! ([`harness`]) for the Criterion benches under `benches/`, and the
//! `figures` binary that regenerates Diagram 1 and Figures 1–12 from a
//! scripted replay of the §4.2 session.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod report;

pub use harness::{fixture, Fixture, SIZES};
pub use report::BenchReport;
