//! Machine-readable benchmark reports.
//!
//! Every headline bench writes a human-readable markdown file under
//! `out/`; this module adds a machine-readable sibling,
//! `out/bench_<name>.json`, serialized through the vendored
//! [`isis_obs::Json`] codec so CI (and later sessions) can diff numbers
//! without scraping markdown.
//!
//! The schema (`isis-bench/1`) is deliberately flat:
//!
//! ```json
//! {
//!   "schema": "isis-bench/1",
//!   "name": "query_index",
//!   "git_rev": "0782f72",
//!   "timestamp_unix": 1770000000,
//!   "smoke": false,
//!   "params": {"n": 10000, "rounds": 200},
//!   "results": [
//!     {"id": "query_index/shared_maintained/1600", "mean_ns": 41000.0, "iters": 120000}
//!   ]
//! }
//! ```
//!
//! `results` carries one entry per measurement: criterion-harness runs are
//! imported wholesale from [`criterion::Measurement`]-shaped tuples, and
//! report loops add their own aggregate rows. Under `--test` the `smoke`
//! flag is set so consumers know the numbers are one-shot placeholders.

use std::path::PathBuf;
use std::process::Command;
use std::time::{SystemTime, UNIX_EPOCH};

use isis_obs::Json;

/// Builder for one `out/bench_<name>.json` report.
#[derive(Debug, Clone)]
pub struct BenchReport {
    name: String,
    smoke: bool,
    scale: Option<u64>,
    params: Vec<(String, Json)>,
    results: Vec<(String, f64, u64)>,
}

impl BenchReport {
    /// Start a report named `name` (the file becomes `out/bench_<name>.json`).
    pub fn new(name: impl Into<String>) -> Self {
        BenchReport {
            name: name.into(),
            smoke: false,
            scale: None,
            params: Vec::new(),
            results: Vec::new(),
        }
    }

    /// Mark the report as a `--test` smoke run (untrustworthy timings).
    pub fn smoke(mut self, smoke: bool) -> Self {
        self.smoke = smoke;
        self
    }

    /// Record the workload's entity scale for the run header (the largest
    /// entity count the run touched).
    pub fn scale(mut self, entities: u64) -> Self {
        self.scale = Some(entities);
        self
    }

    /// Record a workload parameter (entity count, rounds, ...).
    pub fn param(mut self, key: impl Into<String>, value: impl Into<Json>) -> Self {
        self.params.push((key.into(), value.into()));
        self
    }

    /// Record one measurement row.
    pub fn result(mut self, id: impl Into<String>, mean_ns: f64, iters: u64) -> Self {
        self.results.push((id.into(), mean_ns, iters));
        self
    }

    /// Record a batch of `(id, mean_ns, iters)` rows — the shape of the
    /// vendored criterion harness's `measurements()` output.
    pub fn results_from<I, S>(mut self, rows: I) -> Self
    where
        I: IntoIterator<Item = (S, f64, u64)>,
        S: Into<String>,
    {
        for (id, mean_ns, iters) in rows {
            self.results.push((id.into(), mean_ns, iters));
        }
        self
    }

    /// The report as a [`Json`] document (schema `isis-bench/1`).
    pub fn to_json(&self) -> Json {
        let params = Json::Obj(self.params.clone());
        let results = Json::Arr(
            self.results
                .iter()
                .map(|(id, mean_ns, iters)| {
                    Json::Obj(vec![
                        ("id".into(), Json::from(id.as_str())),
                        ("mean_ns".into(), Json::from(*mean_ns)),
                        ("iters".into(), Json::from(*iters)),
                    ])
                })
                .collect(),
        );
        // The run header: enough machine context to judge whether two
        // reports are comparable (same-ish host, same scale, real run vs
        // smoke) before diffing the numbers.
        let run = Json::Obj(vec![
            ("host_cores".into(), Json::from(host_cores())),
            ("smoke".into(), Json::from(self.smoke)),
            (
                "entity_scale".into(),
                self.scale.map_or(Json::Null, Json::from),
            ),
        ]);
        Json::Obj(vec![
            ("schema".into(), Json::from("isis-bench/1")),
            ("name".into(), Json::from(self.name.as_str())),
            ("git_rev".into(), Json::from(git_rev().as_str())),
            ("timestamp_unix".into(), Json::from(unix_timestamp())),
            ("smoke".into(), Json::from(self.smoke)),
            ("run".into(), run),
            ("params".into(), params),
            ("results".into(), results),
        ])
    }

    /// Write `out/bench_<name>.json` (creating `out/` if needed) and return
    /// the path written.
    pub fn write(&self) -> PathBuf {
        let out_dir = out_dir();
        std::fs::create_dir_all(&out_dir).expect("create out/");
        let path = out_dir.join(format!("bench_{}.json", self.name));
        let mut body = self.to_json().pretty();
        body.push('\n');
        std::fs::write(&path, body).expect("write bench json");
        path
    }
}

/// The workspace-level `out/` directory the markdown reports already use.
pub fn out_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../out")
}

/// Short git revision of the working tree, or `"unknown"` outside a
/// checkout (benches must not fail because git is absent).
pub fn git_rev() -> String {
    Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// The host's available parallelism, or 0 when the platform will not say.
pub fn host_cores() -> u64 {
    std::thread::available_parallelism()
        .map(|n| n.get() as u64)
        .unwrap_or(0)
}

/// Seconds since the Unix epoch at the time of the call.
pub fn unix_timestamp() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_json_round_trips_with_expected_fields() {
        let report = BenchReport::new("unit_test")
            .smoke(true)
            .scale(300)
            .param("n", 300usize)
            .result("unit_test/arm_a", 1234.5, 10)
            .results_from(vec![("unit_test/arm_b".to_string(), 99.0, 4)]);
        let doc = report.to_json();
        let text = doc.pretty();
        let parsed = Json::parse(&text).expect("report parses");
        assert_eq!(parsed.get("schema").unwrap().as_str(), Some("isis-bench/1"));
        assert_eq!(parsed.get("name").unwrap().as_str(), Some("unit_test"));
        assert_eq!(parsed.get("smoke").unwrap().as_bool(), Some(true));
        let run = parsed.get("run").expect("run header present");
        assert_eq!(run.get("smoke").unwrap().as_bool(), Some(true));
        assert_eq!(run.get("entity_scale").unwrap().as_f64(), Some(300.0));
        assert!(run.get("host_cores").unwrap().as_f64().is_some());
        assert_eq!(
            parsed.get("params").unwrap().get("n").unwrap().as_f64(),
            Some(300.0)
        );
        let results = parsed.get("results").unwrap().as_arr().unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(
            results[0].get("id").unwrap().as_str(),
            Some("unit_test/arm_a")
        );
        assert_eq!(results[1].get("mean_ns").unwrap().as_f64(), Some(99.0));
        // git_rev is either a short hash or the sentinel — never empty.
        assert!(!parsed.get("git_rev").unwrap().as_str().unwrap().is_empty());
    }
}
