//! The 1e4 → 1e6-entity scaling harness (`out/bench_scaling.json`).
//!
//! Generates synthetic databases across three axes — entity count
//! (1e4/1e5/1e6), value distribution (uniform vs Zipf-skewed), schema
//! shape (wide vs deep) — and drives the workloads the interactive paper
//! promises must stay fast: stepwise-refinement navigation chains
//! (repeated query rounds through the `IndexService` program cache),
//! delta-driven refresh rounds, and large-affected-set settles (serial vs
//! the shared `EvalPool`). Every measurement lands in
//! `out/bench_scaling.json` (schema isis-bench/1).
//!
//! Flags:
//!
//! * `--max-entities N` — skip configurations above `N` entities (CI runs
//!   `--max-entities 100000`); default 1000000.
//! * `--smoke` / `--test` — one tiny configuration, one round each, and
//!   the report's `smoke` flag set; performance assertions are skipped.
//!
//! Outside smoke mode the harness enforces the scaling floor directly:
//! cached-program query rounds must be ≥ 2x faster than per-query
//! recompilation at 1e5+ entities, and the pooled settle must beat the
//! serial settle on affected sets of 1e5 entities. The settle comparison
//! is asserted only when the host actually has ≥ 2 cores — the sharded
//! path is still exercised and recorded on a single-core host, where
//! beating serial is physically impossible.

use std::time::{Duration, Instant};

use isis_bench::BenchReport;
use isis_core::{Atom, Clause, CompareOp, Database, EntityId, Map, OrderedSet, Predicate, Rhs};
use isis_query::{DerivedMaintainer, EvalPool, IndexService, MemoTable, PredicateProgram};
use isis_sample::workload::navigation_chain;
use isis_sample::{synthetic_scaled, ScaledMusic, SchemaShape, SynthSpec, ValueDist};

const SEED: u64 = 0x5CA1E;

struct Config {
    entities: usize,
    dist: ValueDist,
    shape: SchemaShape,
    query_rounds: usize,
    settle_rounds: usize,
    refresh_rounds: usize,
}

struct ConfigResult {
    entities: usize,
    cached_ns: f64,
    recompiled_ns: f64,
    scan_batch_ns: f64,
    scan_scalar_ns: f64,
    affected: usize,
    settle_serial_ns: f64,
    settle_pool_ns: f64,
}

fn time_rounds(rounds: usize, mut f: impl FnMut()) -> f64 {
    let mut total = Duration::ZERO;
    for _ in 0..rounds {
        let t = Instant::now();
        f();
        total += t.elapsed();
    }
    total.as_secs_f64() * 1e9 / rounds.max(1) as f64
}

fn run_config(cfg: &Config, threads: usize, report: &mut BenchReport) -> ConfigResult {
    let tag = format!(
        "{}/{}/{}",
        cfg.entities,
        cfg.dist.label(),
        cfg.shape.label()
    );
    eprintln!("== scaling config {tag} ==");

    let t = Instant::now();
    let mut g: ScaledMusic = synthetic_scaled(SynthSpec {
        entities: cfg.entities,
        dist: cfg.dist,
        shape: cfg.shape,
        seed: SEED,
    })
    .expect("generate scaled database");
    let gen_ns = t.elapsed().as_secs_f64() * 1e9;
    eprintln!(
        "   generated {} musicians in {:.2}s",
        g.s.musician_ids.len(),
        gen_ns / 1e9
    );
    *report = std::mem::replace(report, BenchReport::new("scaling")).result(
        format!("scaling/generate/{tag}"),
        gen_ns,
        1,
    );

    // --- Navigation query rounds: cached program vs per-query recompile.
    let chain = navigation_chain(&mut g.s, 6, SEED ^ 1);
    let mut svc = IndexService::new(&g.s.db);
    svc.ensure_index(&g.s.db, g.s.plays).unwrap();
    svc.ensure_index(&g.s.db, g.s.union_attr).unwrap();
    let obs = isis_obs::global();
    if obs.enabled() {
        // With observability on (ISIS_OBS=1), capture full plan records
        // for anything over 1ms — at 1e5+ entities that journals real
        // plans into the flight recorder for the CI artifact.
        svc.set_slow_threshold_ns(1_000_000);
    }
    let run_chain = |svc: &IndexService, db: &Database| {
        let mut total = 0usize;
        for pred in &chain {
            total += svc.evaluate(db, g.s.musicians, pred).unwrap().len();
        }
        total
    };
    // Warm both the index postings and the cache once.
    let warm_total = run_chain(&svc, &g.s.db);
    let cached_ns = time_rounds(cfg.query_rounds, || {
        assert_eq!(run_chain(&svc, &g.s.db), warm_total);
    });
    let recompiled_ns = time_rounds(cfg.query_rounds, || {
        // Identical code path; the clear forces a compile per query,
        // which is exactly what every query paid before the cache.
        svc.program_cache().clear();
        assert_eq!(run_chain(&svc, &g.s.db), warm_total);
    });
    let stats = svc.program_cache().stats();
    assert!(
        stats.hits > 0 && stats.misses > 0,
        "both arms must exercise the cache: {stats:?}"
    );
    if obs.enabled() {
        // One explained evaluation per configuration: the record lands in
        // the flight journal and prints a one-line plan summary.
        let (out, rec) = svc
            .explain(&g.s.db, g.s.musicians, chain.last().unwrap())
            .unwrap();
        eprintln!(
            "   explain: cache {} path[0] {} ({} candidates -> {} members)",
            rec.cache,
            rec.atoms.first().map(|a| a.path.as_str()).unwrap_or("n/a"),
            rec.candidates,
            out.len()
        );
    }
    eprintln!(
        "   query round: cached {:.1}us vs recompiled {:.1}us ({:.2}x)",
        cached_ns / 1e3,
        recompiled_ns / 1e3,
        recompiled_ns / cached_ns
    );
    *report = std::mem::replace(report, BenchReport::new("scaling"))
        .result(
            format!("scaling/query_cached/{tag}"),
            cached_ns,
            cfg.query_rounds as u64,
        )
        .result(
            format!("scaling/query_recompiled/{tag}"),
            recompiled_ns,
            cfg.query_rounds as u64,
        );

    // --- Full-extent scan: column-streaming batch evaluation vs the
    // per-candidate scalar loop, on the same compiled program over the
    // whole musicians extent (ISSUE 10 acceptance: batch >= 2x at 1e5+).
    let scan_pred = Predicate::dnf(vec![Clause::new(vec![Atom::new(
        Map::single(g.s.plays),
        CompareOp::Match,
        Rhs::constant(g.s.instruments, [g.s.instrument_ids[0]]),
    )])]);
    let prog = PredicateProgram::compile(&g.s.db, g.s.musicians, &scan_pred).unwrap();
    assert!(
        prog.batch_compatible(),
        "the scan predicate must stream columns"
    );
    let extent: Vec<EntityId> = g.s.db.members(g.s.musicians).unwrap().iter().collect();
    let expected = {
        let mut memo = MemoTable::new(&prog);
        prog.eval_batch(&g.s.db, &extent, None, &mut memo)
            .unwrap()
            .len()
    };
    let scan_batch_ns = time_rounds(cfg.query_rounds, || {
        let mut memo = MemoTable::new(&prog);
        let n = prog
            .eval_batch(&g.s.db, &extent, None, &mut memo)
            .unwrap()
            .len();
        assert_eq!(n, expected);
    });
    let scan_scalar_ns = time_rounds(cfg.query_rounds, || {
        let mut memo = MemoTable::new(&prog);
        let mut n = 0usize;
        for &e in &extent {
            if prog.eval_for(&g.s.db, e, None, &mut memo).unwrap() {
                n += 1;
            }
        }
        assert_eq!(n, expected);
    });
    eprintln!(
        "   full-extent scan ({} candidates): batch {:.1}us vs scalar {:.1}us ({:.2}x)",
        extent.len(),
        scan_batch_ns / 1e3,
        scan_scalar_ns / 1e3,
        scan_scalar_ns / scan_batch_ns
    );
    *report = std::mem::replace(report, BenchReport::new("scaling"))
        .result(
            format!("scaling/scan_batch/{tag}"),
            scan_batch_ns,
            cfg.query_rounds as u64,
        )
        .result(
            format!("scaling/scan_scalar/{tag}"),
            scan_scalar_ns,
            cfg.query_rounds as u64,
        );

    // --- Large-affected-set settle: serial vs the shared pool.
    let final_pred: Predicate = chain.last().unwrap().clone();
    let derived =
        g.s.db
            .create_derived_subclass(g.s.musicians, "nav_target")
            .unwrap();
    g.s.db.commit_membership(derived, final_pred).unwrap();
    let maint = DerivedMaintainer::new(&g.s.db, derived).unwrap();
    let affected: OrderedSet =
        g.s.musician_ids
            .iter()
            .copied()
            .take(100_000)
            .collect::<Vec<EntityId>>()
            .into_iter()
            .collect();
    // Converge first so both arms measure pure re-evaluation with no
    // membership writes (identical work per arm).
    maint.settle(&mut g.s.db, &affected).unwrap();
    let settle_serial_ns = time_rounds(cfg.settle_rounds, || {
        let (a, r) = maint.settle_with(&mut g.s.db, &affected, None).unwrap();
        assert_eq!((a, r), (0, 0));
    });
    let pool = EvalPool::new(threads);
    let members_before = g.s.db.members(derived).unwrap().clone();
    let settle_pool_ns = time_rounds(cfg.settle_rounds, || {
        let (a, r) = maint
            .settle_with(&mut g.s.db, &affected, Some(&pool))
            .unwrap();
        assert_eq!((a, r), (0, 0));
    });
    assert!(
        g.s.db.members(derived).unwrap().set_eq(&members_before),
        "pooled settle must leave identical membership"
    );
    eprintln!(
        "   settle over {} affected: serial {:.2}ms vs pool({threads}) {:.2}ms ({:.2}x)",
        affected.len(),
        settle_serial_ns / 1e6,
        settle_pool_ns / 1e6,
        settle_serial_ns / settle_pool_ns
    );
    *report = std::mem::replace(report, BenchReport::new("scaling"))
        .result(
            format!("scaling/settle_serial/{tag}"),
            settle_serial_ns,
            cfg.settle_rounds as u64,
        )
        .result(
            format!("scaling/settle_pool/{tag}"),
            settle_pool_ns,
            cfg.settle_rounds as u64,
        );

    // --- Delta-driven refresh rounds: a burst of plays reassignments,
    // then one incremental apply (collect → index patch → settle).
    let mut maint = maint;
    let burst = 100.min(g.s.musician_ids.len());
    let mut cursor = 0usize;
    let refresh_ns = time_rounds(cfg.refresh_rounds, || {
        let mark = g.s.db.delta_epoch();
        for i in 0..burst {
            let m = g.s.musician_ids[(cursor + i * 37) % g.s.musician_ids.len()];
            let inst = g.s.instrument_ids[(cursor + i) % g.s.instrument_ids.len()];
            g.s.db.assign_multi(m, g.s.plays, [inst]).unwrap();
        }
        cursor += burst;
        let changes = g.s.db.changes_since(mark).expect("window fits the log");
        maint.apply_changes(&mut g.s.db, &changes).unwrap();
    });
    eprintln!(
        "   refresh round ({burst} reassignments): {:.2}ms",
        refresh_ns / 1e6
    );
    *report = std::mem::replace(report, BenchReport::new("scaling")).result(
        format!("scaling/refresh/{tag}"),
        refresh_ns,
        cfg.refresh_rounds as u64,
    );

    ConfigResult {
        entities: cfg.entities,
        cached_ns,
        recompiled_ns,
        scan_batch_ns,
        scan_scalar_ns,
        affected: affected.len(),
        settle_serial_ns,
        settle_pool_ns,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke" || a == "--test");
    let max_entities = args
        .iter()
        .position(|a| a == "--max-entities")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(1_000_000);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // Pool width stays >= 2 so the sharded path (chunk planning, result
    // merge) is exercised even where it cannot win on wall clock.
    let threads = cores.clamp(2, 8);

    let mut configs: Vec<Config> = Vec::new();
    if smoke {
        configs.push(Config {
            entities: 2_000,
            dist: ValueDist::Zipf,
            shape: SchemaShape::Wide,
            query_rounds: 2,
            settle_rounds: 1,
            refresh_rounds: 1,
        });
    } else {
        for &entities in &[10_000usize, 100_000, 1_000_000] {
            if entities > max_entities {
                continue;
            }
            // Full dist × shape matrix below 1e6; two representative
            // configurations at 1e6 to bound the runtime.
            let matrix: Vec<(ValueDist, SchemaShape)> = if entities < 1_000_000 {
                vec![
                    (ValueDist::Uniform, SchemaShape::Wide),
                    (ValueDist::Uniform, SchemaShape::Deep),
                    (ValueDist::Zipf, SchemaShape::Wide),
                    (ValueDist::Zipf, SchemaShape::Deep),
                ]
            } else {
                vec![
                    (ValueDist::Zipf, SchemaShape::Wide),
                    (ValueDist::Uniform, SchemaShape::Deep),
                ]
            };
            for (dist, shape) in matrix {
                configs.push(Config {
                    entities,
                    dist,
                    shape,
                    query_rounds: if entities >= 1_000_000 { 10 } else { 30 },
                    settle_rounds: if entities >= 1_000_000 { 3 } else { 5 },
                    refresh_rounds: if entities >= 1_000_000 { 3 } else { 5 },
                });
            }
        }
    }

    let mut report = BenchReport::new("scaling")
        .smoke(smoke)
        .scale(configs.iter().map(|c| c.entities as u64).max().unwrap_or(0))
        .param("max_entities", max_entities)
        .param("threads", threads)
        .param("cores", cores)
        .param("seed", SEED);
    let mut results = Vec::new();
    for cfg in &configs {
        results.push(run_config(cfg, threads, &mut report));
    }
    let path = report.write();
    eprintln!("wrote {}", path.display());

    // With ISIS_OBS=1 the run journaled slow-query plans, explain records,
    // settle and commit events; export them for CI to upload.
    let obs = isis_obs::global();
    if obs.enabled() {
        let dir = isis_bench::report::out_dir().join("obs");
        std::fs::create_dir_all(&dir).expect("create out/obs");
        let snap = obs.flight().snapshot();
        let flight_path = dir.join("flight.jsonl");
        std::fs::write(&flight_path, snap.to_jsonl()).expect("write flight journal");
        eprintln!(
            "wrote {} ({} events, {} dropped by the ring)",
            flight_path.display(),
            snap.events.len(),
            snap.dropped
        );
    }

    if smoke {
        eprintln!("smoke run: performance assertions skipped");
        return;
    }
    // The scaling floor, enforced (ISSUE 8 acceptance criteria).
    for r in &results {
        if r.entities >= 100_000 {
            assert!(
                r.cached_ns * 2.0 <= r.recompiled_ns,
                "cached query rounds must be >=2x faster than per-query \
                 recompilation at {} entities (cached {:.0}ns vs {:.0}ns)",
                r.entities,
                r.cached_ns,
                r.recompiled_ns
            );
        }
        // Columnar batch evaluation must never lose to the scalar loop,
        // and must clear 2x on full-extent scans at 1e5+ (ISSUE 10).
        assert!(
            r.scan_batch_ns <= r.scan_scalar_ns,
            "batch scan regressed below scalar at {} entities \
             (batch {:.0}ns vs scalar {:.0}ns)",
            r.entities,
            r.scan_batch_ns,
            r.scan_scalar_ns
        );
        if r.entities >= 100_000 {
            assert!(
                r.scan_batch_ns * 2.0 <= r.scan_scalar_ns,
                "batch full-extent scan must be >=2x faster than scalar at \
                 {} entities (batch {:.0}ns vs scalar {:.0}ns)",
                r.entities,
                r.scan_batch_ns,
                r.scan_scalar_ns
            );
        }
        if r.affected >= 100_000 {
            if cores >= 2 {
                assert!(
                    r.settle_pool_ns < r.settle_serial_ns,
                    "pooled settle must beat serial on {} affected entities \
                     (pool {:.0}ns vs serial {:.0}ns)",
                    r.affected,
                    r.settle_pool_ns,
                    r.settle_serial_ns
                );
            } else {
                eprintln!(
                    "single-core host: sharded settle on {} affected recorded \
                     ({:.2}ms pool vs {:.2}ms serial) but not asserted",
                    r.affected,
                    r.settle_pool_ns / 1e6,
                    r.settle_serial_ns / 1e6
                );
            }
        }
    }
    eprintln!("scaling floor assertions passed");
}
