//! Grouping cost: computing the family of sets on demand (the engine's
//! faithful §2 semantics) vs an inverted index (grouping made operational),
//! and index lookup vs recomputation of a single set.
//!
//! Experiment E-5: on-demand grouping is O(|C| × |A(x)|) per computation;
//! the index pays that once and answers set lookups in O(1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use isis_bench::fixture;
use isis_query::AttrIndex;

fn grouping_costs(c: &mut Criterion) {
    let mut g = c.benchmark_group("grouping");
    for n in [100usize, 400, 1600] {
        let f = fixture(n);
        let family_of_first = {
            let fam =
                f.s.db
                    .attr_value_set(f.s.instrument_ids[0], f.s.family)
                    .unwrap();
            fam.as_singleton().unwrap()
        };
        // Full family-of-sets computation (what the grouping page shows).
        g.bench_with_input(BenchmarkId::new("grouping_sets", n), &n, |b, _| {
            b.iter(|| f.s.db.grouping_sets(f.s.by_family).unwrap())
        });
        // One set, recomputed by scan.
        g.bench_with_input(BenchmarkId::new("one_set_scan", n), &n, |b, _| {
            b.iter(|| {
                f.s.db
                    .grouping_set_members(f.s.by_family, family_of_first)
                    .unwrap()
            })
        });
        // Index build (amortised cost of the maintained variant).
        g.bench_with_input(BenchmarkId::new("index_build", n), &n, |b, _| {
            b.iter(|| AttrIndex::build(&f.s.db, f.s.family).unwrap())
        });
        // Index lookup of the same set.
        let idx = AttrIndex::build(&f.s.db, f.s.family).unwrap();
        g.bench_with_input(BenchmarkId::new("one_set_index", n), &n, |b, _| {
            b.iter(|| idx.owners_of(family_of_first).map(|s| s.len()))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = grouping_costs
}
criterion_main!(benches);
