//! Derived-subclass maintenance: full recompute (the paper's commit) vs the
//! incremental maintainer extension.
//!
//! Experiment E-2: incremental maintenance after a single entity change
//! beats full re-evaluation by a widening factor as the class grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use isis_bench::fixture;
use isis_core::OrderedSet;
use isis_query::DerivedMaintainer;

fn commit_vs_incremental(c: &mut Criterion) {
    let mut g = c.benchmark_group("derived_class");
    for n in [100usize, 400, 1600] {
        // Full recompute of the committed predicate.
        {
            let f = fixture(n);
            let mut db = f.s.db.clone();
            let quartets = db
                .create_derived_subclass(f.s.music_groups, "bench_quartets")
                .unwrap();
            db.commit_membership(quartets, f.quartets.clone()).unwrap();
            g.bench_with_input(BenchmarkId::new("full_refresh", n), &n, |b, _| {
                b.iter(|| db.clone().refresh_derived_class(quartets).unwrap())
            });
        }
        // Incremental: one musician's plays changed.
        {
            let f = fixture(n);
            let mut db = f.s.db.clone();
            let quartets = db
                .create_derived_subclass(f.s.music_groups, "bench_quartets")
                .unwrap();
            db.commit_membership(quartets, f.quartets.clone()).unwrap();
            let maint = DerivedMaintainer::new(&db, quartets).unwrap();
            let target = f.s.musician_ids[1];
            let owners: OrderedSet = [target].into_iter().collect();
            // The maintainer mutates; clone per iteration like the refresh
            // arm so both measure (clone + maintain).
            g.bench_with_input(BenchmarkId::new("incremental_one_change", n), &n, |b, _| {
                b.iter(|| {
                    let mut db2 = db.clone();
                    db2.add_value(target, f.s.plays, f.probe_instrument)
                        .unwrap();
                    // Rebuild-free application against the prepared indexes.
                    let mut m = DerivedMaintainer::new(&db2, quartets).unwrap();
                    m.apply_attr_change(&mut db2, f.s.plays, &owners).unwrap()
                })
            });
            let _ = maint;
        }
        // Affected-candidate analysis alone (the pruning power).
        {
            let f = fixture(n);
            let mut db = f.s.db.clone();
            let quartets = db
                .create_derived_subclass(f.s.music_groups, "bench_quartets")
                .unwrap();
            db.commit_membership(quartets, f.quartets.clone()).unwrap();
            let maint = DerivedMaintainer::new(&db, quartets).unwrap();
            let owners: OrderedSet = [f.s.musician_ids[1]].into_iter().collect();
            g.bench_with_input(BenchmarkId::new("affected_candidates", n), &n, |b, _| {
                b.iter(|| maint.affected_candidates(&db, f.s.plays, &owners).unwrap())
            });
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = commit_vs_incremental
}
criterion_main!(benches);
