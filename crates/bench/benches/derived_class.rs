//! Derived-subclass maintenance: full recompute (the paper's commit) vs the
//! incremental maintainer extension.
//!
//! Experiment E-2: incremental maintenance after a single entity change
//! beats full re-evaluation by a widening factor as the class grows.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use isis_bench::fixture;
use isis_core::{Database, EntityId, OrderedSet};
use isis_query::DerivedMaintainer;

fn commit_vs_incremental(c: &mut Criterion) {
    let mut g = c.benchmark_group("derived_class");
    for n in [100usize, 400, 1600] {
        // Full recompute of the committed predicate.
        {
            let f = fixture(n);
            let mut db = f.s.db.clone();
            let quartets = db
                .create_derived_subclass(f.s.music_groups, "bench_quartets")
                .unwrap();
            db.commit_membership(quartets, f.quartets.clone()).unwrap();
            g.bench_with_input(BenchmarkId::new("full_refresh", n), &n, |b, _| {
                b.iter(|| db.clone().refresh_derived_class(quartets).unwrap())
            });
        }
        // Incremental: one musician's plays changed.
        {
            let f = fixture(n);
            let mut db = f.s.db.clone();
            let quartets = db
                .create_derived_subclass(f.s.music_groups, "bench_quartets")
                .unwrap();
            db.commit_membership(quartets, f.quartets.clone()).unwrap();
            let maint = DerivedMaintainer::new(&db, quartets).unwrap();
            let target = f.s.musician_ids[1];
            let owners: OrderedSet = [target].into_iter().collect();
            // The maintainer mutates; clone per iteration like the refresh
            // arm so both measure (clone + maintain).
            g.bench_with_input(BenchmarkId::new("incremental_one_change", n), &n, |b, _| {
                b.iter(|| {
                    let mut db2 = db.clone();
                    db2.add_value(target, f.s.plays, f.probe_instrument)
                        .unwrap();
                    // Rebuild-free application against the prepared indexes.
                    let mut m = DerivedMaintainer::new(&db2, quartets).unwrap();
                    m.apply_attr_change(&mut db2, f.s.plays, &owners).unwrap()
                })
            });
            let _ = maint;
        }
        // The full delta pipeline: read the change log, apply it.
        {
            let f = fixture(n);
            let mut db = f.s.db.clone();
            let quartets = db
                .create_derived_subclass(f.s.music_groups, "bench_quartets")
                .unwrap();
            db.commit_membership(quartets, f.quartets.clone()).unwrap();
            let mut maint = DerivedMaintainer::new(&db, quartets).unwrap();
            let mut toggle = PlaysToggle::new(&db, &f, f.s.musician_ids[1]);
            let mut cursor = db.delta_epoch();
            g.bench_with_input(BenchmarkId::new("delta_pipeline", n), &n, |b, _| {
                b.iter(|| {
                    toggle.flip(&mut db);
                    let cs = db.changes_since(cursor).expect("window live");
                    let out = maint.apply_changes(&mut db, &cs).unwrap();
                    cursor = db.delta_epoch();
                    out
                })
            });
        }
        // Affected-candidate analysis alone (the pruning power).
        {
            let f = fixture(n);
            let mut db = f.s.db.clone();
            let quartets = db
                .create_derived_subclass(f.s.music_groups, "bench_quartets")
                .unwrap();
            db.commit_membership(quartets, f.quartets.clone()).unwrap();
            let maint = DerivedMaintainer::new(&db, quartets).unwrap();
            let owners: OrderedSet = [f.s.musician_ids[1]].into_iter().collect();
            g.bench_with_input(BenchmarkId::new("affected_candidates", n), &n, |b, _| {
                b.iter(|| maint.affected_candidates(&db, f.s.plays, &owners).unwrap())
            });
        }
    }
    g.finish();
}

/// A repeatable point update: one musician alternately gains and loses one
/// instrument, so every flip records exactly one real `AttrAssigned`.
struct PlaysToggle {
    target: EntityId,
    attr: isis_core::AttrId,
    with_probe: OrderedSet,
    without_probe: OrderedSet,
    has_probe: bool,
}

impl PlaysToggle {
    fn new(db: &Database, f: &isis_bench::Fixture, target: EntityId) -> Self {
        let base = db.attr_value_set(target, f.s.plays).unwrap();
        let mut with_probe = base.clone();
        with_probe.insert(f.probe_instrument);
        let mut without_probe = base.clone();
        without_probe.remove(f.probe_instrument);
        PlaysToggle {
            target,
            attr: f.s.plays,
            has_probe: base.contains(f.probe_instrument),
            with_probe,
            without_probe,
        }
    }

    fn flip(&mut self, db: &mut Database) {
        let next = if self.has_probe {
            self.without_probe.as_slice()
        } else {
            self.with_probe.as_slice()
        };
        db.assign_multi(self.target, self.attr, next.iter().copied())
            .unwrap();
        self.has_probe = !self.has_probe;
    }
}

/// Experiment E-2b: the headline comparison for the delta-refresh pipeline.
/// Full re-evaluation vs `changes_since` + `apply_changes` after a single
/// point update, at a 10k-entity scale, written to `out/derived_refresh.md`
/// and (machine-readable) `out/bench_derived_class.json`.
fn refresh_report(c: &mut Criterion) {
    let smoke = std::env::args().any(|a| a == "--test");
    let (n, full_iters, delta_iters) = if smoke {
        (300, 2, 8)
    } else {
        (10_000, 20, 400)
    };

    let f = fixture(n);
    let mut db = f.s.db.clone();
    let quartets = db
        .create_derived_subclass(f.s.music_groups, "bench_quartets")
        .unwrap();
    db.commit_membership(quartets, f.quartets.clone()).unwrap();
    let entities = db.entity_count();
    let mut toggle = PlaysToggle::new(&db, &f, f.s.musician_ids[1]);

    // Full refresh: re-evaluate the stored predicate over the whole parent
    // extent after each point update.
    let mut full_total = Duration::ZERO;
    for _ in 0..full_iters {
        toggle.flip(&mut db);
        let t = Instant::now();
        db.refresh_derived_class(quartets).unwrap();
        full_total += t.elapsed();
    }

    // Delta refresh: steady-state maintainer consuming the change log.
    let mut maint = DerivedMaintainer::new(&db, quartets).unwrap();
    let mut cursor = db.delta_epoch();
    let mut delta_total = Duration::ZERO;
    for _ in 0..delta_iters {
        toggle.flip(&mut db);
        let t = Instant::now();
        let cs = db.changes_since(cursor).expect("window live");
        maint.apply_changes(&mut db, &cs).unwrap();
        delta_total += t.elapsed();
        cursor = db.delta_epoch();
    }

    // The delta path must land on the same membership as a full refresh.
    let incremental: Vec<EntityId> = db.members(quartets).unwrap().iter().collect();
    db.refresh_derived_class(quartets).unwrap();
    let full: Vec<EntityId> = db.members(quartets).unwrap().iter().collect();
    assert_eq!(
        incremental, full,
        "delta refresh diverged from full refresh"
    );

    let full_us = full_total.as_secs_f64() * 1e6 / full_iters as f64;
    let delta_us = delta_total.as_secs_f64() * 1e6 / delta_iters as f64;
    let speedup = full_us / delta_us;
    println!(
        "refresh_report: n={n} ({entities} entities) full={full_us:.1}us \
         delta={delta_us:.1}us speedup={speedup:.1}x"
    );

    let out_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../out");
    std::fs::create_dir_all(&out_dir).expect("create out/");
    let report = format!(
        "# Derived-class refresh: full vs delta\n\n\
         Point update (one musician's `plays` set changes by one instrument),\n\
         then the derived subclass `bench_quartets` is brought up to date.\n\n\
         | mode | database | mean per update |\n\
         | --- | --- | --- |\n\
         | full `refresh_derived_class` | {entities} entities ({n} musicians) | {full_us:.1} µs |\n\
         | delta `changes_since` + `apply_changes` | {entities} entities ({n} musicians) | {delta_us:.1} µs |\n\n\
         **Speedup: {speedup:.1}×** (iterations: {full_iters} full, {delta_iters} delta{}).\n",
        if smoke { "; smoke run under `--test`" } else { "" }
    );
    std::fs::write(out_dir.join("derived_refresh.md"), report).expect("write report");

    // Machine-readable sibling: aggregate rows plus the criterion runs.
    isis_bench::BenchReport::new("derived_class")
        .smoke(smoke)
        .scale(entities as u64)
        .param("n", n)
        .param("full_iters", full_iters as u64)
        .param("delta_iters", delta_iters as u64)
        .param("entities", entities)
        .result(
            "derived_class/report/full_refresh_per_update",
            full_us * 1e3,
            full_iters as u64,
        )
        .result(
            "derived_class/report/delta_refresh_per_update",
            delta_us * 1e3,
            delta_iters as u64,
        )
        .results_from(
            c.measurements()
                .iter()
                .map(|m| (m.id.clone(), m.mean_ns, m.iters)),
        )
        .write();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = commit_vs_incremental, refresh_report
}
criterion_main!(benches);
