//! Ablation: the cost of attribute inheritance — visible-attribute
//! resolution and membership cascades against inheritance depth, and the
//! overhead the §5 multiple-inheritance extension adds.
//!
//! Experiment E-9: visibility resolution is linear in chain depth (the
//! "single tree representation" §2 argues for); a secondary parent adds one
//! extra chain walk, not an explosion.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use isis_core::{ClassId, Database, Multiplicity};

/// A chain of `depth` subclasses under one baseclass, each owning one
/// attribute; optionally a secondary parent chain of the same depth.
fn chain(depth: usize, multi: bool) -> (Database, ClassId) {
    let mut db = Database::new("chain");
    if multi {
        db.enable_multiple_inheritance();
    }
    let strings = db.predefined(isis_core::BaseKind::Strings);
    let base = db.create_baseclass("base").unwrap();
    let mut cur = base;
    for d in 0..depth {
        db.create_attribute(cur, &format!("a{d}"), strings, Multiplicity::Single)
            .unwrap();
        cur = db.create_subclass(cur, &format!("c{d}")).unwrap();
    }
    if multi {
        // A parallel chain whose leaf becomes a secondary parent.
        let mut side = db.create_subclass(base, "side0").unwrap();
        for d in 1..depth.max(1) {
            db.create_attribute(side, &format!("s{d}"), strings, Multiplicity::Single)
                .unwrap();
            side = db.create_subclass(side, &format!("side{d}")).unwrap();
        }
        db.add_secondary_parent(cur, side).unwrap();
    }
    (db, cur)
}

fn inheritance_costs(c: &mut Criterion) {
    let mut g = c.benchmark_group("inheritance");
    for depth in [2usize, 8, 32] {
        let (db, leaf) = chain(depth, false);
        g.bench_with_input(
            BenchmarkId::new("visible_attrs_single", depth),
            &depth,
            |b, _| b.iter(|| db.visible_attrs(leaf).unwrap().len()),
        );
        g.bench_with_input(BenchmarkId::new("ancestry", depth), &depth, |b, _| {
            b.iter(|| db.ancestry(leaf).unwrap().len())
        });
        // Membership cascade through the whole chain.
        g.bench_with_input(BenchmarkId::new("insert_cascade", depth), &depth, |b, _| {
            b.iter(|| {
                let mut db2 = db.clone();
                let e = db2
                    .insert_entity(db2.class_by_name("base").unwrap(), "probe")
                    .unwrap();
                db2.add_to_class(e, leaf).unwrap();
                db2.members(leaf).unwrap().len()
            })
        });
        // The multiple-inheritance variant.
        let (db_m, leaf_m) = chain(depth, true);
        g.bench_with_input(
            BenchmarkId::new("visible_attrs_multi", depth),
            &depth,
            |b, _| b.iter(|| db_m.visible_attrs(leaf_m).unwrap().len()),
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = inheritance_costs
}
criterion_main!(benches);
