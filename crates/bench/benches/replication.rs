//! Log-shipping replication: ship throughput and replay lag.
//!
//! The primary commits a 10k-entity history through the MVCC commit path
//! (each commit one `CommitBatch` WAL frame), then we measure the two
//! halves of the replication pipeline:
//!
//! - **ship**: draining the primary's [`ReplicationLog`] — the read-only
//!   frame extraction a replica's puller runs — in frames per second;
//! - **replay**: a cold replica bootstrapping to the primary's head
//!   (checkpoint install + frame replay into its own store), and a warm
//!   replica catching up an incremental tail, reported as time to drive
//!   the shipped lag to zero.
//!
//! Micro-arm: a single up-to-date `ship` poll (the steady-state cost of a
//! puller finding nothing to do). The report arm writes
//! `out/bench_replication.md` and machine-readable
//! `out/bench_replication.json`.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use isis_core::{BaseKind, Multiplicity};
use isis_store::{Replica, ReplicationLog, Shipment, StoreDir, SyncPolicy};

const NAME: &str = "bench";

struct Fixture {
    root: PathBuf,
    primary: isis_core::SharedDatabase,
    log: ReplicationLog,
    frames: u64,
}

/// A primary with `commits` committed frames of `batch` inserts each
/// (after a schema checkpoint), on the real store layout.
fn primary_fixture(tag: &str, commits: usize, batch: usize) -> Fixture {
    let root = std::env::temp_dir().join(format!(
        "isis_bench_replication_{}_{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&root);
    let proot = root.join("primary");
    let dir = StoreDir::open(&proot).unwrap();
    // OsFlush: the bench measures shipping and replay, not the primary's
    // fsync discipline (storage.rs covers that).
    let (primary, _) = dir.open_shared(NAME, SyncPolicy::OsFlush).unwrap();

    let mut w = primary.pin();
    let base = w.delta_epoch();
    let people = w.create_baseclass("people").unwrap();
    let ints = w.predefined(BaseKind::Integers);
    w.create_attribute(people, "age", ints, Multiplicity::Single)
        .unwrap();
    primary.commit(base, &w).unwrap();

    for c in 0..commits {
        let mut w = primary.pin();
        let base = w.delta_epoch();
        let people = w.class_by_name("people").unwrap();
        let age = w.attr_by_name(people, "age").unwrap();
        for i in 0..batch {
            let e = w.insert_entity(people, &format!("p{c}_{i}")).unwrap();
            let lit = w.intern(((c * batch + i) % 97) as i64).unwrap();
            w.assign_single(e, age, lit).unwrap();
        }
        primary.commit(base, &w).unwrap();
    }

    let log = ReplicationLog::open(&StoreDir::open(&proot).unwrap(), NAME).unwrap();
    Fixture {
        root,
        primary,
        log,
        frames: commits as u64,
    }
}

/// Steady-state puller poll: `ship` against a caught-up cursor.
fn ship_poll(c: &mut Criterion) {
    let f = primary_fixture("poll", 64, 4);
    let mut replica = Replica::open(
        &StoreDir::open(f.root.join("replica_poll")).unwrap(),
        NAME,
        SyncPolicy::OsFlush,
    )
    .unwrap()
    .0;
    replica.sync(&f.log).unwrap();
    let cursor = replica.cursor();
    let mut g = c.benchmark_group("replication");
    g.bench_with_input(BenchmarkId::new("ship_poll_up_to_date", 64), &64, |b, _| {
        b.iter(|| {
            let s = f.log.ship(&cursor, 64).unwrap();
            assert!(matches!(s, Shipment::UpToDate));
        })
    });
    g.finish();
    let _ = std::fs::remove_dir_all(&f.root);
}

fn replication_report(c: &mut Criterion) {
    let smoke = std::env::args().any(|a| a == "--test");
    // 10k entities shipped in 500 frames of 20 inserts (smoke: 200 in 40).
    let (commits, batch, tail): (usize, usize, usize) =
        if smoke { (40, 5, 8) } else { (500, 20, 64) };
    let f = primary_fixture("report", commits, batch);
    let entities = f.primary.read(|db| db.entity_count());

    // Arm 1 — ship throughput: drain the whole log, frames only, no
    // replica behind it (cursor advanced by hand past the bootstrap
    // checkpoint), i.e. the primary-side read cost of replication.
    let t = Instant::now();
    let mut cursor = isis_store::ShipCursor::genesis();
    let mut shipped_frames = 0u64;
    loop {
        match f.log.ship(&cursor, 64).unwrap() {
            Shipment::UpToDate => break,
            Shipment::Frames(ops) => {
                shipped_frames += ops.len() as u64;
                cursor.frames += ops.len() as u64;
            }
            Shipment::Checkpoint { generation, .. } => {
                cursor = isis_store::ShipCursor {
                    generation,
                    frames: 0,
                };
            }
        }
    }
    let ship = t.elapsed();

    // Arm 2 — cold replay lag: a fresh replica bootstraps to head.
    let rroot = f.root.join("replica_cold");
    let t = Instant::now();
    let mut replica = Replica::open(&StoreDir::open(&rroot).unwrap(), NAME, SyncPolicy::OsFlush)
        .unwrap()
        .0;
    let lag_before = replica.status(&f.log).unwrap().lag;
    let status = replica.sync(&f.log).unwrap();
    let cold = t.elapsed();
    assert!(status.caught_up());
    assert_eq!(
        f.primary.read(|db| db.entity_count()),
        replica.pin().entity_count()
    );

    // Arm 3 — warm catch-up: `tail` more commits land, the caught-up
    // replica drives its lag back to zero.
    for i in 0..tail {
        let mut w = f.primary.pin();
        let base = w.delta_epoch();
        let people = w.class_by_name("people").unwrap();
        w.insert_entity(people, &format!("tail_{i}")).unwrap();
        f.primary.commit(base, &w).unwrap();
    }
    let t = Instant::now();
    let status = replica.sync(&f.log).unwrap();
    let warm = t.elapsed();
    assert!(status.caught_up());

    let ms = |d: Duration| d.as_secs_f64() * 1e3;
    let fps = shipped_frames as f64 / ship.as_secs_f64();
    println!(
        "replication_report: {entities} entities in {} frames — ship={:.1}ms \
         ({fps:.0} frames/s) cold_replay={:.1}ms (lag {lag_before}→0) \
         warm_catch_up[{tail}]={:.1}ms",
        f.frames,
        ms(ship),
        ms(cold),
        ms(warm)
    );

    let out_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../out");
    std::fs::create_dir_all(&out_dir).expect("create out/");
    let report = format!(
        "# Log-shipping replication: ship throughput and replay lag\n\n\
         A primary with {entities} entities committed across {} `CommitBatch`\n\
         frames; shipping reads the primary's snapshot + WAL, replay drives a\n\
         replica's own store and head.\n\n\
         | arm | wall time | note |\n\
         | --- | --- | --- |\n\
         | ship (drain {shipped_frames} frames) | {:.1} ms | {fps:.0} frames/s |\n\
         | cold replay to head | {:.1} ms | lag {lag_before} → 0 |\n\
         | warm catch-up ({tail} frames) | {:.1} ms | steady-state lag |\n{}",
        f.frames,
        ms(ship),
        ms(cold),
        ms(warm),
        if smoke {
            "\n(smoke run under `--test`)\n"
        } else {
            ""
        },
    );
    std::fs::write(out_dir.join("bench_replication.md"), report).expect("write report");

    isis_bench::BenchReport::new("replication")
        .smoke(smoke)
        .scale(entities as u64)
        .param("entities", entities)
        .param("frames", f.frames)
        .param("batch", batch)
        .param("tail", tail)
        .result(
            "replication/report/ship_drain",
            ms(ship) * 1e6,
            shipped_frames,
        )
        .result("replication/report/cold_replay", ms(cold) * 1e6, f.frames)
        .result(
            "replication/report/warm_catch_up",
            ms(warm) * 1e6,
            tail as u64,
        )
        .results_from(
            c.measurements()
                .iter()
                .map(|m| (m.id.clone(), m.mean_ns, m.iters)),
        )
        .write();

    let _ = std::fs::remove_dir_all(&f.root);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = ship_poll, replication_report
}
criterion_main!(benches);
