//! Navigation cost: map traversal length and fan-out (the data level's
//! *follow*, §3.2), and the session-level follow command itself.
//!
//! Experiment E-4: following an attribute is O(selection × fan-out); map
//! chains grow cost multiplicatively with fan-out per multivalued step —
//! the responsiveness budget behind the paper's interactive browsing claim.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use isis_bench::fixture;
use isis_core::Map;
use isis_sample::instrumental_music;
use isis_session::{Command, Session};

fn map_traversal(c: &mut Criterion) {
    let mut g = c.benchmark_group("navigation/map");
    let f = fixture(1600);
    let maps: [(&str, Map); 3] = [
        ("len1_members", Map::single(f.s.members)),
        ("len2_members_plays", Map::new(vec![f.s.members, f.s.plays])),
        (
            "len3_members_plays_family",
            Map::new(vec![f.s.members, f.s.plays, f.s.family]),
        ),
    ];
    for (label, map) in &maps {
        // From one group.
        let one = f.s.group_ids[0];
        g.bench_function(BenchmarkId::new("from_one", *label), |b| {
            b.iter(|| f.s.db.eval_map([one], map).unwrap())
        });
        // From every group (whole-class navigation).
        let all: Vec<_> = f.s.group_ids.clone();
        g.bench_function(BenchmarkId::new("from_all", *label), |b| {
            b.iter(|| f.s.db.eval_map(all.iter().copied(), map).unwrap())
        });
    }
    g.finish();
}

fn session_follow(c: &mut Criterion) {
    let mut g = c.benchmark_group("navigation/session_follow");
    let im = instrumental_music().unwrap();
    g.bench_function("follow_plays_from_edith", |b| {
        b.iter(|| {
            let mut s = Session::builder(im.db.clone()).build();
            s.apply(Command::Pick(isis_core::SchemaNode::Class(im.musicians)))
                .unwrap();
            s.apply(Command::ViewContents).unwrap();
            s.apply(Command::SelectEntity(im.edith)).unwrap();
            s.apply(Command::Follow(im.plays)).unwrap();
            s.pages().len()
        })
    });
    g.bench_function("scene_after_follow", |b| {
        let mut s = Session::builder(im.db.clone()).build();
        s.apply(Command::Pick(isis_core::SchemaNode::Class(im.musicians)))
            .unwrap();
        s.apply(Command::ViewContents).unwrap();
        s.apply(Command::SelectEntity(im.edith)).unwrap();
        s.apply(Command::Follow(im.plays)).unwrap();
        b.iter(|| s.scene().unwrap())
    });
    g.finish();
}

fn whole_session_replay(c: &mut Criterion) {
    let mut g = c.benchmark_group("navigation/replay");
    // The entire §4.2 holiday-party session (≈60 commands + 12 captures).
    g.bench_function("holiday_party_full", |b| {
        b.iter(|| {
            let (session, transcript) = isis::holiday::run_holiday_party(None).unwrap();
            (session.stopped(), transcript.captures.len())
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = map_traversal, session_follow, whole_session_replay
}
criterion_main!(benches);
