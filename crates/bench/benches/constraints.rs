//! Ablation: the cost of the §5 integrity-constraint extension — checking a
//! constraint over a class, and the overhead `apply_checked` adds to a raw
//! mutation (clone + re-check).
//!
//! Experiment E-8: constraint checking is linear in the constrained class;
//! transactional enforcement costs one database clone plus two checks, so
//! it is the right tool for interactive edits, not bulk loads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use isis_core::{
    Atom, Clause, CompareOp, ConstraintKind, Database, EntityId, Map, Multiplicity, Predicate, Rhs,
};

/// An office of `n` employees in a management chain with salaries.
fn office(
    n: usize,
) -> (
    Database,
    isis_core::ClassId,
    isis_core::AttrId,
    Vec<EntityId>,
) {
    let mut db = Database::new("office");
    let employees = db.create_baseclass("employees").unwrap();
    let ints = db.predefined(isis_core::BaseKind::Integers);
    let salary = db
        .create_attribute(employees, "salary", ints, Multiplicity::Single)
        .unwrap();
    let manager = db
        .create_attribute(employees, "manager", employees, Multiplicity::Single)
        .unwrap();
    let mut ids = Vec::with_capacity(n);
    for i in 0..n {
        let e = db.insert_entity(employees, &format!("emp{i}")).unwrap();
        // Salaries strictly decrease down the chain: constraint holds.
        let pay = db.int((2 * n - i) as i64);
        db.assign_single(e, salary, pay).unwrap();
        if let Some(&boss) = ids.last() {
            db.assign_single(e, manager, boss).unwrap();
        }
        ids.push(e);
    }
    let pred = Predicate::dnf(vec![Clause::new(vec![Atom::new(
        Map::single(salary),
        CompareOp::Gt,
        Rhs::SelfMap(Map::new(vec![manager, salary])),
    )])]);
    db.create_constraint("no_overpaid", employees, pred, ConstraintKind::Forbidden)
        .unwrap();
    (db, employees, salary, ids)
}

fn constraint_costs(c: &mut Criterion) {
    let mut g = c.benchmark_group("constraints");
    for n in [100usize, 400, 1600] {
        let (db, _employees, salary, ids) = office(n);
        let k = db.constraint_by_name("no_overpaid").unwrap();
        g.bench_with_input(BenchmarkId::new("check", n), &n, |b, _| {
            b.iter(|| db.check_constraint(k).unwrap())
        });
        // Raw mutation (clone included, to isolate the checking overhead).
        // Re-assigning the current salary is the only legal integer value
        // inside a strictly decreasing chain, so the constraint still holds.
        let target = ids[n / 2];
        let legal_pay = (2 * n - n / 2) as i64;
        g.bench_with_input(BenchmarkId::new("raw_assign", n), &n, |b, _| {
            b.iter(|| {
                let mut db2 = db.clone();
                let legal = db2.int(legal_pay);
                db2.assign_single(target, salary, legal).unwrap();
                db2.entity_count()
            })
        });
        // Transactionally enforced mutation.
        g.bench_with_input(BenchmarkId::new("checked_assign", n), &n, |b, _| {
            b.iter(|| {
                let mut db2 = db.clone();
                db2.apply_checked(|d| {
                    let legal = d.int(legal_pay);
                    d.assign_single(target, salary, legal)
                })
                .unwrap();
                db2.entity_count()
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = constraint_costs
}
criterion_main!(benches);
