//! View construction and rendering cost vs schema size: the interactive-
//! speed budget of the workstation interface.
//!
//! Experiment E-7: scene building is linear in visible boxes; ASCII and SVG
//! rendering are linear in scene elements — all comfortably inside an
//! interactive frame for realistic schema sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use isis_core::{Database, Multiplicity};
use isis_sample::instrumental_music;
use isis_views::{
    data_view, forest_view, network_view, render, DataViewInput, ForestViewOptions, PageSpec,
};

/// A schema with `n` baseclasses, each with a few attributes and a subclass.
fn wide_schema(n: usize) -> Database {
    let mut db = Database::new(format!("wide_{n}"));
    let strings = db.predefined(isis_core::BaseKind::Strings);
    for i in 0..n {
        let c = db.create_baseclass(&format!("class{i}")).unwrap();
        db.create_attribute(c, &format!("a{i}"), strings, Multiplicity::Single)
            .unwrap();
        db.create_attribute(c, &format!("b{i}"), strings, Multiplicity::Multi)
            .unwrap();
        db.create_subclass(c, &format!("sub{i}")).unwrap();
    }
    db
}

fn scene_building(c: &mut Criterion) {
    let mut g = c.benchmark_group("render/build");
    for n in [4usize, 16, 64] {
        let db = wide_schema(n);
        g.bench_with_input(BenchmarkId::new("forest_view", n), &n, |b, _| {
            b.iter(|| forest_view(&db, &ForestViewOptions::default()).unwrap())
        });
    }
    let im = instrumental_music().unwrap();
    g.bench_function("network_view_instruments", |b| {
        b.iter(|| network_view(&im.db, im.instruments).unwrap())
    });
    g.bench_function("data_view_two_pages", |b| {
        let mut p1 = PageSpec::new(isis_core::SchemaNode::Class(im.instruments));
        p1.selected = vec![im.flute, im.oboe];
        let mut p2 = PageSpec::new(isis_core::SchemaNode::Class(im.families));
        p2.followed_from = Some(im.family);
        let input = DataViewInput {
            pages: vec![p1, p2],
            prompt: vec![],
        };
        b.iter(|| data_view(&im.db, &input).unwrap())
    });
    g.finish();
}

fn backends(c: &mut Criterion) {
    let mut g = c.benchmark_group("render/backend");
    for n in [4usize, 16, 64] {
        let db = wide_schema(n);
        let scene = forest_view(&db, &ForestViewOptions::default())
            .unwrap()
            .scene;
        g.bench_with_input(BenchmarkId::new("ascii", n), &n, |b, _| {
            b.iter(|| render::ascii::render(&scene))
        });
        g.bench_with_input(BenchmarkId::new("svg", n), &n, |b, _| {
            b.iter(|| render::svg::render(&scene))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = scene_building, backends
}
criterion_main!(benches);
