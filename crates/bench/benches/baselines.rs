//! Query-style baselines: the ISIS per-candidate evaluator vs the compiled
//! relational algebra plan vs the QBE template engine (§1.1 comparators),
//! plus the short-circuit optimizer and the index-pruned evaluator.
//!
//! Experiment E-3: all engines return identical answers; ISIS's navigational
//! evaluation wins on selective predicates, the RA plan pays materialisation
//! costs, QBE's nested-loop unification sits in between; indexes and atom
//! reordering cut the ISIS cost further.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use isis_bench::fixture;
use isis_query::{
    compile_subclass_predicate, encode_database, eval_plan, optimize, Cell, IndexedEvaluator,
    QbeQuery, TemplateRow,
};
// (parallel evaluator referenced via the crate path below)

fn engines(c: &mut Criterion) {
    let mut g = c.benchmark_group("baselines");
    for n in [100usize, 400, 1600] {
        let mut f = fixture(n);
        let four = f.s.db.int(4);

        // ISIS per-candidate evaluation.
        g.bench_with_input(BenchmarkId::new("isis_eval", n), &n, |b, _| {
            b.iter(|| {
                f.s.db
                    .evaluate_derived_members(f.s.music_groups, &f.quartets)
                    .unwrap()
            })
        });

        // Compiled relational algebra over a pre-encoded image.
        let plan = compile_subclass_predicate(&f.s.db, f.s.music_groups, &f.quartets).unwrap();
        let rdb = encode_database(&f.s.db).unwrap();
        g.bench_with_input(BenchmarkId::new("ra_plan_eval", n), &n, |b, _| {
            b.iter(|| eval_plan(&plan, &rdb, &f.s.db).unwrap())
        });
        // Same plan with structural memoisation of repeated subplans.
        g.bench_with_input(BenchmarkId::new("ra_plan_cached", n), &n, |b, _| {
            b.iter(|| isis_query::eval_cached(&plan, &rdb, &f.s.db).unwrap().len())
        });
        // Encoding cost, reported separately.
        g.bench_with_input(BenchmarkId::new("ra_encode", n), &n, |b, _| {
            b.iter(|| encode_database(&f.s.db).unwrap())
        });

        // QBE template (same query): groups of size 4 with a member who
        // plays the probe instrument.
        let qbe = QbeQuery::new(
            vec![
                TemplateRow {
                    relation: "attr_music_groups_size".into(),
                    cells: vec![Cell::Var("g".into()), Cell::Const(four)],
                },
                TemplateRow {
                    relation: "attr_music_groups_members".into(),
                    cells: vec![Cell::Var("g".into()), Cell::Var("m".into())],
                },
                TemplateRow {
                    relation: "attr_musicians_plays".into(),
                    cells: vec![Cell::Var("m".into()), Cell::Const(f.probe_instrument)],
                },
            ],
            vec![],
            "g",
        )
        .unwrap();
        g.bench_with_input(BenchmarkId::new("qbe_eval", n), &n, |b, _| {
            b.iter(|| qbe.eval(&rdb, &f.s.db).unwrap())
        });
        // The same QBE query compiled to hash-join algebra.
        let qbe_plan = qbe.compile_to_algebra().unwrap();
        g.bench_with_input(BenchmarkId::new("qbe_compiled", n), &n, |b, _| {
            b.iter(|| isis_query::algebra::eval(&qbe_plan, &rdb, &f.s.db).unwrap())
        });

        // Index-pruned ISIS evaluation.
        let mut indexed = IndexedEvaluator::new();
        indexed.add_index(&f.s.db, f.s.size).unwrap();
        indexed.add_index(&f.s.db, f.s.plays).unwrap();
        g.bench_with_input(BenchmarkId::new("isis_indexed", n), &n, |b, _| {
            b.iter(|| {
                indexed
                    .evaluate(&f.s.db, f.s.music_groups, &f.quartets)
                    .unwrap()
            })
        });

        // Optimizer-reordered ISIS evaluation (reordering done once).
        let (opt, _) = optimize(
            &f.s.db,
            f.s.music_groups,
            &f.quartets,
            Some(indexed.service()),
        )
        .unwrap();
        g.bench_with_input(BenchmarkId::new("isis_optimized", n), &n, |b, _| {
            b.iter(|| {
                f.s.db
                    .evaluate_derived_members(f.s.music_groups, &opt)
                    .unwrap()
            })
        });

        // Parallel evaluation (4 workers).
        let cache = isis_query::ProgramCache::new();
        g.bench_with_input(BenchmarkId::new("isis_parallel4", n), &n, |b, _| {
            b.iter(|| {
                isis_query::evaluate_derived_members_parallel(
                    &cache,
                    &f.s.db,
                    f.s.music_groups,
                    &f.quartets,
                    4,
                )
                .unwrap()
            })
        });
    }
    g.finish();
}

/// Machine-readable sibling of the engine comparison: every criterion
/// measurement taken this run, written to `out/bench_baselines.json`.
fn export_report(c: &mut Criterion) {
    let smoke = std::env::args().any(|a| a == "--test");
    isis_bench::BenchReport::new("baselines")
        .smoke(smoke)
        .results_from(
            c.measurements()
                .iter()
                .map(|m| (m.id.clone(), m.mean_ns, m.iters)),
        )
        .write();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = engines, export_report
}
criterion_main!(benches);
