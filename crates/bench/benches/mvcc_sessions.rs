//! Concurrent sessions over a [`SharedDatabase`] vs a single owned
//! session.
//!
//! The MVCC experiment: N reader threads each pin a snapshot and run the
//! standard `size = {4}` query repeatedly while one writer thread commits
//! inserts, against the same total work done sequentially through a
//! single-owner database. Readers assert snapshot stability as they go —
//! every pass over a pinned snapshot must return the identical extent, no
//! matter what the writer commits.
//!
//! Micro-arms time the two MVCC primitives (`pin`, the snapshot clone,
//! and the fast-path `commit`); the report arm measures end-to-end wall
//! time and writes `out/bench_mvcc_sessions.md` plus machine-readable
//! `out/bench_mvcc_sessions.json`.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use isis_bench::fixture;
use isis_core::SharedDatabase;

const READERS: usize = 4;

fn pin_and_commit(c: &mut Criterion) {
    let mut g = c.benchmark_group("mvcc_sessions");
    for n in [400usize, 1600] {
        let f = fixture(n);
        let shared = SharedDatabase::new(f.s.db.clone());
        g.bench_with_input(BenchmarkId::new("pin", n), &n, |b, _| {
            b.iter(|| shared.pin())
        });
        let musicians = f.s.musicians;
        let mut i = 0u64;
        g.bench_with_input(BenchmarkId::new("commit_insert", n), &n, |b, _| {
            b.iter(|| {
                let mut local = shared.pin();
                let base = local.delta_epoch();
                i += 1;
                local
                    .insert_entity(musicians, &format!("bench_{i}"))
                    .unwrap();
                shared.commit(base, &local).unwrap()
            })
        });
    }
    g.finish();
}

/// The headline report: total wall time for R read passes + W commits,
/// single-owner sequential vs N pinned readers + 1 committing writer.
fn concurrent_sessions_report(c: &mut Criterion) {
    let smoke = std::env::args().any(|a| a == "--test");
    let (n, passes, commits) = if smoke { (300, 8, 4) } else { (10_000, 48, 24) };

    let f = fixture(n);
    let entities = f.s.db.entity_count();
    let query = f.size4.clone();
    let groups_class = f.s.music_groups;
    let musicians = f.s.musicians;

    // Baseline: one owned database, same total work, strictly sequential
    // (a read pass between every pair of writes, like a single session
    // alternating browse and modify).
    let mut db = f.s.db.clone();
    let t = Instant::now();
    let mut done_reads = 0usize;
    for i in 0..commits {
        db.insert_entity(musicians, &format!("solo_{i}")).unwrap();
        while done_reads * commits < passes * (i + 1) {
            let _ = db.evaluate_derived_members(groups_class, &query).unwrap();
            done_reads += 1;
        }
    }
    while done_reads < passes {
        let _ = db.evaluate_derived_members(groups_class, &query).unwrap();
        done_reads += 1;
    }
    let baseline = t.elapsed();

    // Shared: N readers over pinned snapshots, one writer committing the
    // same number of inserts through the MVCC path.
    let shared = SharedDatabase::new(f.s.db.clone());
    let t = Instant::now();
    std::thread::scope(|scope| {
        for r in 0..READERS {
            let shared = shared.clone();
            let query = query.clone();
            let my_passes = passes / READERS + usize::from(r < passes % READERS);
            scope.spawn(move || {
                let pinned = shared.pin();
                let first = pinned
                    .evaluate_derived_members(groups_class, &query)
                    .unwrap();
                for _ in 1..my_passes.max(1) {
                    let again = pinned
                        .evaluate_derived_members(groups_class, &query)
                        .unwrap();
                    assert_eq!(
                        first, again,
                        "pinned snapshot changed under a concurrent writer"
                    );
                }
            });
        }
        let shared = shared.clone();
        scope.spawn(move || {
            for i in 0..commits {
                let mut local = shared.pin();
                let base = local.delta_epoch();
                local
                    .insert_entity(musicians, &format!("mvcc_{i}"))
                    .unwrap();
                shared.commit(base, &local).unwrap();
            }
        });
    });
    let concurrent = t.elapsed();
    assert_eq!(shared.commits(), commits as u64);

    let ms = |d: Duration| d.as_secs_f64() * 1e3;
    let speedup = ms(baseline) / ms(concurrent);
    println!(
        "mvcc_sessions_report: n={n} ({entities} entities) {passes} read passes + \
         {commits} commits — single-owner={:.1}ms shared {READERS}r+1w={:.1}ms \
         ({speedup:.2}x)",
        ms(baseline),
        ms(concurrent)
    );

    let out_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../out");
    std::fs::create_dir_all(&out_dir).expect("create out/");
    let report = format!(
        "# MVCC sessions: pinned readers + committing writer vs single owner\n\n\
         {passes} `size = {{4}}` evaluation passes and {commits} insert\n\
         commits over {entities} entities. The shared arm runs {READERS}\n\
         pinned readers concurrently with one writer committing through the\n\
         snapshot-isolation path; every reader asserts its snapshot stayed\n\
         byte-stable across the run.\n\n\
         | arm | wall time |\n\
         | --- | --- |\n\
         | single owned session, sequential | {:.1} ms |\n\
         | shared: {READERS} readers + 1 writer | {:.1} ms |\n\n\
         **Concurrency speedup: {speedup:.2}×**{}.\n",
        ms(baseline),
        ms(concurrent),
        if smoke {
            " (smoke run under `--test`)"
        } else {
            ""
        },
    );
    std::fs::write(out_dir.join("bench_mvcc_sessions.md"), report).expect("write report");

    isis_bench::BenchReport::new("mvcc_sessions")
        .smoke(smoke)
        .scale(entities as u64)
        .param("n", n)
        .param("entities", entities)
        .param("readers", READERS)
        .param("read_passes", passes)
        .param("commits", commits)
        .result(
            "mvcc_sessions/report/single_owner",
            ms(baseline) * 1e6,
            passes as u64 + commits as u64,
        )
        .result(
            "mvcc_sessions/report/shared_readers_writer",
            ms(concurrent) * 1e6,
            passes as u64 + commits as u64,
        )
        .results_from(
            c.measurements()
                .iter()
                .map(|m| (m.id.clone(), m.mean_ns, m.iters)),
        )
        .write();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = pin_and_commit, concurrent_sessions_report
}
criterion_main!(benches);
