//! Predicate evaluation cost: class size, clause/atom shape, DNF vs CNF.
//!
//! Experiment E-1 of EXPERIMENTS.md: evaluation scales linearly in the
//! candidate class size; CNF and DNF readings of the same layout cost the
//! same order; atom count scales per-candidate cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use isis_bench::fixture;
use isis_sample::workload::random_musician_predicate;

fn class_size_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("predicate_eval/class_size");
    for n in [100usize, 400, 1600, 6400] {
        let f = fixture(n);
        g.bench_with_input(BenchmarkId::new("size4", n), &n, |b, _| {
            b.iter(|| {
                f.s.db
                    .evaluate_derived_members(f.s.music_groups, &f.size4)
                    .unwrap()
            })
        });
        g.bench_with_input(BenchmarkId::new("quartets", n), &n, |b, _| {
            b.iter(|| {
                f.s.db
                    .evaluate_derived_members(f.s.music_groups, &f.quartets)
                    .unwrap()
            })
        });
    }
    g.finish();
}

fn clause_shape_sweep(c: &mut Criterion) {
    let f = fixture(400);
    let mut g = c.benchmark_group("predicate_eval/shape");
    for (clauses, atoms) in [(1usize, 1usize), (1, 4), (4, 1), (4, 4)] {
        for dnf in [true, false] {
            let pred = random_musician_predicate(&f.s, clauses, atoms, dnf, 7);
            let label = format!("{}c{}a_{}", clauses, atoms, if dnf { "dnf" } else { "cnf" });
            g.bench_function(BenchmarkId::new("eval", label), |b| {
                b.iter(|| {
                    f.s.db
                        .evaluate_derived_members(f.s.musicians, &pred)
                        .unwrap()
                })
            });
        }
    }
    g.finish();
}

/// Machine-readable sibling of the sweeps above: every criterion
/// measurement taken this run, written to `out/bench_predicate_eval.json`.
fn export_report(c: &mut Criterion) {
    let smoke = std::env::args().any(|a| a == "--test");
    isis_bench::BenchReport::new("predicate_eval")
        .smoke(smoke)
        .results_from(
            c.measurements()
                .iter()
                .map(|m| (m.id.clone(), m.mean_ns, m.iters)),
        )
        .write();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = class_size_sweep, clause_shape_sweep, export_report
}
criterion_main!(benches);
