//! The cost of disabled instrumentation on the query hot path.
//!
//! The observability contract (DESIGN.md §5c) budgets disabled-mode
//! instrumentation at under 2% of query latency: every `span`/`count`
//! site must collapse to one relaxed atomic load when `ISIS_OBS` is off.
//! This bench proves the budget empirically on the 10k-musician workload:
//!
//! 1. microbenchmark the disabled `span()` and `count()` paths per op;
//! 2. count the instrumentation ops one shared-service query round
//!    actually executes (by running a round with tracing on and reading
//!    the trace/registry back);
//! 3. time the same round with observability fully disabled;
//! 4. overhead% = per-op ns × ops per round ÷ round ns, with a 2× safety
//!    factor on the op count for counter sites the trace can't see.
//!
//! The `<2%` assertion only fires in measured mode — `--test` smoke runs
//! record placeholder numbers but still exercise every path.

use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use isis_bench::fixture;
use isis_core::Database;
use isis_query::IndexService;

struct Workload {
    target: isis_core::EntityId,
    size: isis_core::AttrId,
    parent: isis_core::ClassId,
    four: isis_core::EntityId,
    five: isis_core::EntityId,
    size4: isis_core::Predicate,
    quartets: isis_core::Predicate,
}

impl Workload {
    fn round(&self, db: &mut Database, svc: &mut IndexService, i: usize) {
        let v = if i.is_multiple_of(2) {
            self.five
        } else {
            self.four
        };
        db.assign_single(self.target, self.size, v).unwrap();
        svc.refresh(db).unwrap();
        black_box(svc.evaluate(db, self.parent, &self.size4).unwrap());
        black_box(svc.evaluate(db, self.parent, &self.quartets).unwrap());
    }
}

fn obs_overhead(c: &mut Criterion) {
    let smoke = c.is_test_mode();
    let (n, rounds) = if smoke {
        (300usize, 8usize)
    } else {
        (10_000, 200)
    };
    let obs = isis_obs::global();

    // 1. Per-op cost of the disabled fast path.
    obs.set_tracing(false);
    obs.set_enabled(false);
    let probe_ops: u64 = if smoke { 10_000 } else { 2_000_000 };
    let t = Instant::now();
    for _ in 0..probe_ops {
        black_box(obs.span("bench.obs.noop"));
    }
    let span_op_ns = t.elapsed().as_nanos() as f64 / probe_ops as f64;
    let t = Instant::now();
    for _ in 0..probe_ops {
        obs.count(black_box("bench.obs.noop"), 1);
    }
    let count_op_ns = t.elapsed().as_nanos() as f64 / probe_ops as f64;
    let t = Instant::now();
    for _ in 0..probe_ops {
        // Disabled flight events must not even build their payload: the
        // closure is behind the enabled check.
        obs.flight_event(black_box("bench.obs.noop"), || {
            unreachable!("payload built with observability off")
        });
    }
    let flight_op_ns = t.elapsed().as_nanos() as f64 / probe_ops as f64;
    let op_ns = span_op_ns.max(count_op_ns).max(flight_op_ns);

    // 2. Instrumentation ops per query round, observed under tracing.
    let f = fixture(n);
    let mut db = f.s.db.clone();
    let w = Workload {
        target: f.s.group_ids[0],
        size: f.s.size,
        parent: f.s.music_groups,
        four: db.int(4),
        five: db.int(5),
        size4: f.size4.clone(),
        quartets: f.quartets.clone(),
    };
    let mut svc = IndexService::new(&db);
    svc.ensure_index(&db, w.size).unwrap();
    w.round(&mut db, &mut svc, 0); // settle into steady state untraced
    obs.set_tracing(true);
    obs.registry().reset();
    obs.recorder().clear();
    w.round(&mut db, &mut svc, 1);
    let trace = obs.recorder().snapshot();
    let events = trace
        .records
        .iter()
        .filter(|r| matches!(r, isis_obs::TraceRecord::Event { .. }))
        .count();
    let counter_sites = obs
        .registry()
        .snapshot()
        .entries
        .iter()
        .filter(|(_, v)| matches!(v, isis_obs::MetricValue::Counter(_)))
        .count();
    // Spans cost one guard each; events and counter metrics one call each.
    // Double the total as headroom for sites the trace cannot attribute
    // (multi-increment counters, gauges).
    let ops_per_round = 2 * (trace.span_count() + events + counter_sites);
    obs.set_tracing(false);
    obs.set_enabled(false);

    // 3. The real round with observability fully disabled.
    let t = Instant::now();
    for i in 2..2 + rounds {
        w.round(&mut db, &mut svc, i);
    }
    let round_ns = t.elapsed().as_nanos() as f64 / rounds as f64;

    // 4. The budget check.
    let overhead_pct = op_ns * ops_per_round as f64 * 100.0 / round_ns;
    println!(
        "obs_overhead: n={n} op={op_ns:.2}ns (span {span_op_ns:.2}, count {count_op_ns:.2}, \
         flight {flight_op_ns:.2}) ops/round={ops_per_round} round={round_ns:.0}ns \
         overhead={overhead_pct:.3}%"
    );
    if !smoke {
        assert!(
            overhead_pct < 2.0,
            "disabled instrumentation must cost <2% of a query round \
             ({overhead_pct:.3}% = {op_ns:.2}ns x {ops_per_round} ops on a \
             {round_ns:.0}ns round)"
        );
    }

    let out_dir = isis_bench::report::out_dir();
    std::fs::create_dir_all(&out_dir).expect("create out/");
    let md = format!(
        "# Disabled-instrumentation overhead on the query path\n\n\
         Per-op disabled fast path: span {span_op_ns:.2} ns, counter \
         {count_op_ns:.2} ns, flight event {flight_op_ns:.2} ns (payload \
         closure never runs). One shared-service round (point update, delta \
         drain, two queries) executes ~{ops_per_round} instrumentation ops \
         (2x-padded trace count) and takes {round_ns:.0} ns with `ISIS_OBS` \
         off over {n} musicians.\n\n\
         **Overhead bound: {overhead_pct:.3}%** (budget: 2%{}).\n",
        if smoke {
            "; smoke run under `--test`"
        } else {
            ""
        }
    );
    std::fs::write(out_dir.join("obs_overhead.md"), md).expect("write report");
    isis_bench::BenchReport::new("obs_overhead")
        .smoke(smoke)
        .scale(n as u64)
        .param("n", n)
        .param("rounds", rounds)
        .param("ops_per_round", ops_per_round)
        .param("overhead_pct", overhead_pct)
        .result("obs_overhead/disabled_span_op", span_op_ns, probe_ops)
        .result("obs_overhead/disabled_count_op", count_op_ns, probe_ops)
        .result("obs_overhead/disabled_flight_op", flight_op_ns, probe_ops)
        .result("obs_overhead/query_round_disabled", round_ns, rounds as u64)
        .write();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = obs_overhead
}
criterion_main!(benches);
