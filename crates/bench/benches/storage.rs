//! Storage engine throughput: snapshot encode/decode, WAL append under both
//! durability policies, and crash-recovery replay.
//!
//! Experiment E-6: snapshot cost is linear in database size; per-op WAL
//! append is constant (dominated by fsync under `EverySync`); replay runs
//! at in-memory apply speed.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use isis_bench::fixture;
use isis_store::{replay_log, LogOp, StoreDir, SyncPolicy, WalFile};

fn tempdir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("isis_bench_store_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn snapshots(c: &mut Criterion) {
    let mut g = c.benchmark_group("storage/snapshot");
    for n in [100usize, 400, 1600] {
        let f = fixture(n);
        let dir = tempdir(&format!("snap{n}"));
        let store = StoreDir::open(&dir).unwrap();
        g.bench_with_input(BenchmarkId::new("save", n), &n, |b, _| {
            b.iter(|| store.save(&f.s.db, "bench").unwrap())
        });
        store.save(&f.s.db, "bench").unwrap();
        g.bench_with_input(BenchmarkId::new("load", n), &n, |b, _| {
            b.iter(|| store.load("bench").unwrap())
        });
        std::fs::remove_dir_all(&dir).unwrap();
    }
    g.finish();
}

fn wal(c: &mut Criterion) {
    let mut g = c.benchmark_group("storage/wal");
    let dir = tempdir("wal");
    for (policy, label) in [
        (SyncPolicy::OsFlush, "osflush"),
        (SyncPolicy::EverySync, "fsync"),
    ] {
        let path = dir.join(format!("bench_{label}.wal"));
        let mut wal = WalFile::open(&path, policy).unwrap();
        let op = LogOp::AssignSingle(
            isis_core::EntityId::from_raw(10),
            isis_core::AttrId::from_raw(3),
            isis_core::EntityId::from_raw(20),
        );
        g.bench_function(BenchmarkId::new("append", label), |b| {
            b.iter(|| wal.append(&op).unwrap())
        });
    }
    // Replay throughput: 5 000 ops.
    let path = dir.join("replay.wal");
    {
        let mut wal = WalFile::open(&path, SyncPolicy::OsFlush).unwrap();
        for i in 0..5_000u32 {
            wal.append(&LogOp::Intern(isis_core::Literal::Int(i as i64)))
                .unwrap();
        }
    }
    g.bench_function("replay_5000_ops", |b| {
        b.iter(|| {
            let replay = replay_log(&path).unwrap();
            assert_eq!(replay.ops.len(), 5_000);
            let mut db = isis_core::Database::new("replay");
            for op in &replay.ops {
                op.apply(&mut db).unwrap();
            }
            db.entity_count()
        })
    });
    g.finish();
    std::fs::remove_dir_all(&dir).unwrap();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = snapshots, wal
}
criterion_main!(benches);
