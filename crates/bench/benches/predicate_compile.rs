//! Compiled predicate programs vs the per-candidate interpreter.
//!
//! Experiment E-5: a constant-RHS-heavy predicate (mapped constants whose
//! images the interpreter recomputes for every candidate) evaluated four
//! ways: the core interpreter, the compiled program (constants hoisted
//! once, shared lhs maps memoised), the compiled program on the persistent
//! worker pool, and the compiled program on per-call spawned threads. The
//! compiled arm must beat the interpreter by ≥2× at 10k entities, and the
//! persistent pool must beat per-call spawning at equal thread counts.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use isis_bench::fixture;
use isis_core::{Atom, Clause, CompareOp, Map, OrderedSet, Predicate, Rhs};
use isis_query::{
    evaluate_derived_members_parallel, evaluate_derived_members_spawn, PredicateProgram,
};

const THREADS: usize = 4;

/// A predicate dominated by constant-RHS work: two mapped constants over
/// the same `members plays family` lhs (one anchored on half the
/// instrument class, one on the probe instrument) plus the `size = {4}`
/// equality. The interpreter re-evaluates `family(anchors)` for every
/// candidate group; the compiled program hoists both images out of the
/// loop and memoises the shared lhs map per candidate.
fn hoist_heavy_predicate(f: &mut isis_bench::Fixture) -> Predicate {
    let four = f.s.db.int(4);
    let ints = f.s.db.predefined(isis_core::BaseKind::Integers);
    let heavy_anchors: OrderedSet = f.s.instrument_ids.iter().step_by(2).copied().collect();
    Predicate::cnf(vec![
        Clause::new(vec![Atom::new(
            Map::new(vec![f.s.members, f.s.plays, f.s.family]),
            CompareOp::Subset,
            Rhs::Constant {
                class: f.s.instruments,
                anchors: heavy_anchors,
                map: Map::single(f.s.family),
            },
        )]),
        Clause::new(vec![Atom::new(
            Map::new(vec![f.s.members, f.s.plays, f.s.family]),
            CompareOp::Superset,
            Rhs::Constant {
                class: f.s.instruments,
                anchors: [f.probe_instrument].into_iter().collect(),
                map: Map::single(f.s.family),
            },
        )]),
        Clause::new(vec![Atom::new(
            Map::single(f.s.size),
            CompareOp::SetEq,
            Rhs::constant(ints, [four]),
        )]),
    ])
}

fn interpreted_vs_compiled(c: &mut Criterion) {
    let mut g = c.benchmark_group("predicate_compile");
    for n in [100usize, 400, 1600] {
        let mut f = fixture(n);
        let pred = hoist_heavy_predicate(&mut f);
        g.bench_with_input(BenchmarkId::new("interpreted", n), &n, |b, _| {
            b.iter(|| {
                f.s.db
                    .evaluate_derived_members(f.s.music_groups, &pred)
                    .unwrap()
            })
        });
        // Compile cost is part of the arm: the claim is compile-once-per-
        // query, not compile-once-ever.
        g.bench_with_input(BenchmarkId::new("compiled", n), &n, |b, _| {
            b.iter(|| {
                let prog = PredicateProgram::compile(&f.s.db, f.s.music_groups, &pred).unwrap();
                prog.evaluate_extent(&f.s.db, f.s.music_groups).unwrap()
            })
        });
    }
    g.finish();
}

/// The headline report: all four arms over the same database at 10k-entity
/// scale, written to `out/predicate_compile.md` and (machine-readable)
/// `out/bench_predicate_compile.json`.
fn predicate_compile_report(c: &mut Criterion) {
    let smoke = std::env::args().any(|a| a == "--test");
    let (n, rounds) = if smoke { (300, 3) } else { (10_000, 30) };

    let mut f = fixture(n);
    let pred = hoist_heavy_predicate(&mut f);
    let db = &f.s.db;
    let parent = f.s.music_groups;
    let entities = db.entity_count();
    let groups = db.members(parent).unwrap().len();

    let time_arm = |eval: &mut dyn FnMut() -> OrderedSet| -> (Duration, OrderedSet) {
        let mut total = Duration::ZERO;
        let mut last = OrderedSet::new();
        for _ in 0..rounds {
            let t = Instant::now();
            last = eval();
            total += t.elapsed();
        }
        (total, last)
    };

    let (interp_total, interp_last) =
        time_arm(&mut || db.evaluate_derived_members(parent, &pred).unwrap());
    let (compiled_total, compiled_last) = time_arm(&mut || {
        let prog = PredicateProgram::compile(db, parent, &pred).unwrap();
        prog.evaluate_extent(db, parent).unwrap()
    });
    // Warm the shared pool so thread startup is excluded from the pooled
    // arm — that persistence is exactly what the arm measures. The program
    // cache is cleared before every call so the arms keep measuring
    // per-call compilation, as they always have.
    let cache = isis_query::ProgramCache::new();
    evaluate_derived_members_parallel(&cache, db, parent, &pred, THREADS).unwrap();
    let (pooled_total, pooled_last) = time_arm(&mut || {
        cache.clear();
        evaluate_derived_members_parallel(&cache, db, parent, &pred, THREADS).unwrap()
    });
    let (spawn_total, spawn_last) = time_arm(&mut || {
        cache.clear();
        evaluate_derived_members_spawn(&cache, db, parent, &pred, THREADS).unwrap()
    });

    // Every arm must agree, in order.
    assert_eq!(interp_last.as_slice(), compiled_last.as_slice());
    assert_eq!(interp_last.as_slice(), pooled_last.as_slice());
    assert_eq!(interp_last.as_slice(), spawn_last.as_slice());

    let us = |d: Duration| d.as_secs_f64() * 1e6 / rounds as f64;
    let (interp_us, compiled_us, pooled_us, spawn_us) = (
        us(interp_total),
        us(compiled_total),
        us(pooled_total),
        us(spawn_total),
    );
    let speedup = interp_us / compiled_us;
    println!(
        "predicate_compile_report: n={n} ({entities} entities, {groups} groups) \
         interpreted={interp_us:.1}us compiled={compiled_us:.1}us ({speedup:.1}x) \
         pooled{THREADS}={pooled_us:.1}us spawn{THREADS}={spawn_us:.1}us"
    );
    if !smoke {
        assert!(
            speedup >= 2.0,
            "compiled evaluation must be at least 2x the interpreter on a \
             constant-RHS-heavy predicate (interpreted {interp_us:.1}us vs \
             compiled {compiled_us:.1}us)"
        );
        assert!(
            pooled_us < spawn_us,
            "the persistent pool must beat per-call thread spawning at equal \
             thread counts (pooled {pooled_us:.1}us vs spawn {spawn_us:.1}us)"
        );
    }

    let out_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../out");
    std::fs::create_dir_all(&out_dir).expect("create out/");
    let report = format!(
        "# Compiled predicate programs: hoisting, memoization, persistent pool\n\n\
         {rounds} rounds of a constant-RHS-heavy CNF query (two mapped\n\
         constants over a shared `members plays family` lhs, plus\n\
         `size = {{4}}`) over {entities} entities ({groups} music groups).\n\
         Compile cost is inside every compiled arm's timing.\n\n\
         | arm | mean per round |\n\
         | --- | --- |\n\
         | interpreter (per-candidate) | {interp_us:.1} µs |\n\
         | compiled program, serial | {compiled_us:.1} µs |\n\
         | compiled, persistent pool ({THREADS} threads) | {pooled_us:.1} µs |\n\
         | compiled, spawn-per-call ({THREADS} threads) | {spawn_us:.1} µs |\n\n\
         **Compiled speedup over interpreter: {speedup:.1}×**{}.\n",
        if smoke {
            " (smoke run under `--test`)"
        } else {
            ""
        },
    );
    std::fs::write(out_dir.join("predicate_compile.md"), report).expect("write report");

    isis_bench::BenchReport::new("predicate_compile")
        .smoke(smoke)
        .scale(entities as u64)
        .param("n", n)
        .param("rounds", rounds as u64)
        .param("entities", entities)
        .param("groups", groups)
        .param("threads", THREADS)
        .result(
            "predicate_compile/report/interpreted",
            interp_us * 1e3,
            rounds as u64,
        )
        .result(
            "predicate_compile/report/compiled_serial",
            compiled_us * 1e3,
            rounds as u64,
        )
        .result(
            "predicate_compile/report/compiled_pooled",
            pooled_us * 1e3,
            rounds as u64,
        )
        .result(
            "predicate_compile/report/compiled_spawn",
            spawn_us * 1e3,
            rounds as u64,
        )
        .results_from(
            c.measurements()
                .iter()
                .map(|m| (m.id.clone(), m.mean_ns, m.iters)),
        )
        .write();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = interpreted_vs_compiled, predicate_compile_report
}
criterion_main!(benches);
