//! The shared index service vs per-query index rebuilds.
//!
//! Experiment E-3: a query stream interleaved with point updates. The
//! "rebuild" arm constructs fresh attribute indexes for every query (what a
//! planner without shared state must do); the "shared" arm keeps one
//! [`IndexService`] alive and drains the delta log incrementally. The
//! shared service must win on the 10k-entity workload — the incremental
//! drain is O(changes) while the rebuild is O(extent) per query.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use isis_bench::fixture;
use isis_core::{Database, EntityId, OrderedSet, Predicate};
use isis_query::IndexService;

/// One round of the workload: a point update (`size` of one group toggles
/// between 4 and 5), then the two standard queries.
struct Workload {
    target: EntityId,
    size: isis_core::AttrId,
    parent: isis_core::ClassId,
    four: EntityId,
    five: EntityId,
    size4: Predicate,
    quartets: Predicate,
}

impl Workload {
    fn update(&self, db: &mut Database, round: usize) {
        let v = if round.is_multiple_of(2) {
            self.five
        } else {
            self.four
        };
        db.assign_single(self.target, self.size, v).unwrap();
    }

    fn queries(&self, db: &Database, svc: &IndexService) -> (OrderedSet, OrderedSet) {
        let a = svc.evaluate(db, self.parent, &self.size4).unwrap();
        let b = svc.evaluate(db, self.parent, &self.quartets).unwrap();
        (a, b)
    }
}

fn make_workload(f: &isis_bench::Fixture, db: &mut Database) -> Workload {
    Workload {
        target: f.s.group_ids[0],
        size: f.s.size,
        parent: f.s.music_groups,
        four: db.int(4),
        five: db.int(5),
        size4: f.size4.clone(),
        quartets: f.quartets.clone(),
    }
}

/// Timed portion of the rebuild arm: build the index, answer both queries.
fn rebuild_round(db: &Database, w: &Workload) -> (OrderedSet, OrderedSet) {
    let mut svc = IndexService::new(db);
    svc.ensure_index(db, w.size).unwrap();
    w.queries(db, &svc)
}

/// Timed portion of the shared arm: drain the delta log, answer both
/// queries from the maintained indexes.
fn shared_round(db: &Database, svc: &mut IndexService, w: &Workload) -> (OrderedSet, OrderedSet) {
    svc.refresh(db).unwrap();
    w.queries(db, svc)
}

fn rebuild_vs_shared(c: &mut Criterion) {
    let mut g = c.benchmark_group("query_index");
    for n in [100usize, 400, 1600] {
        {
            let f = fixture(n);
            let mut db = f.s.db.clone();
            let w = make_workload(&f, &mut db);
            let mut round = 0usize;
            g.bench_with_input(BenchmarkId::new("rebuild_per_query", n), &n, |b, _| {
                b.iter(|| {
                    w.update(&mut db, round);
                    round += 1;
                    rebuild_round(&db, &w)
                })
            });
        }
        {
            let f = fixture(n);
            let mut db = f.s.db.clone();
            let w = make_workload(&f, &mut db);
            let mut svc = IndexService::new(&db);
            svc.ensure_index(&db, w.size).unwrap();
            let mut round = 0usize;
            g.bench_with_input(BenchmarkId::new("shared_maintained", n), &n, |b, _| {
                b.iter(|| {
                    w.update(&mut db, round);
                    round += 1;
                    shared_round(&db, &mut svc, &w)
                })
            });
        }
    }
    g.finish();
}

/// The headline report: the same update+query stream through both arms at
/// 10k-entity scale, written to `out/query_index.md` and (machine-readable)
/// `out/bench_query_index.json`.
fn query_index_report(c: &mut Criterion) {
    let smoke = std::env::args().any(|a| a == "--test");
    let (n, rounds) = if smoke { (300, 4) } else { (10_000, 200) };

    // Rebuild arm.
    let f = fixture(n);
    let mut db = f.s.db.clone();
    let w = make_workload(&f, &mut db);
    let entities = db.entity_count();
    let mut rebuild_total = Duration::ZERO;
    let mut rebuild_last = (OrderedSet::new(), OrderedSet::new());
    for round in 0..rounds {
        w.update(&mut db, round);
        let t = Instant::now();
        rebuild_last = rebuild_round(&db, &w);
        rebuild_total += t.elapsed();
    }

    // Shared arm, identical stream on an identical database.
    let mut db2 = f.s.db.clone();
    let mut svc = IndexService::new(&db2);
    svc.ensure_index(&db2, w.size).unwrap();
    let mut shared_total = Duration::ZERO;
    let mut shared_last = (OrderedSet::new(), OrderedSet::new());
    for round in 0..rounds {
        w.update(&mut db2, round);
        let t = Instant::now();
        shared_last = shared_round(&db2, &mut svc, &w);
        shared_total += t.elapsed();
    }

    // Both arms and the naive evaluator must agree on the final state.
    let naive4 = db2.evaluate_derived_members(w.parent, &w.size4).unwrap();
    let naive_q = db2.evaluate_derived_members(w.parent, &w.quartets).unwrap();
    assert_eq!(rebuild_last.0.as_slice(), naive4.as_slice());
    assert_eq!(rebuild_last.1.as_slice(), naive_q.as_slice());
    assert_eq!(shared_last.0.as_slice(), naive4.as_slice());
    assert_eq!(shared_last.1.as_slice(), naive_q.as_slice());

    let istats = svc.index_stats();
    let qstats = svc.query_stats();
    let rebuild_us = rebuild_total.as_secs_f64() * 1e6 / rounds as f64;
    let shared_us = shared_total.as_secs_f64() * 1e6 / rounds as f64;
    let speedup = rebuild_us / shared_us;
    println!(
        "query_index_report: n={n} ({entities} entities) rebuild={rebuild_us:.1}us \
         shared={shared_us:.1}us speedup={speedup:.1}x \
         (patches={}, rebuilds={}, probes={})",
        istats.incremental_updates, istats.rebuilds, qstats.index_probes
    );
    if !smoke {
        assert!(
            speedup > 1.0,
            "shared maintained indexes must beat per-query rebuilds \
             (rebuild {rebuild_us:.1}us vs shared {shared_us:.1}us)"
        );
    }

    let out_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../out");
    std::fs::create_dir_all(&out_dir).expect("create out/");
    let report = format!(
        "# Query path: per-query index rebuild vs shared maintained indexes\n\n\
         {rounds} rounds of (one `size` point update, then the `size = {{4}}`\n\
         and quartets queries) over {entities} entities ({n} musicians).\n\
         Timed per round: rebuild arm = build the `size` index + 2 queries;\n\
         shared arm = drain the delta log into the [`IndexService`] + 2 queries.\n\n\
         | arm | mean per round |\n\
         | --- | --- |\n\
         | rebuild index per query | {rebuild_us:.1} µs |\n\
         | shared maintained index | {shared_us:.1} µs |\n\n\
         **Speedup: {speedup:.1}×**{}.\n\n\
         Shared-arm counters: {} incremental posting patches, {} rebuilds,\n\
         {} index probes over {} queries ({} sequential scans).\n",
        if smoke {
            " (smoke run under `--test`)"
        } else {
            ""
        },
        istats.incremental_updates,
        istats.rebuilds,
        qstats.index_probes,
        qstats.queries,
        qstats.seq_scans,
    );
    std::fs::write(out_dir.join("query_index.md"), report).expect("write report");

    // Machine-readable sibling: the report-loop aggregates plus every
    // criterion measurement taken earlier in this run.
    isis_bench::BenchReport::new("query_index")
        .smoke(smoke)
        .scale(entities as u64)
        .param("n", n)
        .param("rounds", rounds)
        .param("entities", entities)
        .result(
            "query_index/report/rebuild_per_round",
            rebuild_us * 1e3,
            rounds as u64,
        )
        .result(
            "query_index/report/shared_per_round",
            shared_us * 1e3,
            rounds as u64,
        )
        .results_from(
            c.measurements()
                .iter()
                .map(|m| (m.id.clone(), m.mean_ns, m.iters)),
        )
        .write();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = rebuild_vs_shared, query_index_report
}
criterion_main!(benches);
