//! Hybrid columnar attribute storage (DESIGN.md §4f).
//!
//! Every [`crate::AttrRecord`] used to key a `HashMap<EntityId, AttrValue>`
//! — one hash probe (and, for multivalued reads, one whole-set clone) per
//! attribute access, which is exactly the operation the predicate
//! evaluator's hot loop repeats per atom per candidate. [`AttrColumn`]
//! replaces it with a hybrid layout:
//!
//! * **dense column** — singlevalued assignments for a well-populated
//!   attribute live in a `Vec<EntityId>` indexed directly by the owning
//!   entity's raw id ([`EntityId::NULL`] is the in-column default
//!   sentinel). Entity arena slots are never recycled (tombstones keep ids
//!   stable — see `image.rs`), so the raw id *is* the column slot and a
//!   full-extent scan walks the vector in storage order;
//! * **overflow map** — multivalued assignments, sparse attributes, and
//!   ids beyond the dense frontier keep the compact `HashMap` layout.
//!
//! The column is **canonical**: a stored default (`Single(NULL)` or an
//! empty `Multi` set) is removed rather than kept. Defaults are
//! unobservable through [`crate::AttrRecord::value_of`], change recording
//! (`old != new` gating), and the consistency rules (NULL / empty pass
//! every check), so canonicalisation preserves engine semantics exactly
//! while making `len()` mean "entities with a non-default value".
//!
//! Layout is an implementation detail: `PartialEq` compares *logical*
//! content (two columns holding the same `(entity, value)` pairs are equal
//! regardless of dense/sparse state), and the snapshot codec writes the
//! same sorted `(entity, value)` byte stream as the old map layout.
//!
//! Promotion and demotion are amortised: a sparse column attempts
//! promotion only when its population doubles past the last attempt
//! ([`AttrColumn::DENSE_MIN`], occupancy ≥ span / [`AttrColumn::DENSE_FACTOR`]);
//! a dense column demotes (compacts) back to sparse when deletions drop
//! occupancy below span / [`AttrColumn::SPARSE_FACTOR`]. The 4× hysteresis
//! gap between the two thresholds prevents ping-ponging.

use std::collections::HashMap;
use std::sync::OnceLock;

use crate::attribute::AttrValue;
use crate::ids::EntityId;
use crate::orderedset::OrderedSet;

/// A borrowed view of one stored attribute value — what
/// [`AttrColumn::get`] yields and the evaluator's hot paths consume
/// instead of cloning an [`AttrValue`] per read.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ValueRef<'a> {
    /// A singlevalued assignment (never [`EntityId::NULL`] when read from
    /// a canonical column).
    Single(EntityId),
    /// A multivalued assignment, borrowed from the column.
    Multi(&'a OrderedSet),
}

impl ValueRef<'_> {
    /// Clones the borrowed view into an owned [`AttrValue`].
    pub fn to_owned(self) -> AttrValue {
        match self {
            ValueRef::Single(e) => AttrValue::Single(e),
            ValueRef::Multi(s) => AttrValue::Multi(s.clone()),
        }
    }
}

/// The process-wide empty set borrowed when a multivalued read finds no
/// stored value.
pub fn empty_set() -> &'static OrderedSet {
    static EMPTY: OnceLock<OrderedSet> = OnceLock::new();
    EMPTY.get_or_init(OrderedSet::new)
}

/// Occupancy snapshot of one column, surfaced through EXPLAIN.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ColumnStats {
    /// Allocated dense slots (0 = the column is in sparse state).
    pub dense_slots: usize,
    /// Dense slots holding a non-default value.
    pub dense_len: usize,
    /// Entries in the overflow map.
    pub overflow_len: usize,
}

/// Hybrid columnar storage for one attribute's values. See the module
/// docs for the layout and the canonical-content invariant.
#[derive(Debug, Clone, Default)]
pub struct AttrColumn {
    /// Dense singlevalued column indexed by raw entity id;
    /// [`EntityId::NULL`] marks an unassigned slot. Empty in sparse state.
    dense: Vec<EntityId>,
    /// Non-NULL entries in `dense`.
    dense_len: usize,
    /// Multivalued values, sparse singles, and ids past the dense
    /// frontier. Never holds an id `< dense.len()` while a dense slot
    /// exists for it.
    overflow: HashMap<EntityId, AttrValue>,
    /// Overflow entries that are `Single` (promotion requires all of
    /// them: multivalued values never move into the dense column).
    overflow_singles: usize,
    /// Next overflow population at which promotion is re-attempted
    /// (doubling schedule keeps the attempt scan amortised O(1)).
    promote_at: usize,
}

fn is_default(v: &AttrValue) -> bool {
    match v {
        AttrValue::Single(e) => e.is_null(),
        AttrValue::Multi(s) => s.is_empty(),
    }
}

impl AttrColumn {
    /// Minimum population before a dense column is considered.
    pub const DENSE_MIN: usize = 64;
    /// Promote when `population * DENSE_FACTOR >= span` (≥ 25% occupancy).
    pub const DENSE_FACTOR: usize = 4;
    /// Demote when `population * SPARSE_FACTOR < span` (< 6.25% occupancy).
    pub const SPARSE_FACTOR: usize = 16;

    /// An empty (sparse) column.
    pub fn new() -> AttrColumn {
        AttrColumn {
            promote_at: Self::DENSE_MIN,
            ..AttrColumn::default()
        }
    }

    /// Entities with a stored (non-default) value.
    pub fn len(&self) -> usize {
        self.dense_len + self.overflow.len()
    }

    /// `true` when no entity has a non-default value.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` when the column currently uses the dense layout.
    pub fn is_dense(&self) -> bool {
        !self.dense.is_empty()
    }

    /// Occupancy counters for EXPLAIN.
    pub fn stats(&self) -> ColumnStats {
        ColumnStats {
            dense_slots: self.dense.len(),
            dense_len: self.dense_len,
            overflow_len: self.overflow.len(),
        }
    }

    /// The stored value for `entity`, borrowed. `None` means the default
    /// (NULL / empty set — never stored; see the module docs).
    #[inline]
    pub fn get(&self, entity: EntityId) -> Option<ValueRef<'_>> {
        let i = entity.index();
        if i < self.dense.len() {
            let v = self.dense[i];
            return if v.is_null() {
                None
            } else {
                Some(ValueRef::Single(v))
            };
        }
        match self.overflow.get(&entity) {
            Some(AttrValue::Single(e)) => Some(ValueRef::Single(*e)),
            Some(AttrValue::Multi(s)) => Some(ValueRef::Multi(s)),
            None => None,
        }
    }

    /// Fast path for batched evaluation over a singlevalued column: the
    /// stored entity, or [`EntityId::NULL`] for the default. A (corrupt)
    /// multivalued entry reads as NULL here — batch consumers go through
    /// [`AttrColumn::get`], which distinguishes the cases.
    #[inline]
    pub fn single_raw(&self, entity: EntityId) -> EntityId {
        let i = entity.index();
        if i < self.dense.len() {
            return self.dense[i];
        }
        match self.overflow.get(&entity) {
            Some(AttrValue::Single(e)) => *e,
            _ => EntityId::NULL,
        }
    }

    /// Stores `value` for `entity`, canonicalising defaults to removal.
    pub fn set(&mut self, entity: EntityId, value: AttrValue) {
        if is_default(&value) {
            self.remove(entity);
            return;
        }
        let i = entity.index();
        match value {
            AttrValue::Single(v) => {
                if i < self.dense.len() {
                    if self.dense[i].is_null() {
                        self.dense_len += 1;
                    }
                    self.dense[i] = v;
                    return;
                }
                if self.is_dense()
                    && (self.dense_len + self.overflow.len() + 1) * Self::DENSE_FACTOR > i
                {
                    // The new id extends the dense frontier without
                    // dropping occupancy below the promotion bar: grow.
                    self.dense.resize(i + 1, EntityId::NULL);
                    self.dense[i] = v;
                    self.dense_len += 1;
                    self.reclaim_overflow();
                    return;
                }
                if let Some(old) = self.overflow.insert(entity, AttrValue::Single(v)) {
                    if let AttrValue::Multi(_) = old {
                        self.overflow_singles += 1;
                    }
                } else {
                    self.overflow_singles += 1;
                }
                self.maybe_promote();
            }
            AttrValue::Multi(s) => {
                if i < self.dense.len() && !self.dense[i].is_null() {
                    self.dense[i] = EntityId::NULL;
                    self.dense_len -= 1;
                }
                if let Some(AttrValue::Single(_)) =
                    self.overflow.insert(entity, AttrValue::Multi(s))
                {
                    self.overflow_singles -= 1;
                }
            }
        }
    }

    /// Removes the stored value for `entity`, returning it (owned).
    /// `None` if the entity already held the default.
    pub fn remove(&mut self, entity: EntityId) -> Option<AttrValue> {
        let i = entity.index();
        if i < self.dense.len() {
            let v = self.dense[i];
            if v.is_null() {
                return None;
            }
            self.dense[i] = EntityId::NULL;
            self.dense_len -= 1;
            self.maybe_demote();
            return Some(AttrValue::Single(v));
        }
        let old = self.overflow.remove(&entity)?;
        if let AttrValue::Single(_) = old {
            self.overflow_singles -= 1;
        }
        Some(old)
    }

    /// In-place access to a multivalued entry, inserting an empty set if
    /// absent. The caller must leave the set non-empty (the canonical
    /// invariant) — `add_value` always inserts. Panics if the entity holds
    /// a singlevalued assignment, mirroring the multiplicity guard in the
    /// mutation layer.
    pub fn multi_entry(&mut self, entity: EntityId) -> &mut OrderedSet {
        let i = entity.index();
        if i < self.dense.len() && !self.dense[i].is_null() {
            unreachable!("multi_entry on a dense singlevalued slot");
        }
        match self
            .overflow
            .entry(entity)
            .or_insert_with(|| AttrValue::Multi(OrderedSet::new()))
        {
            AttrValue::Multi(s) => s,
            AttrValue::Single(_) => unreachable!("multiplicity checked above"),
        }
    }

    /// Drops every stored value and returns the column to sparse state.
    pub fn clear(&mut self) {
        self.dense.clear();
        self.dense_len = 0;
        self.overflow.clear();
        self.overflow_singles = 0;
        self.promote_at = Self::DENSE_MIN;
    }

    /// Iterates the stored `(entity, value)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (EntityId, ValueRef<'_>)> {
        let dense = self
            .dense
            .iter()
            .enumerate()
            .filter(|(_, v)| !v.is_null())
            .map(|(i, v)| (EntityId::from_raw(i as u32), ValueRef::Single(*v)));
        let overflow = self.overflow.iter().map(|(e, v)| {
            (
                *e,
                match v {
                    AttrValue::Single(x) => ValueRef::Single(*x),
                    AttrValue::Multi(s) => ValueRef::Multi(s),
                },
            )
        });
        dense.chain(overflow)
    }

    /// The stored pairs sorted by entity id — the deterministic order the
    /// snapshot codec writes.
    pub fn entries_sorted(&self) -> Vec<(EntityId, ValueRef<'_>)> {
        let mut out: Vec<(EntityId, ValueRef<'_>)> = self.iter().collect();
        out.sort_by_key(|(e, _)| *e);
        out
    }

    /// Attempts dense promotion once the overflow population reaches the
    /// doubling schedule: all-single overflow with occupancy ≥ span /
    /// [`Self::DENSE_FACTOR`] rebuilds as a dense column in O(population).
    fn maybe_promote(&mut self) {
        if self.is_dense() || self.overflow.len() < self.promote_at {
            return;
        }
        self.promote_at = self.overflow.len() * 2;
        if self.overflow_singles != self.overflow.len() {
            return; // multivalued entries pin the column sparse
        }
        let span = self
            .overflow
            .keys()
            .map(|e| e.index() + 1)
            .max()
            .unwrap_or(0);
        if self.overflow.len() * Self::DENSE_FACTOR < span {
            return;
        }
        let mut dense = vec![EntityId::NULL; span];
        for (e, v) in self.overflow.drain() {
            match v {
                AttrValue::Single(x) => dense[e.index()] = x,
                AttrValue::Multi(_) => unreachable!("overflow_singles covered all entries"),
            }
        }
        self.dense_len = self.overflow_singles;
        self.overflow_singles = 0;
        self.dense = dense;
        self.promote_at = Self::DENSE_MIN;
    }

    /// After the dense frontier grows, pull overflow singles that now fall
    /// inside it back into the column (preserving the "overflow never
    /// shadows a dense slot" invariant).
    fn reclaim_overflow(&mut self) {
        if self.overflow.is_empty() {
            return;
        }
        let frontier = self.dense.len();
        let inside: Vec<EntityId> = self
            .overflow
            .keys()
            .filter(|e| e.index() < frontier)
            .copied()
            .collect();
        for e in inside {
            match self.overflow.remove(&e) {
                Some(AttrValue::Single(v)) => {
                    self.overflow_singles -= 1;
                    if self.dense[e.index()].is_null() {
                        self.dense_len += 1;
                    }
                    self.dense[e.index()] = v;
                }
                Some(AttrValue::Multi(s)) => {
                    // Multivalued entries stay in overflow; restore.
                    self.overflow.insert(e, AttrValue::Multi(s));
                }
                None => {}
            }
        }
    }

    /// Compacts a dense column back to sparse once deletions drop
    /// occupancy below span / [`Self::SPARSE_FACTOR`].
    fn maybe_demote(&mut self) {
        if self.dense.len() < Self::DENSE_MIN * Self::DENSE_FACTOR
            || self.dense_len * Self::SPARSE_FACTOR >= self.dense.len()
        {
            return;
        }
        for (i, v) in std::mem::take(&mut self.dense).into_iter().enumerate() {
            if !v.is_null() {
                self.overflow
                    .insert(EntityId::from_raw(i as u32), AttrValue::Single(v));
                self.overflow_singles += 1;
            }
        }
        self.dense_len = 0;
        self.promote_at = (self.overflow.len() * 2).max(Self::DENSE_MIN);
    }
}

/// Logical equality: same stored pairs, layout-independent (a promoted
/// and a sparse column holding the same content compare equal — the
/// snapshot round-trip depends on this).
impl PartialEq for AttrColumn {
    fn eq(&self, other: &AttrColumn) -> bool {
        if self.len() != other.len() {
            return false;
        }
        self.iter().all(|(e, v)| other.get(e) == Some(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(raw: u32) -> EntityId {
        EntityId::from_raw(raw)
    }

    #[test]
    fn defaults_are_never_stored() {
        let mut c = AttrColumn::new();
        c.set(e(3), AttrValue::Single(EntityId::NULL));
        c.set(e(4), AttrValue::Multi(OrderedSet::new()));
        assert!(c.is_empty());
        c.set(e(3), AttrValue::Single(e(9)));
        assert_eq!(c.len(), 1);
        c.set(e(3), AttrValue::Single(EntityId::NULL));
        assert!(c.is_empty());
        assert_eq!(c.get(e(3)), None);
    }

    #[test]
    fn promotion_and_demotion_round_trip_content() {
        let mut c = AttrColumn::new();
        // Densely populated singles: must promote.
        for i in 0..512u32 {
            c.set(e(i + 1), AttrValue::Single(e(10_000 + i)));
        }
        assert!(c.is_dense(), "512 contiguous singles must go dense");
        assert_eq!(c.len(), 512);
        for i in 0..512u32 {
            assert_eq!(c.get(e(i + 1)), Some(ValueRef::Single(e(10_000 + i))));
        }
        // Delete almost everything: must demote back to sparse.
        for i in 0..500u32 {
            assert!(c.remove(e(i + 1)).is_some());
        }
        assert!(!c.is_dense(), "occupancy collapsed; column must compact");
        assert_eq!(c.len(), 12);
        for i in 500..512u32 {
            assert_eq!(c.get(e(i + 1)), Some(ValueRef::Single(e(10_000 + i))));
        }
    }

    #[test]
    fn sparse_ids_stay_in_overflow() {
        let mut c = AttrColumn::new();
        for i in 0..256u32 {
            c.set(e(i * 1000 + 7), AttrValue::Single(e(1)));
        }
        assert!(!c.is_dense(), "0.1% occupancy must not allocate a column");
        assert_eq!(c.len(), 256);
    }

    #[test]
    fn multivalued_entries_pin_the_column_sparse() {
        let mut c = AttrColumn::new();
        c.set(e(1), AttrValue::Multi([e(5)].into_iter().collect()));
        for i in 2..300u32 {
            c.set(e(i), AttrValue::Single(e(9)));
        }
        assert!(!c.is_dense());
        assert_eq!(
            c.get(e(1)),
            Some(ValueRef::Multi(&[e(5)].into_iter().collect()))
        );
    }

    #[test]
    fn logical_equality_ignores_layout() {
        let mut dense = AttrColumn::new();
        let mut sparse = AttrColumn::new();
        for i in 0..200u32 {
            dense.set(e(i + 1), AttrValue::Single(e(50_000 + i)));
        }
        // Same content inserted far apart first, keeping it sparse longer.
        for i in (0..200u32).rev() {
            sparse.set(e(i + 1), AttrValue::Single(e(50_000 + i)));
        }
        assert_eq!(dense, sparse);
        sparse.set(e(1), AttrValue::Single(e(42)));
        assert_ne!(dense, sparse);
    }

    #[test]
    fn multi_entry_inserts_and_borrows() {
        let mut c = AttrColumn::new();
        c.multi_entry(e(2)).insert(e(7));
        c.multi_entry(e(2)).insert(e(8));
        match c.get(e(2)) {
            Some(ValueRef::Multi(s)) => assert_eq!(s.len(), 2),
            other => panic!("expected multi, got {other:?}"),
        }
    }

    #[test]
    fn single_raw_reads_both_layouts() {
        let mut c = AttrColumn::new();
        c.set(e(3), AttrValue::Single(e(11)));
        assert_eq!(c.single_raw(e(3)), e(11));
        assert_eq!(c.single_raw(e(4)), EntityId::NULL);
        for i in 0..200u32 {
            c.set(e(i + 1), AttrValue::Single(e(11)));
        }
        assert!(c.is_dense());
        assert_eq!(c.single_raw(e(3)), e(11));
        assert_eq!(c.single_raw(e(4)), e(11));
        assert_eq!(c.single_raw(e(10_000)), EntityId::NULL);
    }

    #[test]
    fn entries_sorted_is_deterministic() {
        let mut c = AttrColumn::new();
        c.set(e(9), AttrValue::Single(e(1)));
        c.set(e(2), AttrValue::Multi([e(3)].into_iter().collect()));
        c.set(e(5), AttrValue::Single(e(4)));
        let order: Vec<u32> = c.entries_sorted().iter().map(|(e, _)| e.raw()).collect();
        assert_eq!(order, vec![2, 5, 9]);
    }
}
