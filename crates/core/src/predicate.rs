//! Predicates in disjunctive or conjunctive normal form (§2, §3.2).
//!
//! "Predicates P(e) and P_x(e) … can be constructed from atoms using the
//! boolean connectives *and*, *or*." In the worksheet, atoms are "edited and
//! placed in clauses … in disjunctive or conjunctive normal form", and the
//! *switch and/or* button flips between the two readings of the same clause
//! layout (§4.2, Figure 9).

use std::fmt;

use crate::atom::Atom;

/// Which normal form the clause layout is read in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum NormalForm {
    /// Disjunctive normal form: OR of clauses, each clause an AND of atoms.
    #[default]
    Dnf,
    /// Conjunctive normal form: AND of clauses, each clause an OR of atoms.
    Cnf,
}

impl NormalForm {
    /// The other form (the *switch and/or* button).
    pub fn switched(self) -> NormalForm {
        match self {
            NormalForm::Dnf => NormalForm::Cnf,
            NormalForm::Cnf => NormalForm::Dnf,
        }
    }
}

impl fmt::Display for NormalForm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NormalForm::Dnf => f.write_str("DNF"),
            NormalForm::Cnf => f.write_str("CNF"),
        }
    }
}

/// One clause window of the worksheet: a list of atoms.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Clause {
    /// The atoms placed in this clause.
    pub atoms: Vec<Atom>,
}

impl Clause {
    /// A clause over the given atoms.
    pub fn new(atoms: Vec<Atom>) -> Clause {
        Clause { atoms }
    }

    /// An empty clause.
    ///
    /// Note the usual convention: under DNF an empty clause (empty AND) is
    /// *true*; under CNF an empty clause (empty OR) is *false*. The
    /// evaluator implements exactly this.
    pub fn empty() -> Clause {
        Clause { atoms: Vec::new() }
    }

    /// `true` if the clause has no atoms.
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }
}

/// A predicate: clauses read in DNF or CNF.
#[derive(Debug, Clone, PartialEq)]
pub struct Predicate {
    /// How the clause layout is read.
    pub form: NormalForm,
    /// The clause windows, in display order.
    pub clauses: Vec<Clause>,
}

impl Predicate {
    /// A DNF predicate.
    pub fn dnf(clauses: Vec<Clause>) -> Predicate {
        Predicate {
            form: NormalForm::Dnf,
            clauses,
        }
    }

    /// A CNF predicate.
    pub fn cnf(clauses: Vec<Clause>) -> Predicate {
        Predicate {
            form: NormalForm::Cnf,
            clauses,
        }
    }

    /// The predicate that is always true: an empty DNF with one empty
    /// clause. (An empty clause list would be the empty OR, i.e. false.)
    pub fn always_true() -> Predicate {
        Predicate::dnf(vec![Clause::empty()])
    }

    /// The predicate that is always false: the empty DNF.
    pub fn always_false() -> Predicate {
        Predicate::dnf(Vec::new())
    }

    /// Flips the reading between DNF and CNF without touching the clauses
    /// (the worksheet's *switch and/or* button).
    pub fn switch_and_or(&mut self) {
        self.form = self.form.switched();
    }

    /// Iterates all atoms across all clauses.
    pub fn atoms(&self) -> impl Iterator<Item = &Atom> {
        self.clauses.iter().flat_map(|c| c.atoms.iter())
    }

    /// Total number of atoms.
    pub fn atom_count(&self) -> usize {
        self.clauses.iter().map(|c| c.atoms.len()).sum()
    }

    /// `true` if any atom uses form (c) (`<map_C(x)>`), which is only legal
    /// in derived-attribute predicates.
    pub fn references_source(&self) -> bool {
        self.atoms().any(|a| a.references_source())
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (outer, inner) = match self.form {
            NormalForm::Dnf => (" OR ", " AND "),
            NormalForm::Cnf => (" AND ", " OR "),
        };
        if self.clauses.is_empty() {
            return match self.form {
                NormalForm::Dnf => f.write_str("FALSE"),
                NormalForm::Cnf => f.write_str("TRUE"),
            };
        }
        for (i, clause) in self.clauses.iter().enumerate() {
            if i > 0 {
                f.write_str(outer)?;
            }
            f.write_str("(")?;
            if clause.atoms.is_empty() {
                match self.form {
                    NormalForm::Dnf => f.write_str("TRUE")?,
                    NormalForm::Cnf => f.write_str("FALSE")?,
                }
            }
            for (j, atom) in clause.atoms.iter().enumerate() {
                if j > 0 {
                    f.write_str(inner)?;
                }
                write!(f, "{atom}")?;
            }
            f.write_str(")")?;
        }
        Ok(())
    }
}

/// How a derived attribute's values are specified (§2, §4.2).
#[derive(Debug, Clone, PartialEq)]
pub enum AttrDerivation {
    /// The unary *hand* operator: `A(x) = map(x)`, a shorthand "for
    /// assigning some map to be the derivation of an attribute".
    Assign(crate::map::Map),
    /// The general form: `A(x) = { e ∈ V | P_x(e) }`.
    Predicate(Predicate),
}

impl fmt::Display for AttrDerivation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrDerivation::Assign(m) => write!(f, "☛ {m}(x)"),
            AttrDerivation::Predicate(p) => write!(f, "{p}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::Rhs;
    use crate::ids::{AttrId, ClassId, EntityId};
    use crate::map::Map;
    use crate::op::CompareOp;

    fn atom() -> Atom {
        Atom::new(
            Map::single(AttrId::from_raw(1)),
            CompareOp::SetEq,
            Rhs::constant(ClassId::from_raw(1), [EntityId::from_raw(2)]),
        )
    }

    #[test]
    fn switch_flips_form_only() {
        let mut p = Predicate::dnf(vec![Clause::new(vec![atom()])]);
        let clauses = p.clauses.clone();
        p.switch_and_or();
        assert_eq!(p.form, NormalForm::Cnf);
        assert_eq!(p.clauses, clauses);
        p.switch_and_or();
        assert_eq!(p.form, NormalForm::Dnf);
    }

    #[test]
    fn truth_constants_display() {
        assert_eq!(Predicate::always_false().to_string(), "FALSE");
        assert_eq!(Predicate::always_true().to_string(), "(TRUE)");
        assert_eq!(Predicate::cnf(vec![]).to_string(), "TRUE");
    }

    #[test]
    fn display_uses_connectives() {
        let p = Predicate::dnf(vec![
            Clause::new(vec![atom(), atom()]),
            Clause::new(vec![atom()]),
        ]);
        let s = p.to_string();
        assert!(s.contains(" AND "));
        assert!(s.contains(" OR "));
        let mut q = p.clone();
        q.switch_and_or();
        // CNF reading swaps the connectives.
        let s2 = q.to_string();
        assert!(s2.starts_with("("));
        assert_ne!(s, s2);
    }

    #[test]
    fn atom_count() {
        let p = Predicate::cnf(vec![
            Clause::new(vec![atom()]),
            Clause::new(vec![atom(), atom()]),
        ]);
        assert_eq!(p.atom_count(), 3);
        assert_eq!(p.atoms().count(), 3);
        assert!(!p.references_source());
    }

    #[test]
    fn source_reference_detection() {
        let src = Atom::new(
            Map::identity(),
            CompareOp::Match,
            Rhs::SourceMap(Map::single(AttrId::from_raw(9))),
        );
        let p = Predicate::dnf(vec![Clause::new(vec![atom(), src])]);
        assert!(p.references_source());
    }
}
