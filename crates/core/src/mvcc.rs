//! In-process snapshot isolation over the delta log.
//!
//! The paper's ISIS is a multi-user system; this module is the concurrency
//! story for the reproduction. A [`SharedDatabase`] is an `Arc`-backed
//! handle that any number of sessions open concurrently:
//!
//! * **Readers pin.** [`SharedDatabase::pin`] clones the head under the
//!   lock. The clone carries the delta log, so the pinned epoch
//!   ([`Database::delta_epoch`] of the clone) addresses the shared history:
//!   a reader at epoch `E` never observes state newer than `E` until it
//!   explicitly re-pins.
//! * **Writers buffer.** A writer mutates its pinned clone locally — every
//!   mutation lands in the clone's own delta log — and publishes with
//!   [`SharedDatabase::commit`], which extracts the write set as
//!   `local.changes_since(base_epoch)` and conflict-checks it against
//!   whatever committed to the shared head after `base_epoch`.
//! * **First committer wins.** If a concurrent commit touched an
//!   overlapping key — the same `(entity, attr)` value, the same
//!   `(entity, class)` membership, or an entity the other side deleted —
//!   the later commit fails with a typed [`CommitConflict`] and the writer
//!   re-pins, replays its intent, and retries. Schema edits are coarse:
//!   any schema change conflicts with any concurrent commit.
//! * **Non-conflicting commits rebase.** A write set that does not overlap
//!   is replayed onto the current head through the ordinary mutators
//!   (entity ids allocated after the base epoch are remapped), so
//!   independent writers make progress without retry loops.
//!
//! Derived-state maintenance (derived-class extents, derived attribute
//! values) is *excluded* from both the conflict check and the replay: the
//! paper keeps derived subclasses stale between commits (§2), every
//! session recomputes them against its own snapshot, and two sessions
//! settling the same predicate must not be made to conflict by it.
//!
//! Durability hangs off the commit path: a [`CommitHook`] installed by the
//! storage layer observes `(head-after-commit, applied changes)` *before*
//! the head is published. If the hook fails, the commit is rejected and
//! the in-memory head is untouched — a crash between commit and WAL fsync
//! can lose the commit, but can never admit a phantom one.
//!
//! The shared delta log's capacity bounds writer staleness: a commit whose
//! base epoch has slid out of the retained window fails with
//! [`CommitConflict::SnapshotTooOld`] and must re-pin.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

use crate::attribute::AttrValue;
use crate::change::{Change, ChangeSet};
use crate::error::CoreError;
use crate::ids::{AttrId, ClassId, EntityId};
use crate::Database;

/// Why a commit was refused. First committer wins: exactly one of two
/// conflicting writers receives one of these; the other's receipt stands.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CommitConflict {
    /// Both sides assigned the same attribute of the same entity.
    Value {
        /// The entity whose value both sides wrote.
        entity: EntityId,
        /// The attribute both sides assigned.
        attr: AttrId,
    },
    /// Both sides changed the same entity's membership in the same class.
    Membership {
        /// The entity whose membership both sides changed.
        entity: EntityId,
        /// The class both sides changed it in.
        class: ClassId,
    },
    /// One side deleted an entity the other side touched.
    Delete {
        /// The deleted entity.
        entity: EntityId,
    },
    /// A schema edit collided with a concurrent commit. Schema edits are
    /// rare and invalidate predicates and indexes wholesale, so any schema
    /// change on either side of a concurrent pair conflicts.
    Schema,
    /// The writer's base epoch has been evicted from the shared delta
    /// window (or belongs to another database line); re-pin and retry.
    SnapshotTooOld {
        /// The epoch the writer pinned.
        base: u64,
        /// The oldest epoch the relevant log still addresses.
        oldest: u64,
    },
    /// Replaying the (non-overlapping) write set onto the current head
    /// failed — e.g. a name both sides inserted, or a value referencing an
    /// entity that no longer qualifies. Semantically a conflict.
    Rebase(CoreError),
    /// The durability hook refused the commit; nothing was installed.
    Durability(String),
}

impl fmt::Display for CommitConflict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommitConflict::Value { entity, attr } => write!(
                f,
                "commit conflict: concurrent assignment of attr {attr:?} on entity {entity:?}"
            ),
            CommitConflict::Membership { entity, class } => write!(
                f,
                "commit conflict: concurrent membership change of entity {entity:?} in class {class:?}"
            ),
            CommitConflict::Delete { entity } => write!(
                f,
                "commit conflict: entity {entity:?} was deleted concurrently"
            ),
            CommitConflict::Schema => {
                write!(f, "commit conflict: schema edit raced a concurrent commit")
            }
            CommitConflict::SnapshotTooOld { base, oldest } => write!(
                f,
                "commit conflict: snapshot at epoch {base} is older than the \
                 retained window (oldest {oldest}); re-pin and retry"
            ),
            CommitConflict::Rebase(e) => write!(f, "commit conflict: replay failed: {e}"),
            CommitConflict::Durability(m) => write!(f, "commit rejected by durability hook: {m}"),
        }
    }
}

impl std::error::Error for CommitConflict {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CommitConflict::Rebase(e) => Some(e),
            _ => None,
        }
    }
}

impl CommitConflict {
    /// `true` if re-pinning at the current head and replaying the intent
    /// may succeed — every first-committer-wins outcome qualifies, because
    /// the conflicting state is visible after a re-pin. A
    /// [`Durability`](CommitConflict::Durability) refusal is *not*
    /// retryable: the storage layer vetoed the commit and retrying cannot
    /// help until the store is healthy again.
    pub fn is_retryable(&self) -> bool {
        match self {
            CommitConflict::Value { .. }
            | CommitConflict::Membership { .. }
            | CommitConflict::Delete { .. }
            | CommitConflict::Schema
            | CommitConflict::SnapshotTooOld { .. }
            | CommitConflict::Rebase(_) => true,
            CommitConflict::Durability(_) => false,
            #[allow(unreachable_patterns)]
            _ => false,
        }
    }

    /// Stable classification label for telemetry: the conflict-key family
    /// without the keys themselves. Used as a metric suffix
    /// (`core.mvcc.conflict.<kind>`) and in flight-recorder events, so the
    /// strings are part of the observability contract.
    pub fn kind(&self) -> &'static str {
        match self {
            CommitConflict::Value { .. } => "value",
            CommitConflict::Membership { .. } => "membership",
            CommitConflict::Delete { .. } => "delete",
            CommitConflict::Schema => "schema",
            CommitConflict::SnapshotTooOld { .. } => "snapshot_too_old",
            CommitConflict::Rebase(_) => "rebase",
            CommitConflict::Durability(_) => "durability",
        }
    }
}

/// Bounded exponential backoff with deterministic full jitter, for retry
/// loops over [`CommitConflict`]s (see
/// [`SharedDatabase::transact_with_retry`]).
///
/// The delay before retry `attempt` (0-based) is uniform in
/// `[0, min(cap, base · 2^attempt)]`, drawn from a splitmix64 stream
/// seeded by `seed` — two loops with the same seed sleep identically, so
/// torture schedules stay reproducible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryBackoff {
    /// Retries after the first attempt (0 = try exactly once).
    pub max_retries: u32,
    /// Backoff ceiling for the first retry.
    pub base: Duration,
    /// Hard cap on any single delay.
    pub cap: Duration,
    /// Jitter seed; same seed ⇒ same delays.
    pub seed: u64,
}

impl Default for RetryBackoff {
    fn default() -> RetryBackoff {
        RetryBackoff {
            max_retries: 16,
            base: Duration::from_micros(250),
            cap: Duration::from_millis(20),
            seed: 0x1515_1515,
        }
    }
}

impl RetryBackoff {
    /// A backoff that retries without sleeping (for tests and single-
    /// threaded schedules where real delays only slow the suite down).
    pub fn unslept(max_retries: u32) -> RetryBackoff {
        RetryBackoff {
            max_retries,
            base: Duration::ZERO,
            cap: Duration::ZERO,
            seed: 0,
        }
    }

    /// The deterministic delay before retry `attempt` (0-based).
    pub fn delay(&self, attempt: u32) -> Duration {
        let exp = self.base.saturating_mul(1u32 << attempt.min(20));
        let ceiling = exp.min(self.cap).as_nanos() as u64;
        if ceiling == 0 {
            return Duration::ZERO;
        }
        let mut z = self
            .seed
            .wrapping_add((u64::from(attempt) + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        Duration::from_nanos(z % (ceiling + 1))
    }
}

/// What a successful commit reports back.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct CommitReceipt {
    /// The shared head's epoch after this commit.
    pub epoch: u64,
    /// The commit sequence number (1 for the first commit ever applied).
    pub commits: u64,
    /// `true` if the write set was replayed onto concurrent commits (the
    /// committer's local snapshot is now behind the head and should be
    /// re-pinned); `false` on the fast path where the local snapshot *is*
    /// the new head.
    pub rebased: bool,
    /// Number of changes applied to the head (0 for a no-op commit).
    pub changes: usize,
}

/// Observes every commit before it is published, for durability. The hook
/// runs under the shared lock with `db` being the head-to-be and `applied`
/// the exact changes that advanced it past the previous head. Returning
/// `Err` vetoes the commit: the in-memory head stays untouched and the
/// committer receives [`CommitConflict::Durability`].
///
/// The error type is a plain string so `isis-core` stays independent of
/// the storage crate that implements the hook.
pub trait CommitHook: Send {
    /// Make `applied` durable (or refuse).
    fn on_commit(&mut self, db: &Database, applied: &ChangeSet) -> Result<(), String>;

    /// `true` if an earlier partial failure left the hook permanently
    /// refusing commits (disk and memory may have diverged). A poisoned
    /// hook means the handle should be reopened; sessions can ask via
    /// [`SharedDatabase::hook_poisoned`] before pinning a snapshot that
    /// can never publish. Defaults to `false` for hooks without a poison
    /// state.
    fn poisoned(&self) -> bool {
        false
    }
}

struct SharedInner {
    db: Database,
    commits: u64,
    hook: Option<Box<dyn CommitHook>>,
}

/// A shared, concurrently-committable database: the multi-session handle.
/// Cloning the handle is cheap and refers to the same head.
#[derive(Clone)]
pub struct SharedDatabase {
    inner: Arc<Mutex<SharedInner>>,
}

impl fmt::Debug for SharedDatabase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.lock();
        f.debug_struct("SharedDatabase")
            .field("epoch", &inner.db.delta_epoch())
            .field("commits", &inner.commits)
            .field("hook", &inner.hook.is_some())
            .finish()
    }
}

impl SharedDatabase {
    /// Wraps a database for shared use.
    pub fn new(db: Database) -> SharedDatabase {
        SharedDatabase {
            inner: Arc::new(Mutex::new(SharedInner {
                db,
                commits: 0,
                hook: None,
            })),
        }
    }

    fn lock(&self) -> MutexGuard<'_, SharedInner> {
        // The head is only ever replaced whole (never mutated in place
        // under the lock), so a poisoned lock cannot expose a half-applied
        // commit; recover the guard.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Pins the current head: a full clone, delta log included, whose
    /// [`Database::delta_epoch`] is the pinned epoch. The clone is a stable
    /// snapshot — later commits to the shared head never show through.
    pub fn pin(&self) -> Database {
        self.lock().db.clone()
    }

    /// Runs `f` against the head without cloning (a read "at latest").
    pub fn read<R>(&self, f: impl FnOnce(&Database) -> R) -> R {
        f(&self.lock().db)
    }

    /// The head's current epoch.
    pub fn epoch(&self) -> u64 {
        self.lock().db.delta_epoch()
    }

    /// How many commits have been applied through this handle.
    pub fn commits(&self) -> u64 {
        self.lock().commits
    }

    /// Installs (or clears) the durability hook. The storage layer calls
    /// this once when it opens the shared handle.
    pub fn set_commit_hook(&self, hook: Option<Box<dyn CommitHook>>) {
        self.lock().hook = hook;
    }

    /// `true` if the installed durability hook reports itself poisoned
    /// ([`CommitHook::poisoned`]): every commit through this handle will
    /// be refused until the store is reopened. `false` when no hook is
    /// installed.
    pub fn hook_poisoned(&self) -> bool {
        self.lock().hook.as_ref().is_some_and(|h| h.poisoned())
    }

    /// Replaces the head wholesale — the replication resync primitive.
    ///
    /// Existing pinned clones stay valid as snapshots of the *old* line;
    /// epoch numbering restarts at the new head's delta epoch, so epoch
    /// comparisons across an `install_head` are meaningless. The commit
    /// hook is kept but **not** consulted: durability of the installed
    /// head is the caller's responsibility. Counts as one commit; returns
    /// the new head epoch.
    pub fn install_head(&self, db: Database) -> u64 {
        let mut inner = self.lock();
        inner.db = db;
        inner.commits += 1;
        inner.db.delta_epoch()
    }

    /// Pin–apply–commit with bounded, jittered retries: runs `f` against a
    /// fresh pin of the head and commits the result, re-pinning and
    /// replaying `f` whenever the commit fails with a
    /// [retryable](CommitConflict::is_retryable) conflict, sleeping
    /// [`RetryBackoff::delay`] between attempts.
    ///
    /// An error from `f` itself surfaces as
    /// [`CommitConflict::Rebase`] immediately (the intent does not apply
    /// to the current head) and is not retried. After `max_retries`
    /// exhausted retries the last conflict is returned.
    pub fn transact_with_retry(
        &self,
        backoff: &RetryBackoff,
        mut f: impl FnMut(&mut Database) -> Result<(), CoreError>,
    ) -> Result<CommitReceipt, CommitConflict> {
        let mut attempt = 0u32;
        loop {
            let mut local = self.pin();
            let base = local.delta_epoch();
            f(&mut local).map_err(CommitConflict::Rebase)?;
            match self.commit(base, &local) {
                Ok(receipt) => {
                    let obs = isis_obs::global();
                    if obs.enabled() {
                        obs.observe("core.mvcc.retry_attempts", u64::from(attempt));
                    }
                    return Ok(receipt);
                }
                Err(conflict) if conflict.is_retryable() && attempt < backoff.max_retries => {
                    let delay = backoff.delay(attempt);
                    let obs = isis_obs::global();
                    if obs.enabled() {
                        obs.count("core.mvcc.retries", 1);
                        obs.observe("core.mvcc.backoff_ns", delay.as_nanos() as u64);
                    }
                    std::thread::sleep(delay);
                    attempt += 1;
                }
                Err(conflict) => return Err(conflict),
            }
        }
    }

    /// Publishes everything `local` recorded after `base_epoch` (the epoch
    /// it was pinned at, or the epoch of its last successful commit).
    ///
    /// First committer wins: if a commit already advanced the head past
    /// `base_epoch` with an overlapping write set, this returns a
    /// [`CommitConflict`] and the head is untouched. Non-overlapping
    /// concurrent commits are rebased (replayed onto the head); the
    /// receipt's [`CommitReceipt::rebased`] tells the caller to re-pin.
    pub fn commit(
        &self,
        base_epoch: u64,
        local: &Database,
    ) -> Result<CommitReceipt, CommitConflict> {
        let out = self.commit_inner(base_epoch, local);
        let obs = isis_obs::global();
        if obs.enabled() {
            match &out {
                Ok(receipt) => {
                    obs.count("core.mvcc.commits", 1);
                    if receipt.rebased {
                        obs.count("core.mvcc.rebased_commits", 1);
                    } else {
                        obs.count("core.mvcc.fast_commits", 1);
                    }
                    let (epoch, changes, rebased) =
                        (receipt.epoch, receipt.changes, receipt.rebased);
                    obs.flight_event("core.mvcc.commit", || {
                        isis_obs::Json::obj([
                            ("outcome", isis_obs::Json::from("committed")),
                            ("epoch", isis_obs::Json::from(epoch)),
                            ("changes", isis_obs::Json::from(changes)),
                            ("rebased", isis_obs::Json::from(rebased)),
                        ])
                    });
                }
                Err(conflict) => {
                    let kind = conflict.kind();
                    obs.count("core.mvcc.conflicts", 1);
                    obs.count(&format!("core.mvcc.conflict.{kind}"), 1);
                    obs.flight_event("core.mvcc.commit", || {
                        isis_obs::Json::obj([
                            ("outcome", isis_obs::Json::from("conflict")),
                            ("kind", isis_obs::Json::from(kind)),
                            ("base_epoch", isis_obs::Json::from(base_epoch)),
                        ])
                    });
                }
            }
        }
        out
    }

    fn commit_inner(
        &self,
        base_epoch: u64,
        local: &Database,
    ) -> Result<CommitReceipt, CommitConflict> {
        let write_set =
            local
                .changes_since(base_epoch)
                .ok_or_else(|| CommitConflict::SnapshotTooOld {
                    base: base_epoch,
                    oldest: local.delta_log().base_epoch(),
                })?;
        let mut inner = self.lock();
        let concurrent =
            inner
                .db
                .changes_since(base_epoch)
                .ok_or_else(|| CommitConflict::SnapshotTooOld {
                    base: base_epoch,
                    oldest: inner.db.delta_log().base_epoch(),
                })?;

        if concurrent.is_empty() {
            // Fast path: nobody committed since the pin; the local snapshot
            // becomes the head verbatim.
            if write_set.is_empty() {
                return Ok(CommitReceipt {
                    epoch: inner.db.delta_epoch(),
                    commits: inner.commits,
                    rebased: false,
                    changes: 0,
                });
            }
            if let Some(hook) = inner.hook.as_mut() {
                hook.on_commit(local, &write_set)
                    .map_err(CommitConflict::Durability)?;
            }
            inner.db = local.clone();
            inner.commits += 1;
            return Ok(CommitReceipt {
                epoch: inner.db.delta_epoch(),
                commits: inner.commits,
                rebased: false,
                changes: write_set.len(),
            });
        }

        // Derived-state maintenance never conflicts and is never replayed:
        // each session recomputes it against its own snapshot.
        let w = filter_derived(local, &write_set);
        if w.is_empty() {
            // Pure reader (or only derived-state noise): nothing to
            // publish. The head has moved on, so tell the caller to re-pin.
            return Ok(CommitReceipt {
                epoch: inner.db.delta_epoch(),
                commits: inner.commits,
                rebased: true,
                changes: 0,
            });
        }
        if write_set.has_schema_changes() || concurrent.has_schema_changes() {
            return Err(CommitConflict::Schema);
        }
        let c = filter_derived(&inner.db, &concurrent);
        check_overlap(&w, &c)?;

        // Rebase: replay the write set onto the head through the ordinary
        // mutators, remapping entity ids allocated after the base epoch.
        let mut next = inner.db.clone();
        let mark = next.delta_epoch();
        replay(&mut next, local, &w).map_err(CommitConflict::Rebase)?;
        let applied = next.delta_suffix(mark);
        if applied.is_empty() {
            // Replay degenerated to a no-op (e.g. idempotent memberships
            // already present on the head); nothing to publish.
            return Ok(CommitReceipt {
                epoch: inner.db.delta_epoch(),
                commits: inner.commits,
                rebased: true,
                changes: 0,
            });
        }
        if let Some(hook) = inner.hook.as_mut() {
            hook.on_commit(&next, &applied)
                .map_err(CommitConflict::Durability)?;
        }
        inner.db = next;
        inner.commits += 1;
        Ok(CommitReceipt {
            epoch: inner.db.delta_epoch(),
            commits: inner.commits,
            rebased: true,
            changes: applied.len(),
        })
    }
}

/// Drops derived-class membership changes and derived-attribute value
/// changes; `schema` is the side's own database (it knows any classes or
/// attributes that side created).
fn filter_derived(schema: &Database, cs: &ChangeSet) -> Vec<Change> {
    cs.iter()
        .filter(|ch| match ch {
            Change::MembershipAdded { class, .. } | Change::MembershipRemoved { class, .. } => {
                !schema
                    .class(*class)
                    .map(|c| c.is_derived())
                    .unwrap_or(false)
            }
            Change::AttrAssigned { attr, .. } => {
                !schema.attr(*attr).map(|a| a.is_derived()).unwrap_or(false)
            }
            _ => true,
        })
        .cloned()
        .collect()
}

/// The conflict keys one side's filtered write set exposes. Entities the
/// side itself inserted are excluded: their ids are line-local (both lines
/// allocate from the same next-id, so equal raw ids past the base epoch
/// name *different* entities) and a concurrent commit cannot have touched
/// them.
struct Keys {
    inserted: HashSet<EntityId>,
    assigns: HashSet<(EntityId, AttrId)>,
    members: HashSet<(EntityId, ClassId)>,
    deletes: HashSet<EntityId>,
    touched: HashSet<EntityId>,
}

fn keys(changes: &[Change]) -> Keys {
    let mut k = Keys {
        inserted: HashSet::new(),
        assigns: HashSet::new(),
        members: HashSet::new(),
        deletes: HashSet::new(),
        touched: HashSet::new(),
    };
    for ch in changes {
        match ch {
            Change::EntityInserted { entity, .. } => {
                k.inserted.insert(*entity);
            }
            Change::EntityDeleted { entity, .. } => {
                if !k.inserted.contains(entity) {
                    k.deletes.insert(*entity);
                    k.touched.insert(*entity);
                }
            }
            Change::EntityRenamed { entity, .. } => {
                if !k.inserted.contains(entity) {
                    k.touched.insert(*entity);
                }
            }
            Change::MembershipAdded { entity, class }
            | Change::MembershipRemoved { entity, class } => {
                if !k.inserted.contains(entity) {
                    k.members.insert((*entity, *class));
                    k.touched.insert(*entity);
                }
            }
            Change::AttrAssigned { entity, attr, .. } => {
                if !k.inserted.contains(entity) {
                    k.assigns.insert((*entity, *attr));
                    k.touched.insert(*entity);
                }
            }
            Change::Schema(_) => {}
        }
    }
    k
}

fn check_overlap(w: &[Change], c: &[Change]) -> Result<(), CommitConflict> {
    let kw = keys(w);
    let kc = keys(c);
    if let Some(&(entity, attr)) = kw.assigns.intersection(&kc.assigns).next() {
        return Err(CommitConflict::Value { entity, attr });
    }
    if let Some(&(entity, class)) = kw.members.intersection(&kc.members).next() {
        return Err(CommitConflict::Membership { entity, class });
    }
    if let Some(&entity) = kw
        .deletes
        .intersection(&kc.touched)
        .chain(kc.deletes.intersection(&kw.touched))
        .next()
    {
        return Err(CommitConflict::Delete { entity });
    }
    Ok(())
}

/// Replays `w` (the filtered write set recorded by `local`) onto `next`
/// through the public mutators. Entity ids minted by `local` after the
/// base epoch are remapped to the ids `next` allocates for them.
fn replay(next: &mut Database, local: &Database, w: &[Change]) -> Result<(), CoreError> {
    // Entities inserted and deleted within the same write set never reach
    // the head at all; entities deleted by the write set are handled by
    // the single delete_entity call (which re-derives the removals and
    // scrubs on the head), so their preceding per-extent entries are
    // skipped.
    let mut inserted: HashSet<EntityId> = HashSet::new();
    let mut deleted: HashSet<EntityId> = HashSet::new();
    for ch in w {
        match ch {
            Change::EntityInserted { entity, .. } => {
                inserted.insert(*entity);
            }
            Change::EntityDeleted { entity, .. } => {
                deleted.insert(*entity);
            }
            _ => {}
        }
    }
    let mut remap: HashMap<EntityId, EntityId> = HashMap::new();
    let map =
        |remap: &HashMap<EntityId, EntityId>, e: EntityId| remap.get(&e).copied().unwrap_or(e);
    for ch in w {
        match ch {
            Change::EntityInserted { entity, base, name } => {
                let rec = local.entities.get(entity.index());
                if let Some(lit) = rec.and_then(|r| r.literal.clone()) {
                    // Literal intern: idempotent on the head, possibly a
                    // different id.
                    let id = next.intern(lit)?;
                    remap.insert(*entity, id);
                } else {
                    if deleted.contains(entity) {
                        // Inserted and deleted in the same commit: never
                        // materialises on the head.
                        continue;
                    }
                    let id = next.insert_entity(*base, name)?;
                    remap.insert(*entity, id);
                }
            }
            Change::EntityDeleted { entity, .. } => {
                if inserted.contains(entity) {
                    continue;
                }
                next.delete_entity(*entity)?;
            }
            Change::EntityRenamed { entity, name } => {
                if deleted.contains(entity) {
                    continue;
                }
                next.rename_entity(map(&remap, *entity), name)?;
            }
            Change::MembershipAdded { entity, class } => {
                if deleted.contains(entity) {
                    continue;
                }
                // Idempotent; cascades to ancestors like the original call.
                next.add_to_class(map(&remap, *entity), *class)?;
            }
            Change::MembershipRemoved { entity, class } => {
                if deleted.contains(entity) {
                    continue;
                }
                next.remove_from_class(map(&remap, *entity), *class)?;
            }
            Change::AttrAssigned {
                entity, attr, new, ..
            } => {
                if deleted.contains(entity) {
                    continue;
                }
                let e = map(&remap, *entity);
                match new {
                    AttrValue::Single(v) if v.is_null() => {
                        next.unassign(e, *attr)?;
                    }
                    AttrValue::Single(v) => {
                        // Naming-attribute assignments redirect to rename
                        // inside assign_single; the EntityRenamed entry
                        // that follows then no-ops.
                        next.assign_single(e, *attr, map(&remap, *v))?;
                    }
                    AttrValue::Multi(s) => {
                        let vals: Vec<EntityId> = s.iter().map(|v| map(&remap, v)).collect();
                        next.assign_multi(e, *attr, vals)?;
                    }
                }
            }
            Change::Schema(_) => {
                // Schema edits conflict before replay is attempted.
                debug_assert!(false, "schema edit reached replay");
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeded() -> (Database, ClassId, AttrId) {
        let mut db = Database::new("mvcc-test");
        let people = db.create_baseclass("PEOPLE").unwrap();
        let ints = db.predefined(crate::literal::BaseKind::Integers);
        let age = db
            .create_attribute(people, "age", ints, crate::attribute::Multiplicity::Single)
            .unwrap();
        db.insert_entity(people, "ann").unwrap();
        db.insert_entity(people, "bob").unwrap();
        (db, people, age)
    }

    #[test]
    fn pinned_reader_is_stable_and_fast_path_commits() {
        let (db, people, _) = seeded();
        let shared = SharedDatabase::new(db);
        let reader = shared.pin();
        let before = reader.class(people).unwrap().members.len();

        let mut writer = shared.pin();
        let base = writer.delta_epoch();
        writer.insert_entity(people, "carol").unwrap();
        let receipt = shared.commit(base, &writer).unwrap();
        assert!(!receipt.rebased);
        assert_eq!(shared.commits(), 1);

        // The pinned reader still sees the old extent; the head sees carol.
        assert_eq!(reader.class(people).unwrap().members.len(), before);
        assert_eq!(
            shared.read(|db| db.class(people).unwrap().members.len()),
            before + 1
        );
    }

    #[test]
    fn conflicting_commits_one_wins() {
        let (db, people, age) = seeded();
        let ann = db.entity_by_name(people, "ann").unwrap();
        let shared = SharedDatabase::new(db);

        let mut w1 = shared.pin();
        let b1 = w1.delta_epoch();
        let mut w2 = shared.pin();
        let b2 = w2.delta_epoch();

        let v1 = w1.int(30);
        w1.assign_single(ann, age, v1).unwrap();
        let v2 = w2.int(40);
        w2.assign_single(ann, age, v2).unwrap();

        shared.commit(b1, &w1).unwrap();
        let err = shared.commit(b2, &w2).unwrap_err();
        assert_eq!(
            err,
            CommitConflict::Value {
                entity: ann,
                attr: age
            }
        );
        // The first committer's value stands.
        let thirty = shared.read(|db| {
            let v = db.attr_value(ann, age).unwrap();
            match v {
                AttrValue::Single(e) => db.literal_of(e).cloned(),
                _ => None,
            }
        });
        assert_eq!(thirty, Some(crate::literal::Literal::Int(30)));
    }

    #[test]
    fn disjoint_commits_rebase_with_id_remap() {
        let (db, people, age) = seeded();
        let shared = SharedDatabase::new(db);

        let mut w1 = shared.pin();
        let b1 = w1.delta_epoch();
        let mut w2 = shared.pin();
        let b2 = w2.delta_epoch();

        // Both insert a new entity: raw ids collide across lines, the
        // rebase must remap.
        let carol = w1.insert_entity(people, "carol").unwrap();
        let v = w1.int(25);
        w1.assign_single(carol, age, v).unwrap();

        let dave = w2.insert_entity(people, "dave").unwrap();
        let v = w2.int(35);
        w2.assign_single(dave, age, v).unwrap();

        shared.commit(b1, &w1).unwrap();
        let receipt = shared.commit(b2, &w2).unwrap();
        assert!(receipt.rebased);
        assert_eq!(shared.commits(), 2);

        shared.read(|db| {
            let carol = db.entity_by_name(people, "carol").unwrap();
            let dave = db.entity_by_name(people, "dave").unwrap();
            assert_ne!(carol, dave);
            let get = |e| match db.attr_value(e, age).unwrap() {
                AttrValue::Single(v) => db.literal_of(v).cloned(),
                _ => None,
            };
            assert_eq!(get(carol), Some(crate::literal::Literal::Int(25)));
            assert_eq!(get(dave), Some(crate::literal::Literal::Int(35)));
            assert!(db.check_consistency().unwrap().is_empty());
        });
    }

    #[test]
    fn delete_vs_touch_conflicts() {
        let (db, people, age) = seeded();
        let ann = db.entity_by_name(people, "ann").unwrap();
        let shared = SharedDatabase::new(db);

        let mut w1 = shared.pin();
        let b1 = w1.delta_epoch();
        let mut w2 = shared.pin();
        let b2 = w2.delta_epoch();

        w1.delete_entity(ann).unwrap();
        let v = w2.int(50);
        w2.assign_single(ann, age, v).unwrap();

        shared.commit(b1, &w1).unwrap();
        assert_eq!(
            shared.commit(b2, &w2).unwrap_err(),
            CommitConflict::Delete { entity: ann }
        );
    }

    #[test]
    fn schema_edit_conflicts_coarsely() {
        let (db, people, _) = seeded();
        let shared = SharedDatabase::new(db);

        let mut w1 = shared.pin();
        let b1 = w1.delta_epoch();
        let mut w2 = shared.pin();
        let b2 = w2.delta_epoch();

        w1.insert_entity(people, "carol").unwrap();
        w2.create_subclass(people, "STAFF").unwrap();

        shared.commit(b1, &w1).unwrap();
        assert_eq!(shared.commit(b2, &w2).unwrap_err(), CommitConflict::Schema);
    }

    #[test]
    fn snapshot_too_old_when_window_slides() {
        let (mut db, people, _) = seeded();
        db.set_delta_capacity(4);
        let shared = SharedDatabase::new(db);

        let mut late = shared.pin();
        let b_late = late.delta_epoch();
        late.insert_entity(people, "zed").unwrap();

        // Other writers flood the shared log past the retained window.
        for i in 0..4 {
            let mut w = shared.pin();
            let b = w.delta_epoch();
            w.insert_entity(people, &format!("p{i}")).unwrap();
            shared.commit(b, &w).unwrap();
        }

        match shared.commit(b_late, &late).unwrap_err() {
            CommitConflict::SnapshotTooOld { base, .. } => assert_eq!(base, b_late),
            other => panic!("expected SnapshotTooOld, got {other:?}"),
        }
    }

    #[test]
    fn durability_hook_vetoes_without_installing() {
        struct Veto;
        impl CommitHook for Veto {
            fn on_commit(&mut self, _: &Database, _: &ChangeSet) -> Result<(), String> {
                Err("disk on fire".into())
            }
        }
        let (db, people, _) = seeded();
        let shared = SharedDatabase::new(db);
        shared.set_commit_hook(Some(Box::new(Veto)));

        let mut w = shared.pin();
        let b = w.delta_epoch();
        w.insert_entity(people, "carol").unwrap();
        match shared.commit(b, &w).unwrap_err() {
            CommitConflict::Durability(m) => assert!(m.contains("disk on fire")),
            other => panic!("expected Durability, got {other:?}"),
        }
        assert_eq!(shared.commits(), 0);
        assert!(shared.read(|db| db.entity_by_name(people, "carol").is_err()));
    }

    #[test]
    fn retryable_classification_and_deterministic_jitter() {
        assert!(CommitConflict::Schema.is_retryable());
        assert!(CommitConflict::SnapshotTooOld { base: 0, oldest: 1 }.is_retryable());
        assert!(!CommitConflict::Durability("x".into()).is_retryable());

        let b = RetryBackoff::default();
        for attempt in 0..8 {
            let d = b.delay(attempt);
            assert!(d <= b.cap, "delay {d:?} above cap at attempt {attempt}");
            assert_eq!(d, b.delay(attempt), "jitter must be deterministic");
        }
        assert_eq!(RetryBackoff::unslept(4).delay(3), Duration::ZERO);
    }

    #[test]
    fn transact_with_retry_converges_under_contention() {
        let (db, people, age) = seeded();
        let shared = SharedDatabase::new(db);
        let backoff = RetryBackoff::unslept(16);

        // Two writers race assignments to the same key; with retries both
        // must eventually land, in some order.
        let alice = shared.read(|db| db.entity_by_name(people, "ann").unwrap());
        for value in [30i64, 31, 32, 33] {
            // Interleave: pin both, commit both — the second conflicts and
            // must win on retry.
            let mut stale = shared.pin();
            let stale_base = stale.delta_epoch();
            let v = stale.intern(value).unwrap();
            stale.assign_single(alice, age, v).unwrap();

            shared
                .transact_with_retry(&backoff, |db| {
                    let v = db.intern(value + 100)?;
                    db.assign_single(alice, age, v)?;
                    Ok(())
                })
                .unwrap();

            // The stale writer conflicts on the same (entity, attr)...
            assert!(shared.commit(stale_base, &stale).is_err());
            // ...but a retry loop re-pins and converges.
            shared
                .transact_with_retry(&backoff, |db| {
                    let v = db.intern(value)?;
                    db.assign_single(alice, age, v)?;
                    Ok(())
                })
                .unwrap();
            let v = shared.read(|db| db.attr_value(alice, age).unwrap());
            let want = shared.read(|db| db.find_literal(value).unwrap());
            assert_eq!(v, AttrValue::Single(want));
        }
    }

    #[test]
    fn install_head_replaces_wholesale_and_keeps_hook() {
        struct Veto;
        impl CommitHook for Veto {
            fn on_commit(&mut self, _: &Database, _: &ChangeSet) -> Result<(), String> {
                Err("read-only".into())
            }
            fn poisoned(&self) -> bool {
                false
            }
        }
        let (db, people, _) = seeded();
        let shared = SharedDatabase::new(db);
        shared.set_commit_hook(Some(Box::new(Veto)));
        assert!(!shared.hook_poisoned());

        let old_pin = shared.pin();
        let mut replacement = Database::new("other");
        replacement.create_baseclass("crew").unwrap();
        shared.install_head(replacement);
        assert_eq!(shared.commits(), 1);
        assert!(shared.read(|db| db.class_by_name("crew").is_ok()));
        // Old pins remain intact snapshots of the previous line.
        assert!(old_pin.entity_by_name(people, "ann").is_ok());
        // The hook survived the swap: commits are still vetoed.
        let mut w = shared.pin();
        let b = w.delta_epoch();
        w.insert_entity(w.class_by_name("crew").unwrap(), "dana")
            .unwrap();
        assert!(matches!(
            shared.commit(b, &w).unwrap_err(),
            CommitConflict::Durability(_)
        ));
    }
}
