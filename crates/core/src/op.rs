//! Predicate operators (§2).
//!
//! "Set comparison operators used are set equality (=), subset and superset
//! operators (⊆, ⊇, ⊂, ⊃), and a weak match operator (~) to determine if two
//! sets have a common element. In addition, ordering operators (≤, >) are
//! available for comparing singleton sets. The negations of all these
//! operators are also available."

use std::fmt;

/// A binary comparison operator between two sets of entities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompareOp {
    /// Set equality `=`.
    SetEq,
    /// Subset `⊆`.
    Subset,
    /// Superset `⊇`.
    Superset,
    /// Proper subset `⊂`.
    ProperSubset,
    /// Proper superset `⊃`.
    ProperSuperset,
    /// Weak match `~`: the sets share at least one element.
    Match,
    /// `<` on singleton sets of comparable entities.
    Lt,
    /// `≤` on singleton sets of comparable entities.
    Le,
    /// `>` on singleton sets of comparable entities.
    Gt,
    /// `≥` on singleton sets of comparable entities.
    Ge,
}

impl CompareOp {
    /// All operators, in menu order (the worksheet operator menu).
    pub const ALL: [CompareOp; 10] = [
        CompareOp::SetEq,
        CompareOp::Subset,
        CompareOp::Superset,
        CompareOp::ProperSubset,
        CompareOp::ProperSuperset,
        CompareOp::Match,
        CompareOp::Lt,
        CompareOp::Le,
        CompareOp::Gt,
        CompareOp::Ge,
    ];

    /// The display symbol of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            CompareOp::SetEq => "=",
            CompareOp::Subset => "⊆",
            CompareOp::Superset => "⊇",
            CompareOp::ProperSubset => "⊂",
            CompareOp::ProperSuperset => "⊃",
            CompareOp::Match => "~",
            CompareOp::Lt => "<",
            CompareOp::Le => "≤",
            CompareOp::Gt => ">",
            CompareOp::Ge => "≥",
        }
    }

    /// A pure-ASCII symbol for the text renderer.
    pub fn ascii_symbol(self) -> &'static str {
        match self {
            CompareOp::SetEq => "=",
            CompareOp::Subset => "<=s",
            CompareOp::Superset => ">=s",
            CompareOp::ProperSubset => "<s",
            CompareOp::ProperSuperset => ">s",
            CompareOp::Match => "~",
            CompareOp::Lt => "<",
            CompareOp::Le => "<=",
            CompareOp::Gt => ">",
            CompareOp::Ge => ">=",
        }
    }

    /// `true` for the ordering operators, which require singleton sets of
    /// mutually comparable entities.
    pub fn is_ordering(self) -> bool {
        matches!(
            self,
            CompareOp::Lt | CompareOp::Le | CompareOp::Gt | CompareOp::Ge
        )
    }
}

impl fmt::Display for CompareOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// An operator together with its optional negation ("the negations of all
/// these operators are also available").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Operator {
    /// The base comparison.
    pub op: CompareOp,
    /// `true` if the atom tests the negation of `op`.
    pub negated: bool,
}

impl Operator {
    /// A non-negated operator.
    pub fn plain(op: CompareOp) -> Self {
        Operator { op, negated: false }
    }

    /// A negated operator.
    pub fn negated(op: CompareOp) -> Self {
        Operator { op, negated: true }
    }

    /// Flips the negation flag (the worksheet's negate toggle).
    pub fn toggle_negation(&mut self) {
        self.negated = !self.negated;
    }

    /// Applies the negation flag to a raw comparison result.
    pub fn finish(self, raw: bool) -> bool {
        raw != self.negated
    }
}

impl fmt::Display for Operator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.negated {
            write!(f, "¬{}", self.op)
        } else {
            write!(f, "{}", self.op)
        }
    }
}

impl From<CompareOp> for Operator {
    fn from(op: CompareOp) -> Self {
        Operator::plain(op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbols_unique() {
        let mut seen = std::collections::HashSet::new();
        for op in CompareOp::ALL {
            assert!(seen.insert(op.symbol()), "duplicate symbol {}", op.symbol());
        }
    }

    #[test]
    fn ascii_symbols_unique() {
        let mut seen = std::collections::HashSet::new();
        for op in CompareOp::ALL {
            assert!(seen.insert(op.ascii_symbol()));
        }
    }

    #[test]
    fn ordering_classification() {
        assert!(CompareOp::Lt.is_ordering());
        assert!(CompareOp::Ge.is_ordering());
        assert!(!CompareOp::SetEq.is_ordering());
        assert!(!CompareOp::Match.is_ordering());
    }

    #[test]
    fn negation_finish() {
        assert!(Operator::plain(CompareOp::SetEq).finish(true));
        assert!(!Operator::plain(CompareOp::SetEq).finish(false));
        assert!(!Operator::negated(CompareOp::SetEq).finish(true));
        assert!(Operator::negated(CompareOp::SetEq).finish(false));
    }

    #[test]
    fn toggle() {
        let mut o = Operator::plain(CompareOp::Match);
        o.toggle_negation();
        assert!(o.negated);
        assert_eq!(o.to_string(), "¬~");
        o.toggle_negation();
        assert_eq!(o.to_string(), "~");
    }
}
