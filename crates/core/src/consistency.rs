//! Whole-database consistency checking (§2).
//!
//! "Data is consistent with the schema in the sense that each entity is in
//! one baseclass only, each subclass is a subset of its parent, a
//! singlevalued attribute defines a function, and each grouping is
//! completely determined from its parent class and an attribute."
//!
//! Mutating operations preserve these invariants; [`Database::check_consistency`]
//! re-verifies them from first principles, for tests, recovery audits, and
//! property-based fuzzing.

use std::fmt;

use crate::attribute::{Multiplicity, ValueClass};
use crate::error::Result;
use crate::ids::{AttrId, ClassId, EntityId};
use crate::Database;

/// One detected violation of the §2 consistency rules.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// An entity appears in the extent of a class outside its baseclass tree.
    EntityOutsideBaseclass {
        /// The offending entity.
        entity: EntityId,
        /// The class whose extent contains it.
        class: ClassId,
    },
    /// A subclass member is missing from a (primary or secondary) parent.
    SubclassNotSubset {
        /// The subclass.
        class: ClassId,
        /// The parent lacking the member.
        parent: ClassId,
        /// The member violating `C ⊆ parent(C)`.
        entity: EntityId,
    },
    /// A stored attribute value refers outside the attribute's value class.
    ValueOutsideValueClass {
        /// The attribute.
        attr: AttrId,
        /// The entity carrying the value.
        entity: EntityId,
        /// The out-of-class value.
        value: EntityId,
    },
    /// An attribute value is stored for a non-member of the owner class.
    ValueForNonMember {
        /// The attribute.
        attr: AttrId,
        /// The non-member entity.
        entity: EntityId,
    },
    /// A singlevalued attribute stores a set.
    SingleValuedStoresSet {
        /// The attribute.
        attr: AttrId,
        /// The entity with the set value.
        entity: EntityId,
    },
    /// The inheritance forest has a structural defect (cycle, bad link).
    ForestDefect(String),
    /// A dangling reference from the schema (dead class/attr/grouping).
    DanglingReference(String),
    /// An entity name index entry is stale or duplicated.
    NameIndexDefect(String),
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::EntityOutsideBaseclass { entity, class } => {
                write!(
                    f,
                    "entity {entity} is in class {class} outside its baseclass tree"
                )
            }
            Violation::SubclassNotSubset {
                class,
                parent,
                entity,
            } => {
                write!(
                    f,
                    "class {class} has member {entity} missing from parent {parent}"
                )
            }
            Violation::ValueOutsideValueClass {
                attr,
                entity,
                value,
            } => {
                write!(
                    f,
                    "attr {attr} of {entity} holds {value} outside its value class"
                )
            }
            Violation::ValueForNonMember { attr, entity } => {
                write!(f, "attr {attr} stores a value for non-member {entity}")
            }
            Violation::SingleValuedStoresSet { attr, entity } => {
                write!(f, "singlevalued attr {attr} stores a set for {entity}")
            }
            Violation::ForestDefect(m) => write!(f, "forest defect: {m}"),
            Violation::DanglingReference(m) => write!(f, "dangling reference: {m}"),
            Violation::NameIndexDefect(m) => write!(f, "name index defect: {m}"),
        }
    }
}

impl Database {
    /// Re-verifies every §2 consistency rule from scratch, returning all
    /// violations found (empty means the database is consistent).
    pub fn check_consistency(&self) -> Result<Vec<Violation>> {
        let obs = isis_obs::global();
        let _span = obs.span("core.consistency.check");
        let mut v = Vec::new();
        self.check_forest(&mut v)?;
        self.check_extents(&mut v)?;
        self.check_attr_values(&mut v)?;
        self.check_name_index(&mut v)?;
        obs.count("core.consistency.checks", 1);
        obs.count("core.consistency.violations", v.len() as u64);
        Ok(v)
    }

    /// `true` if no consistency violations exist.
    pub fn is_consistent(&self) -> Result<bool> {
        Ok(self.check_consistency()?.is_empty())
    }

    fn check_forest(&self, v: &mut Vec<Violation>) -> Result<()> {
        for (id, rec) in self.classes() {
            match rec.parent {
                None => {
                    if rec.base != id {
                        v.push(Violation::ForestDefect(format!(
                            "baseclass {id} has base link {}",
                            rec.base
                        )));
                    }
                }
                Some(p) => match self.class(p) {
                    Ok(prec) => {
                        if !prec.children.contains(&id) {
                            v.push(Violation::ForestDefect(format!(
                                "{p} does not list child {id}"
                            )));
                        }
                        if prec.base != rec.base {
                            v.push(Violation::ForestDefect(format!(
                                "{id} and parent {p} disagree on baseclass"
                            )));
                        }
                    }
                    Err(_) => v.push(Violation::DanglingReference(format!(
                        "class {id} has dead parent {p}"
                    ))),
                },
            }
            // Ancestry terminates (no cycles).
            if self.ancestry(id).is_err() {
                v.push(Violation::ForestDefect(format!("cycle through {id}")));
            }
            for &child in &rec.children {
                match self.class(child) {
                    Ok(c) if c.parent == Some(id) => {}
                    Ok(_) => v.push(Violation::ForestDefect(format!(
                        "{id} lists {child} whose parent differs"
                    ))),
                    Err(_) => v.push(Violation::DanglingReference(format!(
                        "class {id} lists dead child {child}"
                    ))),
                }
            }
            for &g in &rec.groupings {
                match self.grouping(g) {
                    Ok(gr) if gr.parent == id => {}
                    Ok(_) => v.push(Violation::ForestDefect(format!(
                        "{id} lists grouping {g} with different parent"
                    ))),
                    Err(_) => v.push(Violation::DanglingReference(format!(
                        "class {id} lists dead grouping {g}"
                    ))),
                }
            }
            for &a in &rec.own_attrs {
                match self.attr(a) {
                    Ok(ar) if ar.owner == id => {}
                    Ok(_) => v.push(Violation::DanglingReference(format!(
                        "{id} lists attr {a} owned elsewhere"
                    ))),
                    Err(_) => v.push(Violation::DanglingReference(format!(
                        "class {id} lists dead attr {a}"
                    ))),
                }
            }
        }
        for (gid, g) in self.groupings() {
            if self.class(g.parent).is_err() {
                v.push(Violation::DanglingReference(format!(
                    "grouping {gid} has dead parent {}",
                    g.parent
                )));
            }
            match self.attr(g.on_attr) {
                Ok(_) => {
                    if !self.attr_visible_on(g.on_attr, g.parent).unwrap_or(false) {
                        v.push(Violation::DanglingReference(format!(
                            "grouping {gid} is on attr {} not visible on its parent",
                            g.on_attr
                        )));
                    }
                }
                Err(_) => v.push(Violation::DanglingReference(format!(
                    "grouping {gid} is on dead attr {}",
                    g.on_attr
                ))),
            }
        }
        Ok(())
    }

    fn check_extents(&self, v: &mut Vec<Violation>) -> Result<()> {
        for (cid, rec) in self.classes() {
            for e in rec.members.iter() {
                match self.entity(e) {
                    Ok(er) => {
                        // Rule 1: one baseclass only — membership stays
                        // inside the entity's baseclass tree.
                        if er.base != rec.base {
                            v.push(Violation::EntityOutsideBaseclass {
                                entity: e,
                                class: cid,
                            });
                        }
                    }
                    Err(_) => v.push(Violation::DanglingReference(format!(
                        "class {cid} extent holds dead entity {e}"
                    ))),
                }
                // Rule 2: C ⊆ parent(C), for every parent.
                for p in rec.all_parents().collect::<Vec<_>>() {
                    if let Ok(prec) = self.class(p) {
                        if !prec.members.contains(e) {
                            v.push(Violation::SubclassNotSubset {
                                class: cid,
                                parent: p,
                                entity: e,
                            });
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn check_attr_values(&self, v: &mut Vec<Violation>) -> Result<()> {
        for (aid, rec) in self.attrs() {
            let owner_members = match self.class(rec.owner) {
                Ok(c) => &c.members,
                Err(_) => {
                    v.push(Violation::DanglingReference(format!(
                        "attr {aid} has dead owner {}",
                        rec.owner
                    )));
                    continue;
                }
            };
            for (e, val) in rec.values.iter() {
                if !owner_members.contains(e) {
                    v.push(Violation::ValueForNonMember {
                        attr: aid,
                        entity: e,
                    });
                }
                // Rule 3: singlevalued attributes define functions.
                if rec.multiplicity == Multiplicity::Single {
                    if let crate::column::ValueRef::Multi(_) = val {
                        v.push(Violation::SingleValuedStoresSet {
                            attr: aid,
                            entity: e,
                        });
                    }
                }
                // Rule 4: values lie in the value class.
                let value_ok = |value: EntityId| -> bool {
                    if value.is_null() {
                        return true;
                    }
                    match rec.value_class {
                        ValueClass::Class(c) => self
                            .class(c)
                            .map(|cr| cr.members.contains(value))
                            .unwrap_or(false),
                        ValueClass::Grouping(g) => self
                            .grouping_index_class(g)
                            .and_then(|ic| self.class(ic))
                            .map(|cr| cr.members.contains(value))
                            .unwrap_or(false),
                    }
                };
                match val {
                    crate::column::ValueRef::Single(x) => {
                        if !value_ok(x) {
                            v.push(Violation::ValueOutsideValueClass {
                                attr: aid,
                                entity: e,
                                value: x,
                            });
                        }
                    }
                    crate::column::ValueRef::Multi(s) => {
                        for x in s.iter() {
                            if !value_ok(x) {
                                v.push(Violation::ValueOutsideValueClass {
                                    attr: aid,
                                    entity: e,
                                    value: x,
                                });
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn check_name_index(&self, v: &mut Vec<Violation>) -> Result<()> {
        for ((base, name), &id) in &self.entity_names {
            match self.entity(id) {
                Ok(er) => {
                    if er.base != *base || &er.name != name {
                        v.push(Violation::NameIndexDefect(format!(
                            "index entry ({base}, {name:?}) points at mismatched entity {id}"
                        )));
                    }
                }
                Err(_) => v.push(Violation::NameIndexDefect(format!(
                    "index entry ({base}, {name:?}) points at dead entity {id}"
                ))),
            }
        }
        for (id, er) in self.entities() {
            if er.alive && self.entity_names.get(&(er.base, er.name.clone())) != Some(&id) {
                v.push(Violation::NameIndexDefect(format!(
                    "entity {id} ({:?}) missing from the name index",
                    er.name
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::literal::BaseKind;

    #[test]
    fn fresh_database_is_consistent() {
        let db = Database::new("t");
        assert!(db.is_consistent().unwrap());
    }

    #[test]
    fn built_up_database_is_consistent() {
        let mut db = Database::new("t");
        let m = db.create_baseclass("musicians").unwrap();
        let i = db.create_baseclass("instruments").unwrap();
        let plays = db
            .create_attribute(m, "plays", i, Multiplicity::Multi)
            .unwrap();
        let yn = db.predefined(BaseKind::Booleans);
        let union = db
            .create_attribute(m, "union", yn, Multiplicity::Single)
            .unwrap();
        db.create_grouping(m, "by_instrument", plays).unwrap();
        let s = db.create_subclass(m, "soloists").unwrap();
        let edith = db.insert_entity(m, "Edith").unwrap();
        let viola = db.insert_entity(i, "viola").unwrap();
        db.add_to_class(edith, s).unwrap();
        db.assign_multi(edith, plays, [viola]).unwrap();
        let yes = db.boolean(true);
        db.assign_single(edith, union, yes).unwrap();
        assert_eq!(db.check_consistency().unwrap(), Vec::new());
        // Deleting things keeps it consistent.
        db.delete_entity(viola).unwrap();
        db.remove_from_class(edith, s).unwrap();
        db.delete_class(s).unwrap();
        assert_eq!(db.check_consistency().unwrap(), Vec::new());
    }

    #[test]
    fn corruption_is_detected() {
        let mut db = Database::new("t");
        let m = db.create_baseclass("musicians").unwrap();
        let s = db.create_subclass(m, "soloists").unwrap();
        let edith = db.insert_entity(m, "Edith").unwrap();
        // Corrupt: force Edith into soloists without the parent link…
        db.classes[s.index()].members.insert(edith);
        db.classes[m.index()].members.remove(edith);
        let v = db.check_consistency().unwrap();
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::SubclassNotSubset { .. })));
    }

    #[test]
    fn dangling_value_detected() {
        let mut db = Database::new("t");
        let m = db.create_baseclass("musicians").unwrap();
        let i = db.create_baseclass("instruments").unwrap();
        let plays = db
            .create_attribute(m, "plays", i, Multiplicity::Multi)
            .unwrap();
        let edith = db.insert_entity(m, "Edith").unwrap();
        let viola = db.insert_entity(i, "viola").unwrap();
        db.assign_multi(edith, plays, [viola]).unwrap();
        // Corrupt: remove viola from instruments behind the engine's back.
        db.classes[i.index()].members.remove(viola);
        let v = db.check_consistency().unwrap();
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::ValueOutsideValueClass { .. })));
    }

    #[test]
    fn single_storing_set_detected() {
        let mut db = Database::new("t");
        let m = db.create_baseclass("musicians").unwrap();
        let yn = db.predefined(BaseKind::Booleans);
        let union = db
            .create_attribute(m, "union", yn, Multiplicity::Single)
            .unwrap();
        let edith = db.insert_entity(m, "Edith").unwrap();
        let yes = db.boolean(true);
        db.attrs[union.index()]
            .values
            .set(edith, crate::AttrValue::Multi([yes].into_iter().collect()));
        let v = db.check_consistency().unwrap();
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::SingleValuedStoresSet { .. })));
    }

    #[test]
    fn violations_display() {
        let v = Violation::ForestDefect("boom".into());
        assert!(v.to_string().contains("boom"));
    }
}
