//! Predicate evaluation and derived-class/attribute materialisation (§2).
//!
//! Maps are evaluated set-at-a-time; atoms compare the resulting entity
//! sets; predicates combine atoms in DNF or CNF. A derived subclass is
//! (re)materialised by *commit* — exactly the worksheet's commit button,
//! "which causes evaluation of the predicate" (§4.2).

use crate::atom::{Atom, Rhs};
use crate::attribute::{AttrValue, Multiplicity, ValueClass};
use crate::class::ClassKind;
use crate::error::{CoreError, Result};
use crate::ids::{AttrId, ClassId, EntityId};
use crate::map::{Map, MapTrace};
use crate::op::{CompareOp, Operator};
use crate::orderedset::OrderedSet;
use crate::predicate::{AttrDerivation, NormalForm, Predicate};
use crate::Database;

impl Database {
    // ------------------------------------------------------------------
    // Maps
    // ------------------------------------------------------------------

    /// Type-checks `map` against the schema starting from `start`,
    /// returning the stack of classes each prefix reaches (§3.2's worksheet
    /// class stack). Attributes stepping into a grouping continue from the
    /// grouping's parent class.
    pub fn trace_map(&self, start: ClassId, map: &Map) -> Result<MapTrace> {
        let mut classes = vec![start];
        let mut multivalued = false;
        let mut cur = start;
        for &step in map.steps() {
            if !self.attr_visible_on(step, cur)? {
                return Err(CoreError::InvalidMapStep {
                    attr: step,
                    class: cur,
                });
            }
            let rec = self.attr(step)?;
            if rec.multiplicity == Multiplicity::Multi {
                multivalued = true;
            }
            cur = match rec.value_class {
                ValueClass::Class(c) => c,
                ValueClass::Grouping(g) => {
                    multivalued = true; // expands to the set's members
                    self.grouping(g)?.parent
                }
            };
            classes.push(cur);
        }
        Ok(MapTrace {
            classes,
            multivalued,
        })
    }

    /// Evaluates `map` over a set of starting entities, unioning results
    /// across every step ("x₁ = x, e = xₙ₊₁, and xᵢ₊₁ ∈ Aᵢ(xᵢ)").
    ///
    /// Class-ranged non-naming steps read the attribute column by
    /// reference (no per-entity set clone); naming and grouping-ranged
    /// steps synthesise their value sets through
    /// [`Database::attr_value_set`] as before.
    pub fn eval_map(
        &self,
        start: impl IntoIterator<Item = EntityId>,
        map: &Map,
    ) -> Result<OrderedSet> {
        let mut cur: OrderedSet = start.into_iter().collect();
        for &step in map.steps() {
            let mut next = OrderedSet::new();
            let rec = self.attr(step)?;
            if rec.naming || matches!(rec.value_class, ValueClass::Grouping(_)) {
                for e in cur.iter() {
                    next.extend_from(&self.attr_value_set(e, step)?);
                }
            } else {
                let members = &self.class(rec.owner)?.members;
                for e in cur.iter() {
                    if !members.contains(e) {
                        return Err(CoreError::NotAMember {
                            entity: e,
                            class: rec.owner,
                        });
                    }
                    match rec.values.get(e) {
                        Some(crate::column::ValueRef::Single(v)) if !v.is_null() => {
                            next.insert(v);
                        }
                        Some(crate::column::ValueRef::Multi(s)) => next.extend_from(s),
                        _ => {}
                    }
                }
            }
            cur = next;
        }
        Ok(cur)
    }

    // ------------------------------------------------------------------
    // Atoms
    // ------------------------------------------------------------------

    /// Evaluates one atom for candidate entity `e`, with `source` bound to
    /// `x` when evaluating a derived-attribute predicate.
    pub fn eval_atom(&self, e: EntityId, atom: &Atom, source: Option<EntityId>) -> Result<bool> {
        let lhs = self.eval_map([e], &atom.lhs)?;
        let rhs = match &atom.rhs {
            Rhs::SelfMap(m) => self.eval_map([e], m)?,
            Rhs::Constant { anchors, map, .. } => self.eval_map(anchors.iter(), map)?,
            Rhs::SourceMap(m) => {
                let x = source.ok_or_else(|| {
                    CoreError::Inconsistent(
                        "atom references the source entity x outside a derived-attribute predicate"
                            .into(),
                    )
                })?;
                self.eval_map([x], m)?
            }
        };
        self.eval_prepared_atom(&lhs, atom.op, &rhs)
    }

    /// Compares two pre-evaluated atom images under `op`, applying the
    /// operator's negation — the comparison kernel shared by the
    /// per-candidate interpreter ([`Database::eval_atom`]) and isis-query's
    /// compiled predicate programs, which materialise `lhs` / `rhs` through
    /// hoisted constants and memoised map slots before delegating here.
    pub fn eval_prepared_atom(
        &self,
        lhs: &OrderedSet,
        op: Operator,
        rhs: &OrderedSet,
    ) -> Result<bool> {
        let raw = self.compare_sets(lhs, op.op, rhs)?;
        Ok(op.finish(raw))
    }

    /// Applies a comparison operator to two entity sets.
    pub fn compare_sets(&self, lhs: &OrderedSet, op: CompareOp, rhs: &OrderedSet) -> Result<bool> {
        Ok(match op {
            CompareOp::SetEq => lhs.set_eq(rhs),
            CompareOp::Subset => lhs.is_subset(rhs),
            CompareOp::Superset => rhs.is_subset(lhs),
            CompareOp::ProperSubset => lhs.is_subset(rhs) && !lhs.set_eq(rhs),
            CompareOp::ProperSuperset => rhs.is_subset(lhs) && !lhs.set_eq(rhs),
            CompareOp::Match => lhs.intersects(rhs),
            CompareOp::Lt | CompareOp::Le | CompareOp::Gt | CompareOp::Ge => {
                let ord = self.order_singletons(lhs, rhs)?;
                match op {
                    CompareOp::Lt => ord == std::cmp::Ordering::Less,
                    CompareOp::Le => ord != std::cmp::Ordering::Greater,
                    CompareOp::Gt => ord == std::cmp::Ordering::Greater,
                    CompareOp::Ge => ord != std::cmp::Ordering::Less,
                    _ => unreachable!(),
                }
            }
        })
    }

    /// Orders two singleton sets: numerically for INTEGERS/REALS (mixed is
    /// fine), lexicographically for STRINGS.
    fn order_singletons(&self, lhs: &OrderedSet, rhs: &OrderedSet) -> Result<std::cmp::Ordering> {
        let (a, b) = match (lhs.as_singleton(), rhs.as_singleton()) {
            (Some(a), Some(b)) => (a, b),
            _ => {
                return Err(CoreError::NotComparable(
                    "ordering operators require singleton sets".into(),
                ))
            }
        };
        let (la, lb) = (self.literal_of(a), self.literal_of(b));
        match (la, lb) {
            (Some(la), Some(lb)) => {
                if let (Some(x), Some(y)) = (la.as_f64(), lb.as_f64()) {
                    x.partial_cmp(&y)
                        .ok_or_else(|| CoreError::NotComparable("incomparable reals".into()))
                } else {
                    match (la, lb) {
                        (crate::literal::Literal::Str(x), crate::literal::Literal::Str(y)) => {
                            Ok(x.cmp(y))
                        }
                        _ => Err(CoreError::NotComparable(format!(
                            "cannot order {la} against {lb}"
                        ))),
                    }
                }
            }
            _ => Err(CoreError::NotComparable(
                "ordering operators compare literal entities only".into(),
            )),
        }
    }

    // ------------------------------------------------------------------
    // Predicates
    // ------------------------------------------------------------------

    /// Evaluates a whole predicate for candidate `e` (with optional source
    /// `x`), honouring the DNF/CNF reading of the clause layout.
    pub fn eval_predicate_for(
        &self,
        e: EntityId,
        pred: &Predicate,
        source: Option<EntityId>,
    ) -> Result<bool> {
        match pred.form {
            NormalForm::Dnf => {
                // OR of clauses; each clause an AND of atoms.
                for clause in &pred.clauses {
                    let mut all = true;
                    for atom in &clause.atoms {
                        if !self.eval_atom(e, atom, source)? {
                            all = false;
                            break;
                        }
                    }
                    if all {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
            NormalForm::Cnf => {
                // AND of clauses; each clause an OR of atoms.
                for clause in &pred.clauses {
                    let mut any = false;
                    for atom in &clause.atoms {
                        if self.eval_atom(e, atom, source)? {
                            any = true;
                            break;
                        }
                    }
                    if !any {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
        }
    }

    /// Type-checks a predicate whose candidates range over `value_class`
    /// (with source-entity atoms allowed iff `source_class` is given).
    pub fn validate_predicate(
        &self,
        value_class: ClassId,
        source_class: Option<ClassId>,
        pred: &Predicate,
    ) -> Result<()> {
        for atom in pred.atoms() {
            self.trace_map(value_class, &atom.lhs)?;
            match &atom.rhs {
                Rhs::SelfMap(m) => {
                    self.trace_map(value_class, m)?;
                }
                Rhs::Constant {
                    class,
                    anchors,
                    map,
                } => {
                    for a in anchors.iter() {
                        if !self.class(*class)?.members.contains(a) {
                            return Err(CoreError::NotAMember {
                                entity: a,
                                class: *class,
                            });
                        }
                    }
                    self.trace_map(*class, map)?;
                }
                Rhs::SourceMap(m) => match source_class {
                    Some(c) => {
                        self.trace_map(c, m)?;
                    }
                    None => {
                        return Err(CoreError::Inconsistent(
                            "source-entity atom in a subclass predicate".into(),
                        ))
                    }
                },
            }
        }
        Ok(())
    }

    /// The set `{ e ∈ parent | P(e) }` without modifying the database.
    pub fn evaluate_derived_members(
        &self,
        parent: ClassId,
        pred: &Predicate,
    ) -> Result<OrderedSet> {
        self.validate_predicate(parent, None, pred)?;
        let mut out = OrderedSet::new();
        for e in self.class(parent)?.members.iter().collect::<Vec<_>>() {
            if self.eval_predicate_for(e, pred, None)? {
                out.insert(e);
            }
        }
        Ok(out)
    }

    /// Installs `pred` as the membership predicate of a derived subclass and
    /// evaluates it (the worksheet's *commit*). Returns the new member
    /// count. Entities leaving the class cascade out of its descendants.
    pub fn commit_membership(&mut self, class: ClassId, pred: Predicate) -> Result<usize> {
        let rec = self.class(class)?;
        let parent = match (rec.parent, &rec.kind) {
            (Some(p), ClassKind::Derived(_)) => p,
            (Some(p), ClassKind::Enumerated) => p,
            _ => {
                return Err(CoreError::Inconsistent(
                    "commit_membership applies to subclasses".into(),
                ))
            }
        };
        let new_members = {
            // Evaluate against the parent's extent.
            self.validate_predicate(parent, None, &pred)?;
            let mut out = OrderedSet::new();
            for e in self.class(parent)?.members.iter().collect::<Vec<_>>() {
                if self.eval_predicate_for(e, &pred, None)? {
                    out.insert(e);
                }
            }
            out
        };
        let old_members: Vec<EntityId> = self.class(class)?.members.iter().collect();
        for e in old_members {
            if !new_members.contains(e) {
                self.remove_from_class(e, class)?;
            }
        }
        for e in new_members.iter() {
            self.add_to_class_unchecked(e, class)?;
        }
        let n = new_members.len();
        // A *new* predicate is a schema edit; a plain refresh (same
        // predicate re-committed) only produces membership changes.
        if self.class(class)?.kind.predicate() != Some(&pred) {
            self.record_schema(crate::change::SchemaEdit::DerivationChanged(class));
        }
        self.class_mut(class)?.kind = ClassKind::Derived(pred);
        Ok(n)
    }

    /// Re-evaluates the stored predicate of a derived subclass (derivations
    /// are not kept consistent automatically; see §2).
    pub fn refresh_derived_class(&mut self, class: ClassId) -> Result<usize> {
        let pred = self
            .class(class)?
            .kind
            .predicate()
            .cloned()
            .ok_or(CoreError::DerivedClass(class))?;
        self.commit_membership(class, pred)
    }

    // ------------------------------------------------------------------
    // Derived attributes
    // ------------------------------------------------------------------

    /// Installs a derivation on an attribute and materialises its values
    /// for every current member of the owner ("(re)define derivation" +
    /// commit, §4.2). Returns the number of entities whose value was set.
    pub fn commit_derivation(&mut self, attr: AttrId, derivation: AttrDerivation) -> Result<usize> {
        let rec = self.attr(attr)?;
        if rec.naming {
            return Err(CoreError::Predefined);
        }
        let owner = rec.owner;
        let multiplicity = rec.multiplicity;
        let value_class = match rec.value_class {
            ValueClass::Class(c) => c,
            ValueClass::Grouping(_) => {
                return Err(CoreError::Inconsistent(
                    "derivations onto grouping-ranged attributes are not supported".into(),
                ))
            }
        };
        // Static checks.
        match &derivation {
            AttrDerivation::Assign(map) => {
                let trace = self.trace_map(owner, map)?;
                // Every produced entity must land in the value class; this
                // holds structurally when the map terminates at or below it.
                if !self.is_descendant(trace.terminal(), value_class)? {
                    return Err(CoreError::Inconsistent(format!(
                        "derivation map terminates in {} which is not within value class {}",
                        self.class(trace.terminal())?.name,
                        self.class(value_class)?.name
                    )));
                }
            }
            AttrDerivation::Predicate(p) => {
                self.validate_predicate(value_class, Some(owner), p)?;
            }
        }
        let members: Vec<EntityId> = self.class(owner)?.members.iter().collect();
        let mut n = 0;
        for x in &members {
            let set = match &derivation {
                AttrDerivation::Assign(map) => self.eval_map([*x], map)?,
                AttrDerivation::Predicate(p) => {
                    let mut out = OrderedSet::new();
                    for e in self.class(value_class)?.members.iter() {
                        if self.eval_predicate_for(e, p, Some(*x))? {
                            out.insert(e);
                        }
                    }
                    out
                }
            };
            let value = match multiplicity {
                Multiplicity::Multi => AttrValue::Multi(set),
                Multiplicity::Single => match set.len() {
                    0 => AttrValue::Single(EntityId::NULL),
                    1 => AttrValue::Single(set.as_slice()[0]),
                    _ => {
                        return Err(CoreError::SingleValuedAttr(attr));
                    }
                },
            };
            let old = self.attrs[attr.index()].value_of(*x);
            if old != value {
                self.record_change(crate::change::Change::AttrAssigned {
                    entity: *x,
                    attr,
                    old,
                    new: value.clone(),
                });
            }
            self.attrs[attr.index()].values.set(*x, value);
            n += 1;
        }
        if self.attr(attr)?.derivation.as_ref() != Some(&derivation) {
            self.record_schema(crate::change::SchemaEdit::AttrDerivationChanged(attr));
        }
        self.attr_mut(attr)?.derivation = Some(derivation);
        Ok(n)
    }

    /// Re-materialises a derived attribute from its stored derivation.
    pub fn refresh_derived_attr(&mut self, attr: AttrId) -> Result<usize> {
        let derivation = self
            .attr(attr)?
            .derivation
            .clone()
            .ok_or_else(|| CoreError::Inconsistent("attribute has no derivation".into()))?;
        self.commit_derivation(attr, derivation)
    }
}

/// Compares a single-valued column cell against a pre-materialised rhs
/// image — [`Database::compare_sets`] specialised to a left-hand side
/// that is either the empty set (`v` is NULL, i.e. the slot is
/// unassigned) or the singleton `{v}`.
///
/// Returns `None` for ordering operators: those are fallible (they
/// require literal singletons on both sides) and must go through the
/// full set path so the error identity is preserved. Batched predicate
/// evaluation in isis-query therefore never streams ordering atoms.
pub fn compare_single(v: EntityId, op: CompareOp, rhs: &OrderedSet) -> Option<bool> {
    let null = v.is_null();
    Some(match op {
        CompareOp::SetEq => {
            if null {
                rhs.is_empty()
            } else {
                rhs.len() == 1 && rhs.contains(v)
            }
        }
        CompareOp::Subset => null || rhs.contains(v),
        CompareOp::Superset => {
            if null {
                rhs.is_empty()
            } else {
                rhs.is_empty() || (rhs.len() == 1 && rhs.contains(v))
            }
        }
        CompareOp::ProperSubset => {
            if null {
                !rhs.is_empty()
            } else {
                rhs.contains(v) && rhs.len() > 1
            }
        }
        CompareOp::ProperSuperset => !null && rhs.is_empty(),
        CompareOp::Match => !null && rhs.contains(v),
        CompareOp::Lt | CompareOp::Le | CompareOp::Gt | CompareOp::Ge => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::Atom;
    use crate::literal::BaseKind;
    use crate::predicate::Clause;

    /// A miniature Instrumental_Music: musicians play instruments, each
    /// instrument has a family, music groups have members and a size.
    struct Mini {
        db: Database,
        musicians: ClassId,
        instruments: ClassId,
        families: ClassId,
        groups: ClassId,
        plays: AttrId,
        family: AttrId,
        members_attr: AttrId,
        size: AttrId,
        edith: EntityId,
        bob: EntityId,
        carol: EntityId,
        viola: EntityId,
        piano: EntityId,
        flute: EntityId,
        #[allow(dead_code)]
        strings_fam: EntityId,
        #[allow(dead_code)]
        keyboard_fam: EntityId,
        q1: EntityId,
        q2: EntityId,
    }

    fn mini() -> Mini {
        let mut db = Database::new("mini");
        let musicians = db.create_baseclass("musicians").unwrap();
        let instruments = db.create_baseclass("instruments").unwrap();
        let families = db.create_baseclass("families").unwrap();
        let groups = db.create_baseclass("music_groups").unwrap();
        let ints = db.predefined(BaseKind::Integers);
        let plays = db
            .create_attribute(musicians, "plays", instruments, Multiplicity::Multi)
            .unwrap();
        let family = db
            .create_attribute(instruments, "family", families, Multiplicity::Single)
            .unwrap();
        let members_attr = db
            .create_attribute(groups, "members", musicians, Multiplicity::Multi)
            .unwrap();
        let size = db
            .create_attribute(groups, "size", ints, Multiplicity::Single)
            .unwrap();
        let strings_fam = db.insert_entity(families, "stringed").unwrap();
        let keyboard_fam = db.insert_entity(families, "keyboard").unwrap();
        let viola = db.insert_entity(instruments, "viola").unwrap();
        let piano = db.insert_entity(instruments, "piano").unwrap();
        let flute = db.insert_entity(instruments, "flute").unwrap();
        db.assign_single(viola, family, strings_fam).unwrap();
        db.assign_single(piano, family, keyboard_fam).unwrap();
        let edith = db.insert_entity(musicians, "Edith").unwrap();
        let bob = db.insert_entity(musicians, "Bob").unwrap();
        let carol = db.insert_entity(musicians, "Carol").unwrap();
        db.assign_multi(edith, plays, [viola]).unwrap();
        db.assign_multi(bob, plays, [piano]).unwrap();
        db.assign_multi(carol, plays, [piano, viola]).unwrap();
        let q1 = db.insert_entity(groups, "Quartetto").unwrap();
        let q2 = db.insert_entity(groups, "Duo").unwrap();
        let four = db.int(4);
        let two = db.int(2);
        db.assign_single(q1, size, four).unwrap();
        db.assign_single(q2, size, two).unwrap();
        db.assign_multi(q1, members_attr, [edith, bob, carol])
            .unwrap();
        db.assign_multi(q2, members_attr, [edith]).unwrap();
        Mini {
            db,
            musicians,
            instruments,
            families,
            groups,
            plays,
            family,
            members_attr,
            size,
            edith,
            bob,
            carol,
            viola,
            piano,
            flute,
            strings_fam,
            keyboard_fam,
            q1,
            q2,
        }
    }

    #[test]
    fn trace_map_stacks_classes() {
        let m = mini();
        let map = Map::new(vec![m.members_attr, m.plays, m.family]);
        let t = m.db.trace_map(m.groups, &map).unwrap();
        assert_eq!(
            t.classes,
            vec![m.groups, m.musicians, m.instruments, m.families]
        );
        assert_eq!(t.terminal(), m.families);
        assert!(t.multivalued);
        // Identity map.
        let t0 = m.db.trace_map(m.groups, &Map::identity()).unwrap();
        assert_eq!(t0.classes, vec![m.groups]);
        assert!(!t0.multivalued);
        // Invalid step.
        assert!(matches!(
            m.db.trace_map(m.groups, &Map::single(m.family))
                .unwrap_err(),
            CoreError::InvalidMapStep { .. }
        ));
    }

    #[test]
    fn eval_map_unions_across_steps() {
        let m = mini();
        // members plays: all instruments played in the quartet.
        let map = Map::new(vec![m.members_attr, m.plays]);
        let out = m.db.eval_map([m.q1], &map).unwrap();
        assert!(out.contains(m.viola) && out.contains(m.piano));
        assert!(!out.contains(m.flute));
        // Identity map.
        let id = m.db.eval_map([m.q1], &Map::identity()).unwrap();
        assert_eq!(id.as_slice(), &[m.q1]);
    }

    #[test]
    fn eval_map_through_singlevalued_skips_null() {
        let m = mini();
        // flute has no family assigned → empty, not {null}.
        let out = m.db.eval_map([m.flute], &Map::single(m.family)).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn compare_ops_table() {
        let m = mini();
        let a: OrderedSet = [m.viola].into_iter().collect();
        let ab: OrderedSet = [m.viola, m.piano].into_iter().collect();
        let c: OrderedSet = [m.flute].into_iter().collect();
        let db = &m.db;
        assert!(db.compare_sets(&a, CompareOp::Subset, &ab).unwrap());
        assert!(db.compare_sets(&a, CompareOp::ProperSubset, &ab).unwrap());
        assert!(!db.compare_sets(&ab, CompareOp::ProperSubset, &ab).unwrap());
        assert!(db.compare_sets(&ab, CompareOp::Superset, &a).unwrap());
        assert!(db.compare_sets(&ab, CompareOp::ProperSuperset, &a).unwrap());
        assert!(db.compare_sets(&ab, CompareOp::Match, &a).unwrap());
        assert!(!db.compare_sets(&ab, CompareOp::Match, &c).unwrap());
        assert!(db.compare_sets(&ab, CompareOp::SetEq, &ab).unwrap());
        assert!(!db.compare_sets(&a, CompareOp::SetEq, &ab).unwrap());
    }

    #[test]
    fn ordering_ops_on_literals() {
        let mut m = mini();
        let two: OrderedSet = [m.db.int(2)].into_iter().collect();
        let four: OrderedSet = [m.db.int(4)].into_iter().collect();
        let half: OrderedSet = [m.db.real(2.5).unwrap()].into_iter().collect();
        let db = &m.db;
        assert!(db.compare_sets(&two, CompareOp::Lt, &four).unwrap());
        assert!(db.compare_sets(&four, CompareOp::Ge, &four).unwrap());
        // Mixed int/real ordering works.
        assert!(db.compare_sets(&two, CompareOp::Lt, &half).unwrap());
        assert!(db.compare_sets(&half, CompareOp::Lt, &four).unwrap());
        // Strings order lexicographically.
        let mut m2 = mini();
        let a: OrderedSet = [m2.db.str("alto")].into_iter().collect();
        let b: OrderedSet = [m2.db.str("bass")].into_iter().collect();
        assert!(m2.db.compare_sets(&a, CompareOp::Lt, &b).unwrap());
        // Non-singletons and non-literals error.
        let both: OrderedSet = [m.viola, m.piano].into_iter().collect();
        assert!(db.compare_sets(&both, CompareOp::Lt, &four).is_err());
        let ent: OrderedSet = [m.viola].into_iter().collect();
        assert!(db.compare_sets(&ent, CompareOp::Lt, &four).is_err());
    }

    /// The paper's quartets query: size = {4} AND plays of some member ⊇
    /// {piano} — here phrased over music_groups directly.
    fn quartets_predicate(m: &mut Mini) -> Predicate {
        let four = m.db.int(4);
        let ints = m.db.predefined(BaseKind::Integers);
        let size_atom = Atom::new(
            Map::single(m.size),
            CompareOp::SetEq,
            Rhs::constant(ints, [four]),
        );
        let piano_atom = Atom::new(
            Map::new(vec![m.members_attr, m.plays]),
            CompareOp::Superset,
            Rhs::constant(m.instruments, [m.piano]),
        );
        Predicate::cnf(vec![
            Clause::new(vec![piano_atom]),
            Clause::new(vec![size_atom]),
        ])
    }

    #[test]
    fn quartets_query_selects_q1_only() {
        let mut m = mini();
        let pred = quartets_predicate(&mut m);
        let sel = m.db.evaluate_derived_members(m.groups, &pred).unwrap();
        assert_eq!(sel.as_slice(), &[m.q1]);
    }

    #[test]
    fn commit_membership_materialises_and_refreshes() {
        let mut m = mini();
        let pred = quartets_predicate(&mut m);
        let quartets = m.db.create_derived_subclass(m.groups, "quartets").unwrap();
        let n = m.db.commit_membership(quartets, pred).unwrap();
        assert_eq!(n, 1);
        assert!(m.db.members(quartets).unwrap().contains(m.q1));
        assert!(!m.db.members(quartets).unwrap().contains(m.q2));
        // Change the data so q2 qualifies, then refresh.
        let four = m.db.int(4);
        m.db.assign_single(m.q2, m.size, four).unwrap();
        m.db.assign_multi(m.q2, m.members_attr, [m.bob]).unwrap();
        assert!(!m.db.members(quartets).unwrap().contains(m.q2)); // stale
        let n2 = m.db.refresh_derived_class(quartets).unwrap();
        assert_eq!(n2, 2);
        assert!(m.db.members(quartets).unwrap().contains(m.q2));
        // Make q1 fail and refresh: it must leave.
        let two = m.db.int(2);
        m.db.assign_single(m.q1, m.size, two).unwrap();
        m.db.refresh_derived_class(quartets).unwrap();
        assert!(!m.db.members(quartets).unwrap().contains(m.q1));
    }

    #[test]
    fn dnf_vs_cnf_semantics() {
        let mut m = mini();
        let four = m.db.int(4);
        let two = m.db.int(2);
        let ints = m.db.predefined(BaseKind::Integers);
        let is4 = Atom::new(
            Map::single(m.size),
            CompareOp::SetEq,
            Rhs::constant(ints, [four]),
        );
        let is2 = Atom::new(
            Map::single(m.size),
            CompareOp::SetEq,
            Rhs::constant(ints, [two]),
        );
        // DNF (4) OR (2): both groups qualify.
        let dnf = Predicate::dnf(vec![
            Clause::new(vec![is4.clone()]),
            Clause::new(vec![is2.clone()]),
        ]);
        assert_eq!(
            m.db.evaluate_derived_members(m.groups, &dnf).unwrap().len(),
            2
        );
        // Same layout read as CNF (4) AND (2): none qualify.
        let mut cnf = dnf.clone();
        cnf.switch_and_or();
        assert_eq!(
            m.db.evaluate_derived_members(m.groups, &cnf).unwrap().len(),
            0
        );
        // One clause with both atoms: DNF-AND none, CNF-OR both.
        let one = Predicate::dnf(vec![Clause::new(vec![is4, is2])]);
        assert_eq!(
            m.db.evaluate_derived_members(m.groups, &one).unwrap().len(),
            0
        );
        let mut one_cnf = one.clone();
        one_cnf.switch_and_or();
        assert_eq!(
            m.db.evaluate_derived_members(m.groups, &one_cnf)
                .unwrap()
                .len(),
            2
        );
    }

    #[test]
    fn negated_operator() {
        let mut m = mini();
        let four = m.db.int(4);
        let ints = m.db.predefined(BaseKind::Integers);
        let atom = Atom::new(
            Map::single(m.size),
            crate::op::Operator::negated(CompareOp::SetEq),
            Rhs::constant(ints, [four]),
        );
        let pred = Predicate::dnf(vec![Clause::new(vec![atom])]);
        let sel = m.db.evaluate_derived_members(m.groups, &pred).unwrap();
        assert_eq!(sel.as_slice(), &[m.q2]);
    }

    #[test]
    fn self_map_atom_form_a() {
        let m = mini();
        // Instruments whose own family set equals the family of viola —
        // i.e. stringed instruments, via form (b) on the rhs with a map.
        let atom = Atom::new(
            Map::single(m.family),
            CompareOp::SetEq,
            Rhs::Constant {
                class: m.instruments,
                anchors: [m.viola].into_iter().collect(),
                map: Map::single(m.family),
            },
        );
        let pred = Predicate::dnf(vec![Clause::new(vec![atom])]);
        let sel = m.db.evaluate_derived_members(m.instruments, &pred).unwrap();
        assert_eq!(sel.as_slice(), &[m.viola]);
        // Form (a): identity(e) = identity(e) is trivially true.
        let triv = Atom::new(
            Map::identity(),
            CompareOp::SetEq,
            Rhs::SelfMap(Map::identity()),
        );
        let all =
            m.db.evaluate_derived_members(
                m.instruments,
                &Predicate::dnf(vec![Clause::new(vec![triv])]),
            )
            .unwrap();
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn source_atom_rejected_in_subclass_predicate() {
        let m = mini();
        let atom = Atom::new(
            Map::identity(),
            CompareOp::Match,
            Rhs::SourceMap(Map::single(m.plays)),
        );
        let pred = Predicate::dnf(vec![Clause::new(vec![atom])]);
        assert!(m.db.evaluate_derived_members(m.musicians, &pred).is_err());
    }

    #[test]
    fn derived_attribute_assign_form() {
        let mut m = mini();
        // all_inst: music_groups → instruments, derived by the hand
        // operator over the map `members plays` (Figure 10).
        let all_inst =
            m.db.create_attribute(m.groups, "all_inst", m.instruments, Multiplicity::Multi)
                .unwrap();
        let n =
            m.db.commit_derivation(
                all_inst,
                AttrDerivation::Assign(Map::new(vec![m.members_attr, m.plays])),
            )
            .unwrap();
        assert_eq!(n, 2);
        let v = m.db.attr_value_set(m.q1, all_inst).unwrap();
        assert!(v.contains(m.viola) && v.contains(m.piano));
        assert_eq!(
            m.db.attr_value_set(m.q2, all_inst).unwrap().as_slice(),
            &[m.viola]
        );
        // External assignment to a derived attribute is refused.
        assert!(m.db.assign_multi(m.q1, all_inst, [m.flute]).is_err());
        // Refresh follows data changes.
        m.db.assign_multi(m.edith, m.plays, [m.flute]).unwrap();
        m.db.refresh_derived_attr(all_inst).unwrap();
        assert!(m
            .db
            .attr_value_set(m.q2, all_inst)
            .unwrap()
            .contains(m.flute));
    }

    #[test]
    fn derived_attribute_predicate_form_with_source() {
        let mut m = mini();
        // colleagues: musicians → musicians, e is a colleague of x iff some
        // group's members include both (approximated here: e plays an
        // instrument x also plays) — exercises form (c).
        let colleagues =
            m.db.create_attribute(m.musicians, "similar", m.musicians, Multiplicity::Multi)
                .unwrap();
        let atom = Atom::new(
            Map::single(m.plays),
            CompareOp::Match,
            Rhs::SourceMap(Map::single(m.plays)),
        );
        let deriv = AttrDerivation::Predicate(Predicate::dnf(vec![Clause::new(vec![atom])]));
        m.db.commit_derivation(colleagues, deriv).unwrap();
        let sim = m.db.attr_value_set(m.edith, colleagues).unwrap();
        // Edith plays viola; Carol plays viola+piano; Bob only piano.
        assert!(sim.contains(m.edith));
        assert!(sim.contains(m.carol));
        assert!(!sim.contains(m.bob));
    }

    #[test]
    fn derived_single_attribute_cardinality_checked() {
        let mut m = mini();
        let fam_of_plays =
            m.db.create_attribute(m.musicians, "fam1", m.families, Multiplicity::Single)
                .unwrap();
        // Edith plays only viola → single family works.
        // Carol plays piano+viola → two families → must error.
        let deriv = AttrDerivation::Assign(Map::new(vec![m.plays, m.family]));
        assert_eq!(
            m.db.commit_derivation(fam_of_plays, deriv).unwrap_err(),
            CoreError::SingleValuedAttr(fam_of_plays)
        );
    }

    #[test]
    fn derivation_map_terminal_must_lie_in_value_class() {
        let mut m = mini();
        let bad =
            m.db.create_attribute(m.groups, "bad", m.families, Multiplicity::Multi)
                .unwrap();
        // members plays terminates in instruments, not families.
        let deriv = AttrDerivation::Assign(Map::new(vec![m.members_attr, m.plays]));
        assert!(m.db.commit_derivation(bad, deriv).is_err());
    }

    #[test]
    fn naming_attribute_usable_in_maps() {
        let mut m = mini();
        // Select the musician named "Edith" by comparing the naming map to
        // a string constant.
        let naming = m.db.naming_attr(m.musicians).unwrap();
        let edith_str = m.db.str("Edith");
        let strings = m.db.predefined(BaseKind::Strings);
        let atom = Atom::new(
            Map::single(naming),
            CompareOp::SetEq,
            Rhs::constant(strings, [edith_str]),
        );
        let pred = Predicate::dnf(vec![Clause::new(vec![atom])]);
        let sel = m.db.evaluate_derived_members(m.musicians, &pred).unwrap();
        assert_eq!(sel.as_slice(), &[m.edith]);
    }

    #[test]
    fn commit_membership_on_enumerated_subclass_converts_it() {
        let mut m = mini();
        let sub = m.db.create_subclass(m.groups, "somegroups").unwrap();
        let pred = quartets_predicate(&mut m);
        m.db.commit_membership(sub, pred).unwrap();
        assert!(m.db.class(sub).unwrap().is_derived());
        assert!(m.db.members(sub).unwrap().contains(m.q1));
    }

    /// `compare_single` must agree with `compare_sets` for every
    /// operator on every lhs shape it claims to handle: lhs = ∅ (NULL
    /// cell) and lhs = {v}, against rhs sets of size 0, 1, and 2, with
    /// and without v ∈ rhs. Ordering operators must refuse.
    #[test]
    fn compare_single_matches_compare_sets_exhaustively() {
        let db = Database::new("kernel");
        let v = EntityId::from_raw(7);
        let w = EntityId::from_raw(8);
        let u = EntityId::from_raw(9);
        let rhs_shapes: Vec<OrderedSet> = vec![
            OrderedSet::new(),
            [v].into_iter().collect(),
            [w].into_iter().collect(),
            [v, w].into_iter().collect(),
            [w, u].into_iter().collect(),
        ];
        let ops = [
            CompareOp::SetEq,
            CompareOp::Subset,
            CompareOp::Superset,
            CompareOp::ProperSubset,
            CompareOp::ProperSuperset,
            CompareOp::Match,
        ];
        for cell in [EntityId::NULL, v] {
            let lhs: OrderedSet = if cell.is_null() {
                OrderedSet::new()
            } else {
                [cell].into_iter().collect()
            };
            for rhs in &rhs_shapes {
                for op in ops {
                    let want = db.compare_sets(&lhs, op, rhs).unwrap();
                    assert_eq!(
                        compare_single(cell, op, rhs),
                        Some(want),
                        "cell={cell:?} op={op:?} rhs={rhs:?}"
                    );
                }
                for op in [CompareOp::Lt, CompareOp::Le, CompareOp::Gt, CompareOp::Ge] {
                    assert_eq!(compare_single(cell, op, rhs), None);
                }
            }
        }
    }
}
