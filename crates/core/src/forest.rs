//! The inheritance forest (§2).
//!
//! "The inheritance forest, with arc (X,Y) iff X = parent(Y) … a collection
//! of directed trees, where each tree contains exactly one baseclass node,
//! its root. A grouping node can only be a leaf in these trees."
//!
//! This module exposes the forest as a pure description derived from the
//! database, for the view layer and for tests.

use crate::error::Result;
use crate::ids::{ClassId, SchemaNode};
use crate::Database;

/// One tree of the inheritance forest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForestTree {
    /// The baseclass at the root.
    pub root: ClassId,
    /// The root node with its recursive children.
    pub node: ForestNode,
}

/// A node of a forest tree: a class with its subclasses below and its
/// groupings above (the placement rule of §3.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForestNode {
    /// This class.
    pub class: ClassId,
    /// Grouping leaves attached to this class ("groupings always appear
    /// above their parent class").
    pub groupings: Vec<crate::ids::GroupingId>,
    /// Subclass children ("subclasses below").
    pub children: Vec<ForestNode>,
}

impl ForestNode {
    /// Number of class nodes in this subtree (not counting groupings).
    pub fn class_count(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(ForestNode::class_count)
            .sum::<usize>()
    }

    /// Depth-first iteration over the classes of the subtree.
    pub fn classes(&self) -> Vec<ClassId> {
        let mut out = vec![self.class];
        for c in &self.children {
            out.extend(c.classes());
        }
        out
    }
}

impl Database {
    /// Builds the full inheritance forest: one tree per baseclass, in class
    /// creation order (predefined baseclasses first).
    pub fn inheritance_forest(&self) -> Result<Vec<ForestTree>> {
        let mut trees = Vec::new();
        for (id, rec) in self.classes() {
            if rec.is_base() {
                trees.push(ForestTree {
                    root: id,
                    node: self.forest_node(id)?,
                });
            }
        }
        Ok(trees)
    }

    /// Builds the forest subtree rooted at `class`.
    pub fn forest_node(&self, class: ClassId) -> Result<ForestNode> {
        let rec = self.class(class)?;
        let mut children = Vec::new();
        for &c in &rec.children {
            children.push(self.forest_node(c)?);
        }
        Ok(ForestNode {
            class,
            groupings: rec.groupings.clone(),
            children,
        })
    }

    /// The forest arcs (X, Y) with X = parent(Y), over classes and
    /// groupings, in deterministic order.
    pub fn forest_arcs(&self) -> Result<Vec<(SchemaNode, SchemaNode)>> {
        let mut arcs = Vec::new();
        for (id, rec) in self.classes() {
            if let Some(p) = rec.parent {
                arcs.push((SchemaNode::Class(p), SchemaNode::Class(id)));
            }
        }
        for (gid, g) in self.groupings() {
            arcs.push((SchemaNode::Class(g.parent), SchemaNode::Grouping(gid)));
        }
        Ok(arcs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute::Multiplicity;

    #[test]
    fn forest_shape() {
        let mut db = Database::new("t");
        let m = db.create_baseclass("musicians").unwrap();
        let i = db.create_baseclass("instruments").unwrap();
        let s = db.create_subclass(m, "soloists").unwrap();
        let ps = db.create_subclass(m, "play_strings").unwrap();
        let plays = db
            .create_attribute(m, "plays", i, Multiplicity::Multi)
            .unwrap();
        let g = db.create_grouping(m, "by_instrument", plays).unwrap();
        let forest = db.inheritance_forest().unwrap();
        // 4 predefined + 2 user baseclasses.
        assert_eq!(forest.len(), 6);
        let mtree = forest.iter().find(|t| t.root == m).unwrap();
        assert_eq!(mtree.node.class_count(), 3);
        assert_eq!(mtree.node.groupings, vec![g]);
        assert_eq!(mtree.node.classes(), vec![m, s, ps]);
        let arcs = db.forest_arcs().unwrap();
        assert!(arcs.contains(&(SchemaNode::Class(m), SchemaNode::Class(s))));
        assert!(arcs.contains(&(SchemaNode::Class(m), SchemaNode::Grouping(g))));
        // Every tree root is a baseclass.
        for t in &forest {
            assert!(db.class(t.root).unwrap().is_base());
        }
    }

    #[test]
    fn groupings_are_leaves() {
        // By construction groupings carry no children; the forest node type
        // cannot even represent a grouping with descendants. Verify the arc
        // list never shows a grouping as a source.
        let mut db = Database::new("t");
        let m = db.create_baseclass("m").unwrap();
        let i = db.create_baseclass("i").unwrap();
        let plays = db
            .create_attribute(m, "plays", i, Multiplicity::Multi)
            .unwrap();
        db.create_grouping(m, "g", plays).unwrap();
        for (src, _) in db.forest_arcs().unwrap() {
            assert!(matches!(src, SchemaNode::Class(_)));
        }
    }
}
