//! # isis-core
//!
//! The semantic data model engine behind ISIS (*ISIS: Interface for a
//! Semantic Information System*, SIGMOD 1985) — a modified subset of the
//! Semantic Data Model (SDM) chosen by the paper to be "relationally
//! complete and useful":
//!
//! * **Entities** with unique names, partitioned into disjoint
//!   **baseclasses** (plus the predefined STRINGS / INTEGERS / REALS /
//!   YES-NO baseclasses);
//! * **Classes** in a single-parent **inheritance forest** (with the
//!   paper's §5 multiple-inheritance extension available behind
//!   [`Database::enable_multiple_inheritance`]);
//! * single- and multi-valued **attributes** with value classes, forming
//!   the **semantic network**; attributes may range over groupings;
//! * **groupings** of a class on common values of an attribute;
//! * **maps** (attribute compositions), **predicates** over maps in
//!   DNF/CNF, and **derived subclasses / derived attributes** — the
//!   paper's query mechanism, with "the full power of relational algebra";
//! * **consistency**: every modification preserves the §2 integrity rules,
//!   re-checkable from scratch via [`Database::check_consistency`].
//!
//! The crate is deliberately free of I/O and rendering: persistence lives
//! in `isis-store`, pictures in `isis-views`, interaction in
//! `isis-session`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod atom;
pub mod attribute;
pub mod change;
pub mod class;
pub mod column;
pub mod consistency;
pub mod constraint;
mod data_ops;
mod database;
pub mod entity;
pub mod error;
mod eval;
pub mod fillpattern;
pub mod forest;
pub mod grouping;
pub mod ids;
pub mod image;
pub mod literal;
pub mod map;
pub mod mvcc;
pub mod network;
pub mod op;
pub mod orderedset;
pub mod predicate;
mod schema_ops;

pub use atom::{Atom, Rhs};
pub use attribute::{AttrRecord, AttrValue, Multiplicity, ValueClass};
pub use change::{Change, ChangeSet, DeltaLog, SchemaEdit};
pub use class::{ClassKind, ClassRecord};
pub use column::{AttrColumn, ColumnStats, ValueRef};
pub use consistency::Violation;
pub use constraint::{ConstraintId, ConstraintKind, ConstraintRecord, ConstraintReport};
pub use database::Database;
pub use entity::EntityRecord;
pub use error::{CoreError, Result};
pub use eval::compare_single;
pub use fillpattern::FillPattern;
pub use forest::{ForestNode, ForestTree};
pub use grouping::{GroupingRecord, GroupingSet};
pub use ids::{AttrId, ClassId, EntityId, GroupingId, SchemaNode};
pub use image::DatabaseImage;
pub use literal::{BaseKind, Literal};
pub use map::{Map, MapTrace};
pub use mvcc::{CommitConflict, CommitHook, CommitReceipt, RetryBackoff, SharedDatabase};
pub use network::NetworkArc;
pub use op::{CompareOp, Operator};
pub use orderedset::OrderedSet;
pub use predicate::{AttrDerivation, Clause, NormalForm, Predicate};
pub use schema_ops::ValueClassSpec;
