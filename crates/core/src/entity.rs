//! Entity records.

use crate::ids::ClassId;
use crate::literal::Literal;

/// A stored entity. "An entity corresponds to an object in the application
/// environment. Each entity has a unique name, which is a string." (§2)
///
/// Entities of the predefined baseclasses are interned [`Literal`]s; user
/// entities carry only their name (the value of the baseclass's naming
/// attribute).
#[derive(Debug, Clone, PartialEq)]
pub struct EntityRecord {
    /// The value of the naming attribute; unique within the baseclass.
    pub name: String,
    /// The single baseclass this entity belongs to.
    pub base: ClassId,
    /// The interned literal, for entities of predefined baseclasses.
    pub literal: Option<Literal>,
    /// Tombstone flag; deleted entities keep their slot so ids stay dense.
    pub alive: bool,
}

impl EntityRecord {
    /// A user entity named `name` in baseclass `base`.
    pub fn user(name: impl Into<String>, base: ClassId) -> Self {
        EntityRecord {
            name: name.into(),
            base,
            literal: None,
            alive: true,
        }
    }

    /// An interned literal entity.
    pub fn literal(lit: Literal, base: ClassId) -> Self {
        EntityRecord {
            name: lit.display_name(),
            base,
            literal: Some(lit),
            alive: true,
        }
    }

    /// `true` for interned literals of predefined baseclasses.
    pub fn is_literal(&self) -> bool {
        self.literal.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn user_entity_has_no_literal() {
        let e = EntityRecord::user("flute", ClassId::from_raw(4));
        assert!(!e.is_literal());
        assert!(e.alive);
        assert_eq!(e.name, "flute");
    }

    #[test]
    fn literal_entity_named_after_literal() {
        let e = EntityRecord::literal(Literal::Int(4), ClassId::from_raw(1));
        assert!(e.is_literal());
        assert_eq!(e.name, "4");
    }
}
