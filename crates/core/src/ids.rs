//! Typed identifiers for the objects managed by an ISIS database.
//!
//! Every schema object (class, attribute, grouping) and every entity is
//! addressed by a small dense integer id allocated by the [`Database`].
//! Newtypes keep the id spaces from being confused with one another and let
//! arenas be indexed without hashing.
//!
//! [`Database`]: crate::Database

use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub(crate) u32);

        impl $name {
            /// Creates an id from its raw index. Intended for tests and for
            /// deserialization; ids are normally allocated by the database.
            pub fn from_raw(raw: u32) -> Self {
                Self(raw)
            }

            /// Returns the raw dense index behind this id.
            pub fn raw(self) -> u32 {
                self.0
            }

            /// Returns the id as a `usize` suitable for arena indexing.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", $prefix, self.0)
            }
        }
    };
}

define_id!(
    /// Identifies a class (baseclass or subclass) in the schema.
    ClassId,
    "c"
);
define_id!(
    /// Identifies an attribute in the schema.
    AttrId,
    "a"
);
define_id!(
    /// Identifies a grouping node in the schema.
    GroupingId,
    "g"
);
define_id!(
    /// Identifies an entity in the data plane.
    EntityId,
    "e"
);

impl EntityId {
    /// The distinguished *null entity*, assumed by the paper to be a member
    /// of every class. It is the default value of every singlevalued
    /// attribute that has not been assigned.
    pub const NULL: EntityId = EntityId(0);

    /// Returns `true` if this is the null entity.
    pub fn is_null(self) -> bool {
        self == Self::NULL
    }
}

/// A node of the schema: either a class or a grouping.
///
/// The paper's *inheritance forest* and *semantic network* are graphs over
/// this node set. Groupings may only appear as leaves of the forest and have
/// no outgoing arcs in the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SchemaNode {
    /// A class node.
    Class(ClassId),
    /// A grouping node.
    Grouping(GroupingId),
}

impl SchemaNode {
    /// Returns the class id if this node is a class.
    pub fn as_class(self) -> Option<ClassId> {
        match self {
            SchemaNode::Class(c) => Some(c),
            SchemaNode::Grouping(_) => None,
        }
    }

    /// Returns the grouping id if this node is a grouping.
    pub fn as_grouping(self) -> Option<GroupingId> {
        match self {
            SchemaNode::Grouping(g) => Some(g),
            SchemaNode::Class(_) => None,
        }
    }
}

impl fmt::Display for SchemaNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaNode::Class(c) => write!(f, "{c}"),
            SchemaNode::Grouping(g) => write!(f, "{g}"),
        }
    }
}

impl From<ClassId> for SchemaNode {
    fn from(c: ClassId) -> Self {
        SchemaNode::Class(c)
    }
}

impl From<GroupingId> for SchemaNode {
    fn from(g: GroupingId) -> Self {
        SchemaNode::Grouping(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_roundtrip() {
        let c = ClassId::from_raw(7);
        assert_eq!(c.raw(), 7);
        assert_eq!(c.index(), 7);
        assert_eq!(c.to_string(), "c7");
    }

    #[test]
    fn null_entity_is_zero() {
        assert!(EntityId::NULL.is_null());
        assert!(!EntityId::from_raw(1).is_null());
        assert_eq!(EntityId::NULL.raw(), 0);
    }

    #[test]
    fn schema_node_projections() {
        let c = SchemaNode::Class(ClassId::from_raw(3));
        let g = SchemaNode::Grouping(GroupingId::from_raw(4));
        assert_eq!(c.as_class(), Some(ClassId::from_raw(3)));
        assert_eq!(c.as_grouping(), None);
        assert_eq!(g.as_grouping(), Some(GroupingId::from_raw(4)));
        assert_eq!(g.as_class(), None);
    }

    #[test]
    fn schema_node_display_and_from() {
        let c: SchemaNode = ClassId::from_raw(1).into();
        let g: SchemaNode = GroupingId::from_raw(2).into();
        assert_eq!(c.to_string(), "c1");
        assert_eq!(g.to_string(), "g2");
    }

    #[test]
    fn ids_are_ordered_by_raw_value() {
        assert!(EntityId::from_raw(1) < EntityId::from_raw(2));
        assert!(ClassId::from_raw(0) < ClassId::from_raw(10));
    }
}
