//! Integrity constraints — the paper's §5 second future-work item:
//!
//! "Second, we would like to be able to specify arbitrarily complex
//! predicates in a similar graphical way as a part of an integrity
//! constraint specification system. For example, how would a user specify
//! that an employee cannot earn more than his/her manager using only a
//! screen and a pointing device?"
//!
//! A constraint reuses the worksheet's predicate language: it names a
//! class and a predicate over that class's members, read either as
//! *for-all* (every member must satisfy it) or *forbidden* (no member may
//! satisfy it). The manager example is the forbidden predicate
//! `salary(e) > manager salary(e)` over employees.
//!
//! Constraints are checked on demand ([`Database::check_constraint`]) or
//! transactionally ([`Database::apply_checked`], which rolls a mutation
//! back if it introduces a violation). Entities on which a predicate is
//! *inapplicable* (e.g. an ordering atom over an unassigned singlevalued
//! attribute) are reported separately, not treated as violations.

use std::fmt;

use crate::error::{CoreError, Result};
use crate::ids::{ClassId, EntityId};
use crate::predicate::Predicate;
use crate::Database;

/// Identifies a constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConstraintId(pub(crate) u32);

impl ConstraintId {
    /// Creates an id from its raw index.
    pub fn from_raw(raw: u32) -> Self {
        ConstraintId(raw)
    }

    /// The raw dense index.
    pub fn raw(self) -> u32 {
        self.0
    }

    /// The id as a `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ConstraintId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k{}", self.0)
    }
}

/// How a constraint's predicate is read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstraintKind {
    /// Every member of the class must satisfy the predicate.
    ForAll,
    /// No member of the class may satisfy the predicate.
    Forbidden,
}

/// A stored constraint.
#[derive(Debug, Clone, PartialEq)]
pub struct ConstraintRecord {
    /// The constraint name, unique among constraints.
    pub name: String,
    /// The class whose members are constrained.
    pub class: ClassId,
    /// The predicate, in the worksheet's language.
    pub predicate: Predicate,
    /// For-all or forbidden reading.
    pub kind: ConstraintKind,
    /// Tombstone flag.
    pub alive: bool,
}

/// The outcome of checking one constraint.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ConstraintReport {
    /// Members violating the constraint.
    pub violators: Vec<EntityId>,
    /// Members on which the predicate was inapplicable (evaluation
    /// errored, e.g. ordering over a null value), with the error text.
    pub inapplicable: Vec<(EntityId, String)>,
}

impl ConstraintReport {
    /// `true` when no member violates the constraint.
    pub fn holds(&self) -> bool {
        self.violators.is_empty()
    }
}

impl Database {
    /// Declares a constraint. The predicate is validated against the
    /// class's schema (like a derived-subclass predicate). The constraint
    /// is *not* retroactively enforced — existing violations are reported
    /// by [`Database::check_constraint`].
    pub fn create_constraint(
        &mut self,
        name: &str,
        class: ClassId,
        predicate: Predicate,
        kind: ConstraintKind,
    ) -> Result<ConstraintId> {
        if name.is_empty() {
            return Err(CoreError::InvalidLiteral("empty constraint name".into()));
        }
        if self.constraints().any(|(_, c)| c.name == name) {
            return Err(CoreError::DuplicateName(name.into()));
        }
        self.class(class)?;
        self.validate_predicate(class, None, &predicate)?;
        let id = ConstraintId(self.constraint_arena().len() as u32);
        self.constraint_arena_mut().push(ConstraintRecord {
            name: name.to_string(),
            class,
            predicate,
            kind,
            alive: true,
        });
        Ok(id)
    }

    /// Deletes a constraint.
    pub fn delete_constraint(&mut self, id: ConstraintId) -> Result<()> {
        let rec = self
            .constraint_arena_mut()
            .get_mut(id.index())
            .filter(|c| c.alive)
            .ok_or(CoreError::NameNotFound(format!("constraint {id}")))?;
        rec.alive = false;
        Ok(())
    }

    /// The record of a live constraint.
    pub fn constraint(&self, id: ConstraintId) -> Result<&ConstraintRecord> {
        self.constraint_arena()
            .get(id.index())
            .filter(|c| c.alive)
            .ok_or(CoreError::NameNotFound(format!("constraint {id}")))
    }

    /// Iterates live constraints.
    pub fn constraints(&self) -> impl Iterator<Item = (ConstraintId, &ConstraintRecord)> {
        self.constraint_arena()
            .iter()
            .enumerate()
            .filter(|(_, c)| c.alive)
            .map(|(i, c)| (ConstraintId(i as u32), c))
    }

    /// Finds a constraint by name.
    pub fn constraint_by_name(&self, name: &str) -> Result<ConstraintId> {
        self.constraints()
            .find(|(_, c)| c.name == name)
            .map(|(id, _)| id)
            .ok_or_else(|| CoreError::NameNotFound(name.into()))
    }

    /// Checks one constraint, reporting violators and inapplicable members.
    pub fn check_constraint(&self, id: ConstraintId) -> Result<ConstraintReport> {
        let rec = self.constraint(id)?.clone();
        let mut report = ConstraintReport::default();
        for e in self.class(rec.class)?.members.iter().collect::<Vec<_>>() {
            match self.eval_predicate_for(e, &rec.predicate, None) {
                Ok(sat) => {
                    let violates = match rec.kind {
                        ConstraintKind::ForAll => !sat,
                        ConstraintKind::Forbidden => sat,
                    };
                    if violates {
                        report.violators.push(e);
                    }
                }
                Err(err) => report.inapplicable.push((e, err.to_string())),
            }
        }
        Ok(report)
    }

    /// Checks every constraint, returning the ids that do not hold.
    pub fn check_all_constraints(&self) -> Result<Vec<(ConstraintId, ConstraintReport)>> {
        let mut out = Vec::new();
        for (id, _) in self.constraints().collect::<Vec<_>>() {
            let report = self.check_constraint(id)?;
            if !report.holds() {
                out.push((id, report));
            }
        }
        Ok(out)
    }

    /// Runs a mutation transactionally against the constraints: if, after
    /// `f`, any constraint that held before no longer holds, the database
    /// is rolled back and the first offending constraint reported.
    /// (Constraints already violated beforehand are grandfathered — the
    /// mutation is only required not to make things worse.)
    pub fn apply_checked<T>(&mut self, f: impl FnOnce(&mut Database) -> Result<T>) -> Result<T> {
        let held_before: Vec<ConstraintId> = self
            .constraints()
            .map(|(id, _)| id)
            .collect::<Vec<_>>()
            .into_iter()
            .filter(|id| {
                self.check_constraint(*id)
                    .map(|r| r.holds())
                    .unwrap_or(false)
            })
            .collect();
        let backup = self.clone();
        let out = match f(self) {
            Ok(v) => v,
            Err(e) => {
                *self = backup;
                return Err(e);
            }
        };
        for id in held_before {
            let report = self.check_constraint(id)?;
            if !report.holds() {
                let name = self.constraint(id)?.name.clone();
                *self = backup;
                return Err(CoreError::Inconsistent(format!(
                    "constraint {name:?} violated by {} entities",
                    report.violators.len()
                )));
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::{Atom, Rhs};
    use crate::attribute::Multiplicity;
    use crate::literal::BaseKind;
    use crate::map::Map;
    use crate::op::CompareOp;
    use crate::predicate::Clause;

    /// The paper's example: employees, salaries, managers.
    struct Office {
        db: Database,
        employees: ClassId,
        salary: crate::ids::AttrId,
        manager: crate::ids::AttrId,
        alice: EntityId,
        bob: EntityId,
        carol: EntityId,
    }

    fn office() -> Office {
        let mut db = Database::new("office");
        let employees = db.create_baseclass("employees").unwrap();
        let ints = db.predefined(BaseKind::Integers);
        let salary = db
            .create_attribute(employees, "salary", ints, Multiplicity::Single)
            .unwrap();
        let manager = db
            .create_attribute(employees, "manager", employees, Multiplicity::Single)
            .unwrap();
        let alice = db.insert_entity(employees, "Alice").unwrap();
        let bob = db.insert_entity(employees, "Bob").unwrap();
        let carol = db.insert_entity(employees, "Carol").unwrap();
        let s90 = db.int(90);
        let s60 = db.int(60);
        let s50 = db.int(50);
        db.assign_single(alice, salary, s90).unwrap(); // the boss
        db.assign_single(bob, salary, s60).unwrap();
        db.assign_single(carol, salary, s50).unwrap();
        db.assign_single(bob, manager, alice).unwrap();
        db.assign_single(carol, manager, bob).unwrap();
        Office {
            db,
            employees,
            salary,
            manager,
            alice,
            bob,
            carol,
        }
    }

    /// `salary(e) > manager salary(e)` — the forbidden predicate.
    fn overpaid_predicate(o: &Office) -> Predicate {
        Predicate::dnf(vec![Clause::new(vec![Atom::new(
            Map::single(o.salary),
            CompareOp::Gt,
            Rhs::SelfMap(Map::new(vec![o.manager, o.salary])),
        )])])
    }

    #[test]
    fn the_papers_manager_constraint() {
        let mut o = office();
        let k =
            o.db.create_constraint(
                "no_overpaid",
                o.employees,
                overpaid_predicate(&o),
                ConstraintKind::Forbidden,
            )
            .unwrap();
        let report = o.db.check_constraint(k).unwrap();
        assert!(report.holds(), "violators: {:?}", report.violators);
        // Alice has no manager: the ordering atom is inapplicable to her,
        // which is not a violation.
        assert_eq!(report.inapplicable.len(), 1);
        assert_eq!(report.inapplicable[0].0, o.alice);
        // Now give Carol a raise above Bob: the constraint catches it.
        let s70 = o.db.int(70);
        o.db.assign_single(o.carol, o.salary, s70).unwrap();
        let report = o.db.check_constraint(k).unwrap();
        assert_eq!(report.violators, vec![o.carol]);
    }

    #[test]
    fn apply_checked_rolls_back_violations() {
        let mut o = office();
        o.db.create_constraint(
            "no_overpaid",
            o.employees,
            overpaid_predicate(&o),
            ConstraintKind::Forbidden,
        )
        .unwrap();
        let before = o.db.to_image();
        let carol = o.carol;
        let salary = o.salary;
        let err =
            o.db.apply_checked(|db| {
                let s99 = db.int(99);
                db.assign_single(carol, salary, s99)
            })
            .unwrap_err();
        assert!(matches!(err, CoreError::Inconsistent(_)));
        assert_eq!(o.db.to_image(), before, "rolled back");
        // A legal raise goes through.
        o.db.apply_checked(|db| {
            let s55 = db.int(55);
            db.assign_single(carol, salary, s55)
        })
        .unwrap();
        assert_ne!(o.db.to_image(), before);
    }

    #[test]
    fn apply_checked_rolls_back_on_inner_error() {
        let mut o = office();
        let before = o.db.to_image();
        let carol = o.carol;
        let err =
            o.db.apply_checked(|db| {
                let s1 = db.int(1);
                db.assign_single(carol, o.salary, s1)?;
                Err::<(), _>(CoreError::Predefined)
            })
            .unwrap_err();
        assert_eq!(err, CoreError::Predefined);
        assert_eq!(o.db.to_image(), before);
    }

    #[test]
    fn forall_constraints() {
        let mut o = office();
        // Everyone must earn at least 10.
        let ten = o.db.int(10);
        let ints = o.db.predefined(BaseKind::Integers);
        let k =
            o.db.create_constraint(
                "living_wage",
                o.employees,
                Predicate::dnf(vec![Clause::new(vec![Atom::new(
                    Map::single(o.salary),
                    CompareOp::Ge,
                    Rhs::constant(ints, [ten]),
                )])]),
                ConstraintKind::ForAll,
            )
            .unwrap();
        assert!(o.db.check_constraint(k).unwrap().holds());
        let five = o.db.int(5);
        o.db.assign_single(o.bob, o.salary, five).unwrap();
        let report = o.db.check_constraint(k).unwrap();
        assert_eq!(report.violators, vec![o.bob]);
        assert_eq!(o.db.check_all_constraints().unwrap().len(), 1);
    }

    #[test]
    fn constraint_management() {
        let mut o = office();
        let pred = overpaid_predicate(&o);
        let k =
            o.db.create_constraint("c1", o.employees, pred.clone(), ConstraintKind::Forbidden)
                .unwrap();
        assert_eq!(o.db.constraint_by_name("c1").unwrap(), k);
        // Duplicate names refused.
        assert!(o
            .db
            .create_constraint("c1", o.employees, pred.clone(), ConstraintKind::Forbidden)
            .is_err());
        // Bad predicates refused (map not on the class).
        let mut db2 = Database::new("x");
        let other = db2.create_baseclass("other").unwrap();
        let _ = other;
        assert!(o
            .db
            .create_constraint(
                "bad",
                o.db.predefined(BaseKind::Strings),
                pred,
                ConstraintKind::ForAll
            )
            .is_err());
        o.db.delete_constraint(k).unwrap();
        assert!(o.db.constraint_by_name("c1").is_err());
        assert!(o.db.delete_constraint(k).is_err());
        assert_eq!(o.db.constraints().count(), 0);
    }

    #[test]
    fn grandfathered_violations_do_not_block_unrelated_changes() {
        let mut o = office();
        // Create the constraint already violated…
        let s99 = o.db.int(99);
        o.db.assign_single(o.carol, o.salary, s99).unwrap();
        o.db.create_constraint(
            "no_overpaid",
            o.employees,
            overpaid_predicate(&o),
            ConstraintKind::Forbidden,
        )
        .unwrap();
        // …then an unrelated change still goes through.
        let employees = o.employees;
        o.db.apply_checked(|db| db.insert_entity(employees, "Dave").map(|_| ()))
            .unwrap();
        assert!(o.db.entity_by_name(o.employees, "Dave").is_ok());
    }
}
