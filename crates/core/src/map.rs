//! Maps: compositions of attributes (§2).
//!
//! "Let x be an entity of C, and Aᵢ: Cᵢ → Cᵢ₊₁ … We call A₁A₂…Aₙ (n ≥ 1) a
//! *map* (from C₁ to Cₙ₊₁). For n = 0 we have the *identity map*."
//!
//! A map is evaluated set-at-a-time: each step applies an attribute to every
//! entity in the current set and unions the results. Attributes whose value
//! class is a grouping step into the grouping's *parent* class (the paper
//! treats such an attribute `B: S → G` as `B: S ↔ parent(G)`).

use std::fmt;

use crate::ids::{AttrId, ClassId};

/// A (possibly identity) composition of attributes.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Map {
    steps: Vec<AttrId>,
}

impl Map {
    /// The identity map (n = 0): maps x to {x}.
    pub fn identity() -> Self {
        Map { steps: Vec::new() }
    }

    /// A map consisting of the given attribute steps, applied left to right.
    pub fn new(steps: Vec<AttrId>) -> Self {
        Map { steps }
    }

    /// A single-attribute map.
    pub fn single(attr: AttrId) -> Self {
        Map { steps: vec![attr] }
    }

    /// The attribute steps, in application order.
    pub fn steps(&self) -> &[AttrId] {
        &self.steps
    }

    /// `true` for the identity map.
    pub fn is_identity(&self) -> bool {
        self.steps.is_empty()
    }

    /// Appends a step (used by the predicate worksheet as the user picks map
    /// attributes, "forming a stack of classes").
    pub fn push(&mut self, attr: AttrId) {
        self.steps.push(attr);
    }

    /// Removes the last step, if any (worksheet editing).
    pub fn pop(&mut self) -> Option<AttrId> {
        self.steps.pop()
    }

    /// Number of steps (0 for identity).
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// `true` if the map has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

impl fmt::Display for Map {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.steps.is_empty() {
            return write!(f, "·");
        }
        for (i, a) in self.steps.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

/// The outcome of type-checking a map against the schema: the class each
/// prefix of the map reaches, starting with the source class.
///
/// This is exactly the "stack of classes" the predicate worksheet displays
/// as the user builds a map (§3.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MapTrace {
    /// `classes[0]` is the source class; `classes[i]` the class reached
    /// after `i` steps. Length is `steps + 1`.
    pub classes: Vec<ClassId>,
    /// `true` if any step is multivalued or grouping-ranged, in which case
    /// the map as a whole is set-valued even from a single entity.
    pub multivalued: bool,
}

impl MapTrace {
    /// The class the full map terminates in.
    pub fn terminal(&self) -> ClassId {
        *self
            .classes
            .last()
            .expect("MapTrace always contains the source class")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(i: u32) -> AttrId {
        AttrId::from_raw(i)
    }

    #[test]
    fn identity_map() {
        let m = Map::identity();
        assert!(m.is_identity());
        assert_eq!(m.len(), 0);
        assert_eq!(m.to_string(), "·");
    }

    #[test]
    fn push_pop() {
        let mut m = Map::identity();
        m.push(a(1));
        m.push(a(2));
        assert_eq!(m.steps(), &[a(1), a(2)]);
        assert_eq!(m.pop(), Some(a(2)));
        assert_eq!(m.steps(), &[a(1)]);
    }

    #[test]
    fn display_space_separated() {
        let m = Map::new(vec![a(1), a(2)]);
        assert_eq!(m.to_string(), "a1 a2");
    }

    #[test]
    fn trace_terminal() {
        let t = MapTrace {
            classes: vec![ClassId::from_raw(1), ClassId::from_raw(2)],
            multivalued: false,
        };
        assert_eq!(t.terminal(), ClassId::from_raw(2));
    }
}
