//! Grouping records (§2).
//!
//! "Let A be an attribute of a class C with value class V, then *grouping* G
//! of C on A is the following family of subsets of C indexed by the members
//! of V: G = { Sₑ | entity e in V, and entity x of C is in Sₑ iff e ∈ A(x) }."
//!
//! Groupings have no attributes, subclasses or groupings of their own, and
//! are "completely determined from \[their\] parent class and an attribute" —
//! so the engine stores only `(parent, attribute)` and computes the family
//! of sets on demand (see [`Database::grouping_sets`]).
//!
//! [`Database::grouping_sets`]: crate::Database::grouping_sets

use crate::fillpattern::FillPattern;
use crate::ids::{AttrId, ClassId, EntityId};
use crate::orderedset::OrderedSet;

/// A stored grouping node.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupingRecord {
    /// The grouping name, unique among classes and groupings.
    pub name: String,
    /// `parent(G)`: the class whose members are being grouped.
    pub parent: ClassId,
    /// The attribute of `parent` whose common values index the sets. The
    /// semantic-network node is labelled with this attribute.
    pub on_attr: AttrId,
    /// The fill pattern (drawn with a white border, since members are sets).
    pub fill: FillPattern,
    /// Tombstone flag.
    pub alive: bool,
}

/// One set of a grouping's family, indexed by an entity of the attribute's
/// value class.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupingSet {
    /// The index entity `e ∈ V` naming this set.
    pub index: EntityId,
    /// `Sₑ = { x ∈ C | e ∈ A(x) }`, in parent-extent order.
    pub members: OrderedSet,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_construction() {
        let g = GroupingRecord {
            name: "by_family".into(),
            parent: ClassId::from_raw(5),
            on_attr: AttrId::from_raw(7),
            fill: FillPattern::nth(3),
            alive: true,
        };
        assert_eq!(g.name, "by_family");
        assert_eq!(g.parent, ClassId::from_raw(5));
    }
}
