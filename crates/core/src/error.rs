//! Error type for the data-model engine.

use std::fmt;

use crate::ids::{AttrId, ClassId, EntityId, GroupingId};

/// Errors raised by schema and data operations.
///
/// Every variant corresponds to a rule the paper's "integrity" remark (§2)
/// imposes, or to a malformed reference.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A class id does not name a live class.
    NoSuchClass(ClassId),
    /// An attribute id does not name a live attribute.
    NoSuchAttr(AttrId),
    /// A grouping id does not name a live grouping.
    NoSuchGrouping(GroupingId),
    /// An entity id does not name a live entity.
    NoSuchEntity(EntityId),
    /// A name lookup failed.
    NameNotFound(String),
    /// A sibling object with this name already exists.
    DuplicateName(String),
    /// Entity names must be unique within a baseclass.
    DuplicateEntityName {
        /// The baseclass in which the collision occurred.
        base: ClassId,
        /// The colliding name.
        name: String,
    },
    /// The entity is not a member of the class the operation requires.
    NotAMember {
        /// The entity in question.
        entity: EntityId,
        /// The class it is not a member of.
        class: ClassId,
    },
    /// An attribute is not defined (directly or by inheritance) on a class.
    AttrNotOnClass {
        /// The attribute.
        attr: AttrId,
        /// The class it is not defined on.
        class: ClassId,
    },
    /// The value assigned to an attribute is not drawn from its value class.
    ValueNotInValueClass {
        /// The attribute being assigned.
        attr: AttrId,
        /// The offending value.
        value: EntityId,
    },
    /// A set was assigned to a singlevalued attribute.
    SingleValuedAttr(AttrId),
    /// A class cannot be deleted while it is the parent of another class,
    /// the parent of a grouping, or the value class of an attribute.
    ClassInUse(ClassId),
    /// A grouping cannot be deleted while it is the value class of an
    /// attribute.
    GroupingInUse(GroupingId),
    /// Predefined baseclasses and their naming attributes cannot be
    /// modified or deleted.
    Predefined,
    /// Entities of predefined baseclasses (interned literals) are immutable.
    LiteralEntity(EntityId),
    /// Direct insertion into a derived (predicate-defined) subclass is not
    /// allowed; its membership is determined by its predicate.
    DerivedClass(ClassId),
    /// A literal was malformed (e.g. NaN real).
    InvalidLiteral(String),
    /// A map step was applied to a class it is not defined on.
    InvalidMapStep {
        /// The attribute used as the step.
        attr: AttrId,
        /// The class the map had reached.
        class: ClassId,
    },
    /// An ordering operator compared non-singleton or non-comparable sets.
    NotComparable(String),
    /// The operation would violate schema/data consistency.
    Inconsistent(String),
    /// Multiple inheritance was used without being enabled, or misused.
    MultipleInheritance(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::NoSuchClass(c) => write!(f, "no such class: {c}"),
            CoreError::NoSuchAttr(a) => write!(f, "no such attribute: {a}"),
            CoreError::NoSuchGrouping(g) => write!(f, "no such grouping: {g}"),
            CoreError::NoSuchEntity(e) => write!(f, "no such entity: {e}"),
            CoreError::NameNotFound(n) => write!(f, "name not found: {n:?}"),
            CoreError::DuplicateName(n) => write!(f, "duplicate name: {n:?}"),
            CoreError::DuplicateEntityName { base, name } => {
                write!(
                    f,
                    "entity named {name:?} already exists in baseclass {base}"
                )
            }
            CoreError::NotAMember { entity, class } => {
                write!(f, "entity {entity} is not a member of class {class}")
            }
            CoreError::AttrNotOnClass { attr, class } => {
                write!(f, "attribute {attr} is not defined on class {class}")
            }
            CoreError::ValueNotInValueClass { attr, value } => {
                write!(
                    f,
                    "value {value} is not in the value class of attribute {attr}"
                )
            }
            CoreError::SingleValuedAttr(a) => {
                write!(
                    f,
                    "attribute {a} is singlevalued; a single value is required"
                )
            }
            CoreError::ClassInUse(c) => write!(
                f,
                "class {c} cannot be deleted: it is a parent or a value class"
            ),
            CoreError::GroupingInUse(g) => write!(
                f,
                "grouping {g} cannot be deleted: it is the value class of an attribute"
            ),
            CoreError::Predefined => {
                write!(
                    f,
                    "predefined baseclasses and naming attributes are immutable"
                )
            }
            CoreError::LiteralEntity(e) => {
                write!(f, "entity {e} is an interned literal and is immutable")
            }
            CoreError::DerivedClass(c) => write!(
                f,
                "class {c} is derived; its membership is defined by its predicate"
            ),
            CoreError::InvalidLiteral(m) => write!(f, "invalid literal: {m}"),
            CoreError::InvalidMapStep { attr, class } => write!(
                f,
                "map step {attr} is not an attribute of the class {class} reached so far"
            ),
            CoreError::NotComparable(m) => write!(f, "not comparable: {m}"),
            CoreError::Inconsistent(m) => write!(f, "consistency violation: {m}"),
            CoreError::MultipleInheritance(m) => write!(f, "multiple inheritance: {m}"),
        }
    }
}

impl std::error::Error for CoreError {}

/// Convenience alias used throughout the engine.
pub type Result<T, E = CoreError> = std::result::Result<T, E>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_ids() {
        let e = CoreError::NotAMember {
            entity: EntityId::from_raw(4),
            class: ClassId::from_raw(2),
        };
        let s = e.to_string();
        assert!(s.contains("e4"));
        assert!(s.contains("c2"));
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_e: &dyn std::error::Error) {}
        takes_err(&CoreError::Predefined);
    }
}
