//! Schema-level modification operations: creating, renaming and deleting
//! classes, attributes and groupings (§2, §3.2).

use crate::attribute::{AttrRecord, Multiplicity, ValueClass};
use crate::change::{ChangeSet, SchemaEdit};
use crate::class::{ClassKind, ClassRecord};
use crate::error::{CoreError, Result};
use crate::fillpattern::FillPattern;
use crate::grouping::GroupingRecord;
use crate::ids::{AttrId, ClassId, GroupingId};
use crate::orderedset::OrderedSet;
use crate::Database;

impl Database {
    fn next_fill(&mut self) -> FillPattern {
        let f = FillPattern::nth(self.fill_counter);
        self.fill_counter += 1;
        f
    }

    fn check_schema_name(&self, name: &str) -> Result<()> {
        if name.is_empty() {
            return Err(CoreError::InvalidLiteral("empty name".into()));
        }
        if self.schema_name_taken(name) {
            return Err(CoreError::DuplicateName(name.into()));
        }
        Ok(())
    }

    /// Creates a user baseclass. A naming attribute into STRINGS is added
    /// automatically as its first attribute.
    pub fn create_baseclass(&mut self, name: &str) -> Result<ClassId> {
        self.check_schema_name(name)?;
        let id = ClassId::from_raw(self.classes.len() as u32);
        let fill = self.next_fill();
        self.classes.push(ClassRecord {
            name: name.to_string(),
            parent: None,
            base: id,
            kind: ClassKind::Base(None),
            fill,
            own_attrs: Vec::new(),
            children: Vec::new(),
            groupings: Vec::new(),
            members: OrderedSet::new(),
            extra_parents: Vec::new(),
            alive: true,
        });
        let naming = self.push_naming_attr(id);
        self.record_schema(SchemaEdit::ClassCreated(id));
        self.record_schema(SchemaEdit::AttrCreated(naming));
        Ok(id)
    }

    fn push_subclass(&mut self, parent: ClassId, name: &str, kind: ClassKind) -> Result<ClassId> {
        self.check_schema_name(name)?;
        let base = self.class(parent)?.base;
        let id = ClassId::from_raw(self.classes.len() as u32);
        let fill = self.next_fill();
        self.classes.push(ClassRecord {
            name: name.to_string(),
            parent: Some(parent),
            base,
            kind,
            fill,
            own_attrs: Vec::new(),
            children: Vec::new(),
            groupings: Vec::new(),
            members: OrderedSet::new(),
            extra_parents: Vec::new(),
            alive: true,
        });
        self.classes[parent.index()].children.push(id);
        self.record_schema(SchemaEdit::ClassCreated(id));
        Ok(id)
    }

    /// Creates an enumerated (hand-picked) subclass of `parent`, initially
    /// empty. This is the *create subclass* / *make subclass* menu command.
    pub fn create_subclass(&mut self, parent: ClassId, name: &str) -> Result<ClassId> {
        self.push_subclass(parent, name, ClassKind::Enumerated)
    }

    /// Creates a derived subclass of `parent` with an initially-empty
    /// predicate (always true, so the class is empty until a predicate is
    /// committed — the worksheet flow of §4.2). Use
    /// [`Database::commit_membership`] to install and evaluate a predicate.
    pub fn create_derived_subclass(&mut self, parent: ClassId, name: &str) -> Result<ClassId> {
        self.push_subclass(
            parent,
            name,
            ClassKind::Derived(crate::predicate::Predicate::always_false()),
        )
    }

    /// Renames a class ((re)name menu command).
    pub fn rename_class(&mut self, class: ClassId, name: &str) -> Result<ChangeSet> {
        if self.class(class)?.is_predefined() {
            return Err(CoreError::Predefined);
        }
        if self.class(class)?.name == name {
            return Ok(ChangeSet::new());
        }
        self.check_schema_name(name)?;
        let mark = self.delta_epoch();
        self.class_mut(class)?.name = name.to_string();
        self.record_schema(SchemaEdit::ClassRenamed(class));
        Ok(self.delta_suffix(mark))
    }

    /// Renames a grouping.
    pub fn rename_grouping(&mut self, grouping: GroupingId, name: &str) -> Result<ChangeSet> {
        if self.grouping(grouping)?.name == name {
            return Ok(ChangeSet::new());
        }
        self.check_schema_name(name)?;
        let mark = self.delta_epoch();
        self.groupings[grouping.index()].name = name.to_string();
        self.record_schema(SchemaEdit::GroupingRenamed(grouping));
        Ok(self.delta_suffix(mark))
    }

    /// Deletes a class. Refused while the class "is the parent of some other
    /// class or the value class of some attribute" (§2), has groupings, or
    /// is predefined. The class's own attributes are deleted with it.
    pub fn delete_class(&mut self, class: ClassId) -> Result<ChangeSet> {
        let rec = self.class(class)?;
        if rec.is_predefined() {
            return Err(CoreError::Predefined);
        }
        if !rec.children.is_empty() || !rec.groupings.is_empty() {
            return Err(CoreError::ClassInUse(class));
        }
        if self.attrs().any(|(a, r)| {
            r.value_class == ValueClass::Class(class)
                && r.owner != class
                && self.attrs[a.index()].alive
        }) {
            return Err(CoreError::ClassInUse(class));
        }
        if self
            .classes()
            .any(|(c, r)| c != class && r.extra_parents.contains(&class))
        {
            return Err(CoreError::ClassInUse(class));
        }
        let mark = self.delta_epoch();
        // Baseclass deletion also deletes its entities.
        if self.class(class)?.is_base() {
            let members: Vec<_> = self.class(class)?.members.iter().collect();
            for e in members {
                self.delete_entity(e)?;
            }
        }
        let own: Vec<AttrId> = self.class(class)?.own_attrs.clone();
        for a in own {
            self.attrs[a.index()].alive = false;
            self.attrs[a.index()].values.clear();
            self.record_schema(SchemaEdit::AttrDeleted(a));
        }
        if let Some(p) = self.class(class)?.parent {
            self.classes[p.index()].children.retain(|&c| c != class);
        }
        let rec = &mut self.classes[class.index()];
        rec.alive = false;
        rec.members.clear();
        rec.own_attrs.clear();
        self.record_schema(SchemaEdit::ClassDeleted(class));
        Ok(self.delta_suffix(mark))
    }

    /// Creates an attribute on `class` drawing values from `value_class`.
    ///
    /// The name must not collide with any attribute visible on `class` or
    /// owned by any of its descendants (which would shadow inheritance).
    pub fn create_attribute(
        &mut self,
        class: ClassId,
        name: &str,
        value_class: impl Into<ValueClassSpec>,
        multiplicity: Multiplicity,
    ) -> Result<AttrId> {
        if name.is_empty() {
            return Err(CoreError::InvalidLiteral("empty attribute name".into()));
        }
        let value_class = match value_class.into() {
            ValueClassSpec::Class(c) => {
                self.class(c)?;
                ValueClass::Class(c)
            }
            ValueClassSpec::Grouping(g) => {
                self.grouping(g)?;
                ValueClass::Grouping(g)
            }
        };
        self.class(class)?;
        // No collision with visible attributes here …
        for a in self.visible_attrs(class)? {
            if self.attr(a)?.name == name {
                return Err(CoreError::DuplicateName(name.into()));
            }
        }
        // … nor with attributes owned anywhere below (they would collide on
        // the descendant's attribute section).
        for c in self.descendants(class)? {
            for &a in &self.class(c)?.own_attrs {
                if self.attrs[a.index()].alive && self.attrs[a.index()].name == name {
                    return Err(CoreError::DuplicateName(name.into()));
                }
            }
        }
        let id = AttrId::from_raw(self.attrs.len() as u32);
        self.attrs.push(AttrRecord {
            name: name.to_string(),
            owner: class,
            value_class,
            multiplicity,
            naming: false,
            derivation: None,
            values: crate::column::AttrColumn::new(),
            alive: true,
        });
        self.classes[class.index()].own_attrs.push(id);
        self.record_schema(SchemaEdit::AttrCreated(id));
        Ok(id)
    }

    /// Renames an attribute. Naming attributes may be renamed (the paper's
    /// *musicians* baseclass names its entities with *stage_name*), but not
    /// deleted or retargeted.
    pub fn rename_attr(&mut self, attr: AttrId, name: &str) -> Result<ChangeSet> {
        let rec = self.attr(attr)?;
        if rec.naming && self.class(rec.owner)?.is_predefined() {
            return Err(CoreError::Predefined);
        }
        let owner = rec.owner;
        for a in self.visible_attrs(owner)? {
            if a != attr && self.attr(a)?.name == name {
                return Err(CoreError::DuplicateName(name.into()));
            }
        }
        if self.attr(attr)?.name == name {
            return Ok(ChangeSet::new());
        }
        let mark = self.delta_epoch();
        self.attr_mut(attr)?.name = name.to_string();
        self.record_schema(SchemaEdit::AttrRenamed(attr));
        Ok(self.delta_suffix(mark))
    }

    /// (Re)specifies the value class of an attribute ((re)specify value
    /// class menu command). Existing values are cleared, since they were
    /// validated against the old value class.
    pub fn respecify_value_class(
        &mut self,
        attr: AttrId,
        value_class: impl Into<ValueClassSpec>,
    ) -> Result<ChangeSet> {
        if self.attr(attr)?.naming {
            return Err(CoreError::Predefined);
        }
        let vc = match value_class.into() {
            ValueClassSpec::Class(c) => {
                self.class(c)?;
                ValueClass::Class(c)
            }
            ValueClassSpec::Grouping(g) => {
                self.grouping(g)?;
                ValueClass::Grouping(g)
            }
        };
        let mark = self.delta_epoch();
        let rec = self.attr_mut(attr)?;
        rec.value_class = vc;
        rec.values.clear();
        self.record_schema(SchemaEdit::ValueClassChanged(attr));
        Ok(self.delta_suffix(mark))
    }

    /// Deletes an attribute. Refused for naming attributes and for
    /// attributes some grouping is defined on.
    pub fn delete_attr(&mut self, attr: AttrId) -> Result<ChangeSet> {
        if self.attr(attr)?.naming {
            return Err(CoreError::Predefined);
        }
        if self.groupings().any(|(_, g)| g.on_attr == attr) {
            return Err(CoreError::Inconsistent(
                "attribute has a grouping defined on it".into(),
            ));
        }
        let owner = self.attr(attr)?.owner;
        let mark = self.delta_epoch();
        self.classes[owner.index()].own_attrs.retain(|&a| a != attr);
        let rec = &mut self.attrs[attr.index()];
        rec.alive = false;
        rec.values.clear();
        self.record_schema(SchemaEdit::AttrDeleted(attr));
        Ok(self.delta_suffix(mark))
    }

    /// Creates a grouping of `parent` on attribute `attr` ("in ISIS a
    /// grouping is only allowed on common values of an attribute", §1.2).
    /// The attribute must be visible on `parent` and must range over a
    /// class, not over another grouping.
    pub fn create_grouping(
        &mut self,
        parent: ClassId,
        name: &str,
        attr: AttrId,
    ) -> Result<GroupingId> {
        self.check_schema_name(name)?;
        if !self.attr_visible_on(attr, parent)? {
            return Err(CoreError::AttrNotOnClass {
                attr,
                class: parent,
            });
        }
        if matches!(self.attr(attr)?.value_class, ValueClass::Grouping(_)) {
            return Err(CoreError::Inconsistent(
                "cannot group on a grouping-ranged attribute".into(),
            ));
        }
        let id = GroupingId::from_raw(self.groupings.len() as u32);
        let fill = self.next_fill();
        self.groupings.push(GroupingRecord {
            name: name.to_string(),
            parent,
            on_attr: attr,
            fill,
            alive: true,
        });
        self.classes[parent.index()].groupings.push(id);
        self.record_schema(SchemaEdit::GroupingCreated(id));
        Ok(id)
    }

    /// Deletes a grouping. Refused while it is the value class of an
    /// attribute.
    pub fn delete_grouping(&mut self, grouping: GroupingId) -> Result<ChangeSet> {
        self.grouping(grouping)?;
        if self
            .attrs()
            .any(|(_, a)| a.value_class == ValueClass::Grouping(grouping))
        {
            return Err(CoreError::GroupingInUse(grouping));
        }
        let parent = self.grouping(grouping)?.parent;
        let mark = self.delta_epoch();
        self.classes[parent.index()]
            .groupings
            .retain(|&g| g != grouping);
        self.groupings[grouping.index()].alive = false;
        self.record_schema(SchemaEdit::GroupingDeleted(grouping));
        Ok(self.delta_suffix(mark))
    }

    /// All classes at or below `class` in the forest (preorder).
    pub fn descendants(&self, class: ClassId) -> Result<Vec<ClassId>> {
        self.class(class)?;
        let mut out = Vec::new();
        let mut stack = vec![class];
        while let Some(c) = stack.pop() {
            out.push(c);
            for &child in self.class(c)?.children.iter().rev() {
                stack.push(child);
            }
        }
        Ok(out)
    }

    /// Adds a secondary parent under the multiple-inheritance extension.
    ///
    /// Requirements: the extension is enabled; both classes share a
    /// baseclass; no inheritance cycle; every current member of `class` is
    /// already a member of `parent`; and no attribute-name conflicts arise.
    pub fn add_secondary_parent(&mut self, class: ClassId, parent: ClassId) -> Result<ChangeSet> {
        if !self.multi_inheritance {
            return Err(CoreError::MultipleInheritance(
                "enable_multiple_inheritance() has not been called".into(),
            ));
        }
        if class == parent {
            return Err(CoreError::MultipleInheritance(
                "class cannot parent itself".into(),
            ));
        }
        let (cb, pb) = (self.class(class)?.base, self.class(parent)?.base);
        if cb != pb {
            return Err(CoreError::MultipleInheritance(
                "secondary parent must share the baseclass".into(),
            ));
        }
        if self.class(class)?.extra_parents.contains(&parent) {
            return Ok(ChangeSet::new());
        }
        // No cycles: parent must not already (transitively) inherit from class.
        if self.inherits_from(parent, class)? {
            return Err(CoreError::MultipleInheritance("inheritance cycle".into()));
        }
        // Membership constraint C ⊆ parent.
        let members: Vec<_> = self.class(class)?.members.iter().collect();
        for e in &members {
            if !self.class(parent)?.members.contains(*e) {
                return Err(CoreError::NotAMember {
                    entity: *e,
                    class: parent,
                });
            }
        }
        // Attribute-name conflicts between the existing visible set and the
        // new parent's visible set are rejected up front. An attribute
        // inherited through *both* parents from a common ancestor is the
        // same attribute, not a conflict — only distinct attributes sharing
        // a name clash.
        let existing: std::collections::HashMap<String, AttrId> = self
            .visible_attrs(class)?
            .into_iter()
            .map(|a| self.attr(a).map(|r| (r.name.clone(), a)))
            .collect::<Result<_>>()?;
        for a in self.visible_attrs(parent)? {
            let rec = self.attr(a)?;
            if rec.naming {
                continue;
            }
            if let Some(&other) = existing.get(&rec.name) {
                if other != a {
                    return Err(CoreError::MultipleInheritance(format!(
                        "attribute name conflict: {:?}",
                        rec.name
                    )));
                }
            }
        }
        let mark = self.delta_epoch();
        self.class_mut(class)?.extra_parents.push(parent);
        self.record_schema(SchemaEdit::SecondaryParentAdded { class, parent });
        Ok(self.delta_suffix(mark))
    }

    /// `true` if `class` inherits (primary or secondary, transitively) from
    /// `ancestor`.
    pub fn inherits_from(&self, class: ClassId, ancestor: ClassId) -> Result<bool> {
        if class == ancestor {
            return Ok(true);
        }
        let rec = self.class(class)?;
        for p in rec.all_parents().collect::<Vec<_>>() {
            if self.inherits_from(p, ancestor)? {
                return Ok(true);
            }
        }
        Ok(false)
    }
}

/// Value-class specification accepted by attribute-creation APIs; lets call
/// sites pass a `ClassId` or `GroupingId` directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueClassSpec {
    /// Range over a class.
    Class(ClassId),
    /// Range over a grouping.
    Grouping(GroupingId),
}

impl From<ClassId> for ValueClassSpec {
    fn from(c: ClassId) -> Self {
        ValueClassSpec::Class(c)
    }
}

impl From<GroupingId> for ValueClassSpec {
    fn from(g: GroupingId) -> Self {
        ValueClassSpec::Grouping(g)
    }
}

impl From<ValueClass> for ValueClassSpec {
    fn from(v: ValueClass) -> Self {
        match v {
            ValueClass::Class(c) => ValueClassSpec::Class(c),
            ValueClass::Grouping(g) => ValueClassSpec::Grouping(g),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::literal::BaseKind;

    fn db() -> Database {
        Database::new("t")
    }

    #[test]
    fn create_baseclass_with_naming_attr() {
        let mut d = db();
        let musicians = d.create_baseclass("musicians").unwrap();
        let rec = d.class(musicians).unwrap();
        assert!(rec.is_base());
        assert!(!rec.is_predefined());
        assert_eq!(rec.own_attrs.len(), 1);
        let naming = d.naming_attr(musicians).unwrap();
        assert!(d.attr(naming).unwrap().naming);
        assert_eq!(d.attr(naming).unwrap().name, "name");
    }

    #[test]
    fn duplicate_schema_names_rejected() {
        let mut d = db();
        d.create_baseclass("musicians").unwrap();
        assert_eq!(
            d.create_baseclass("musicians").unwrap_err(),
            CoreError::DuplicateName("musicians".into())
        );
        assert!(d.create_baseclass("STRINGS").is_err());
    }

    #[test]
    fn subclass_links_into_forest() {
        let mut d = db();
        let m = d.create_baseclass("musicians").unwrap();
        let s = d.create_subclass(m, "soloists").unwrap();
        assert_eq!(d.class(s).unwrap().parent, Some(m));
        assert_eq!(d.class(s).unwrap().base, m);
        assert_eq!(d.class(m).unwrap().children, vec![s]);
        assert_eq!(d.ancestry(s).unwrap(), vec![m, s]);
    }

    #[test]
    fn attribute_inheritance_order() {
        let mut d = db();
        let m = d.create_baseclass("musicians").unwrap();
        let yn = d.predefined(BaseKind::Booleans);
        let union = d
            .create_attribute(m, "union", yn, Multiplicity::Single)
            .unwrap();
        let s = d.create_subclass(m, "play_strings").unwrap();
        let ingroup = d
            .create_attribute(s, "in_group", yn, Multiplicity::Single)
            .unwrap();
        let visible = d.visible_attrs(s).unwrap();
        // naming first (inherited), then union (inherited), then own.
        assert_eq!(visible, vec![d.naming_attr(m).unwrap(), union, ingroup]);
        // The parent does not see the child's attribute.
        assert!(!d.attr_visible_on(ingroup, m).unwrap());
        assert!(d.attr_visible_on(union, s).unwrap());
    }

    #[test]
    fn attr_name_collisions_rejected_up_and_down() {
        let mut d = db();
        let m = d.create_baseclass("musicians").unwrap();
        let s = d.create_subclass(m, "soloists").unwrap();
        let strings = d.predefined(BaseKind::Strings);
        d.create_attribute(s, "agent", strings, Multiplicity::Single)
            .unwrap();
        // Same name on the subclass again: collides with visible.
        assert!(d
            .create_attribute(s, "agent", strings, Multiplicity::Single)
            .is_err());
        // Same name on the parent: would shadow the descendant's attribute.
        assert!(d
            .create_attribute(m, "agent", strings, Multiplicity::Single)
            .is_err());
        // "name" collides with the inherited naming attribute.
        assert!(d
            .create_attribute(s, "name", strings, Multiplicity::Single)
            .is_err());
    }

    #[test]
    fn delete_class_rules() {
        let mut d = db();
        let m = d.create_baseclass("musicians").unwrap();
        let i = d.create_baseclass("instruments").unwrap();
        let s = d.create_subclass(m, "soloists").unwrap();
        // Parent of s: refused.
        assert_eq!(d.delete_class(m).unwrap_err(), CoreError::ClassInUse(m));
        // Value class of an attribute: refused.
        d.create_attribute(m, "plays", i, Multiplicity::Multi)
            .unwrap();
        assert_eq!(d.delete_class(i).unwrap_err(), CoreError::ClassInUse(i));
        // Leaf subclass deletes fine.
        d.delete_class(s).unwrap();
        assert!(d.class(s).is_err());
        assert!(d.class(m).unwrap().children.is_empty());
        // Predefined baseclasses never delete.
        assert_eq!(
            d.delete_class(d.predefined(BaseKind::Strings)).unwrap_err(),
            CoreError::Predefined
        );
    }

    #[test]
    fn grouping_requires_visible_attr() {
        let mut d = db();
        let m = d.create_baseclass("musicians").unwrap();
        let i = d.create_baseclass("instruments").unwrap();
        let plays = d
            .create_attribute(m, "plays", i, Multiplicity::Multi)
            .unwrap();
        let g = d.create_grouping(m, "by_instrument", plays).unwrap();
        assert_eq!(d.grouping(g).unwrap().parent, m);
        // An attribute of instruments is not visible on musicians.
        let fam = d.create_baseclass("families").unwrap();
        let family = d
            .create_attribute(i, "family", fam, Multiplicity::Single)
            .unwrap();
        assert!(d.create_grouping(m, "bad", family).is_err());
        // A grouping on the subclass can use the inherited attribute.
        let s = d.create_subclass(m, "soloists").unwrap();
        assert!(d.create_grouping(s, "solo_by_instrument", plays).is_ok());
    }

    #[test]
    fn grouping_deletion_blocked_while_value_class() {
        let mut d = db();
        let m = d.create_baseclass("musicians").unwrap();
        let i = d.create_baseclass("instruments").unwrap();
        let plays = d
            .create_attribute(m, "plays", i, Multiplicity::Multi)
            .unwrap();
        let g = d.create_grouping(m, "by_instrument", plays).unwrap();
        let mg = d.create_baseclass("music_groups").unwrap();
        let a = d
            .create_attribute(mg, "section", g, Multiplicity::Single)
            .unwrap();
        assert_eq!(
            d.delete_grouping(g).unwrap_err(),
            CoreError::GroupingInUse(g)
        );
        d.delete_attr(a).unwrap();
        d.delete_grouping(g).unwrap();
        assert!(d.grouping(g).is_err());
    }

    #[test]
    fn delete_attr_rules() {
        let mut d = db();
        let m = d.create_baseclass("musicians").unwrap();
        let i = d.create_baseclass("instruments").unwrap();
        let plays = d
            .create_attribute(m, "plays", i, Multiplicity::Multi)
            .unwrap();
        let naming = d.naming_attr(m).unwrap();
        assert_eq!(d.delete_attr(naming).unwrap_err(), CoreError::Predefined);
        d.create_grouping(m, "by_instrument", plays).unwrap();
        assert!(d.delete_attr(plays).is_err());
        let g = d.grouping_by_name("by_instrument").unwrap();
        d.delete_grouping(g).unwrap();
        d.delete_attr(plays).unwrap();
        assert!(d.attr(plays).is_err());
        assert!(!d.visible_attrs(m).unwrap().contains(&plays));
    }

    #[test]
    fn rename_rules() {
        let mut d = db();
        let m = d.create_baseclass("musicians").unwrap();
        d.rename_class(m, "players").unwrap();
        assert_eq!(d.class(m).unwrap().name, "players");
        // Renaming to itself is a no-op, not a duplicate.
        d.rename_class(m, "players").unwrap();
        let i = d.create_baseclass("instruments").unwrap();
        assert!(d.rename_class(i, "players").is_err());
        assert!(d
            .rename_class(d.predefined(BaseKind::Integers), "ints")
            .is_err());
    }

    #[test]
    fn multiple_inheritance_gated() {
        let mut d = db();
        let m = d.create_baseclass("musicians").unwrap();
        let a = d.create_subclass(m, "a").unwrap();
        let b = d.create_subclass(m, "b").unwrap();
        assert!(matches!(
            d.add_secondary_parent(a, b).unwrap_err(),
            CoreError::MultipleInheritance(_)
        ));
        d.enable_multiple_inheritance();
        d.add_secondary_parent(a, b).unwrap();
        assert_eq!(d.class(a).unwrap().extra_parents, vec![b]);
        // Idempotent.
        d.add_secondary_parent(a, b).unwrap();
        assert_eq!(d.class(a).unwrap().extra_parents, vec![b]);
        // Cycles refused.
        assert!(d.add_secondary_parent(b, a).is_err());
    }

    #[test]
    fn multiple_inheritance_attr_union() {
        let mut d = db();
        d.enable_multiple_inheritance();
        let m = d.create_baseclass("musicians").unwrap();
        let yn = d.predefined(BaseKind::Booleans);
        let a = d.create_subclass(m, "a").unwrap();
        let b = d.create_subclass(m, "b").unwrap();
        let fa = d
            .create_attribute(a, "fa", yn, Multiplicity::Single)
            .unwrap();
        let fb = d
            .create_attribute(b, "fb", yn, Multiplicity::Single)
            .unwrap();
        d.add_secondary_parent(a, b).unwrap();
        let vis = d.visible_attrs(a).unwrap();
        assert!(vis.contains(&fa) && vis.contains(&fb));
        // Conflicting attribute names across parents are refused.
        let c = d.create_subclass(m, "c").unwrap();
        d.create_attribute(c, "fa", yn, Multiplicity::Single)
            .unwrap();
        assert!(matches!(
            d.add_secondary_parent(c, a).unwrap_err(),
            CoreError::MultipleInheritance(_)
        ));
    }

    #[test]
    fn descendants_preorder() {
        let mut d = db();
        let m = d.create_baseclass("m").unwrap();
        let a = d.create_subclass(m, "a").unwrap();
        let b = d.create_subclass(m, "b").unwrap();
        let aa = d.create_subclass(a, "aa").unwrap();
        assert_eq!(d.descendants(m).unwrap(), vec![m, a, aa, b]);
    }

    #[test]
    fn respecify_value_class_clears_values() {
        let mut d = db();
        let m = d.create_baseclass("m").unwrap();
        let i = d.create_baseclass("i").unwrap();
        let f = d.create_baseclass("f").unwrap();
        let plays = d
            .create_attribute(m, "plays", i, Multiplicity::Multi)
            .unwrap();
        let e = d.insert_entity(m, "edith").unwrap();
        let v = d.insert_entity(i, "viola").unwrap();
        d.assign_multi(e, plays, [v]).unwrap();
        d.respecify_value_class(plays, f).unwrap();
        assert!(d.attr(plays).unwrap().values.is_empty());
        assert_eq!(d.attr(plays).unwrap().value_class, ValueClass::Class(f));
    }
}
