//! Class records.

use crate::fillpattern::FillPattern;
use crate::ids::{AttrId, ClassId, GroupingId};
use crate::literal::BaseKind;
use crate::orderedset::OrderedSet;
use crate::predicate::Predicate;

/// How a class's membership is determined.
#[derive(Debug, Clone, PartialEq)]
pub enum ClassKind {
    /// A baseclass: a root of the inheritance forest. The four predefined
    /// baseclasses carry their [`BaseKind`]; user baseclasses carry `None`.
    Base(Option<BaseKind>),
    /// A subclass whose members are enumerated by hand (the paper's
    /// "user-defined" subclasses, e.g. *soloists* and *edith_plays*).
    Enumerated,
    /// A derived subclass: membership is defined by a predicate over the
    /// parent class and (re)materialised on commit.
    Derived(Predicate),
}

impl ClassKind {
    /// `true` for baseclasses.
    pub fn is_base(&self) -> bool {
        matches!(self, ClassKind::Base(_))
    }

    /// The predefined kind, if this is one of the four standard baseclasses.
    pub fn predefined(&self) -> Option<BaseKind> {
        match self {
            ClassKind::Base(k) => *k,
            _ => None,
        }
    }

    /// The defining predicate, for derived subclasses.
    pub fn predicate(&self) -> Option<&Predicate> {
        match self {
            ClassKind::Derived(p) => Some(p),
            _ => None,
        }
    }
}

/// A stored class: "a named set of entities" (§2).
#[derive(Debug, Clone, PartialEq)]
pub struct ClassRecord {
    /// The class name, unique among classes and groupings in the schema.
    pub name: String,
    /// `parent(C)` for subclasses; `None` for baseclasses.
    pub parent: Option<ClassId>,
    /// The root of this class's inheritance tree (itself for baseclasses).
    pub base: ClassId,
    /// How membership is determined.
    pub kind: ClassKind,
    /// The characteristic fill pattern assigned at creation.
    pub fill: FillPattern,
    /// Attributes *owned* by this class (not inherited ones), in creation
    /// order. The first attribute of a baseclass is its naming attribute.
    pub own_attrs: Vec<AttrId>,
    /// Direct subclasses, in creation order (forest children).
    pub children: Vec<ClassId>,
    /// Groupings whose parent is this class, in creation order.
    pub groupings: Vec<GroupingId>,
    /// The extent: members in insertion order. For the predefined
    /// baseclasses this holds the interned literals used so far.
    pub members: OrderedSet,
    /// Secondary parents, used only when the multiple-inheritance extension
    /// is enabled (§5 future work). Always empty in single-parent mode.
    pub extra_parents: Vec<ClassId>,
    /// Tombstone flag.
    pub alive: bool,
}

impl ClassRecord {
    /// `true` for baseclasses (roots of the forest).
    pub fn is_base(&self) -> bool {
        self.parent.is_none()
    }

    /// `true` for the four predefined baseclasses.
    pub fn is_predefined(&self) -> bool {
        self.kind.predefined().is_some()
    }

    /// `true` for derived (predicate-defined) subclasses.
    pub fn is_derived(&self) -> bool {
        matches!(self.kind, ClassKind::Derived(_))
    }

    /// All parents: the primary parent plus any secondary parents.
    pub fn all_parents(&self) -> impl Iterator<Item = ClassId> + '_ {
        self.parent
            .into_iter()
            .chain(self.extra_parents.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(kind: ClassKind, parent: Option<ClassId>) -> ClassRecord {
        ClassRecord {
            name: "t".into(),
            parent,
            base: ClassId::from_raw(0),
            kind,
            fill: FillPattern::nth(0),
            own_attrs: vec![],
            children: vec![],
            groupings: vec![],
            members: OrderedSet::new(),
            extra_parents: vec![],
            alive: true,
        }
    }

    #[test]
    fn base_classification() {
        let b = record(ClassKind::Base(Some(BaseKind::Integers)), None);
        assert!(b.is_base());
        assert!(b.is_predefined());
        assert!(!b.is_derived());

        let user_base = record(ClassKind::Base(None), None);
        assert!(user_base.is_base());
        assert!(!user_base.is_predefined());
    }

    #[test]
    fn derived_classification() {
        let d = record(
            ClassKind::Derived(Predicate::always_true()),
            Some(ClassId::from_raw(0)),
        );
        assert!(d.is_derived());
        assert!(d.kind.predicate().is_some());
        assert!(!d.is_base());
    }

    #[test]
    fn all_parents_includes_secondary() {
        let mut c = record(ClassKind::Enumerated, Some(ClassId::from_raw(1)));
        c.extra_parents.push(ClassId::from_raw(2));
        let ps: Vec<_> = c.all_parents().collect();
        assert_eq!(ps, vec![ClassId::from_raw(1), ClassId::from_raw(2)]);
    }
}
