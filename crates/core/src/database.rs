//! The database: a schema (inheritance forest + semantic network) together
//! with data consistent with it (§2).

use std::collections::HashMap;

use crate::attribute::{AttrRecord, Multiplicity, ValueClass};
use crate::class::{ClassKind, ClassRecord};
use crate::entity::EntityRecord;
use crate::error::{CoreError, Result};
use crate::fillpattern::FillPattern;
use crate::grouping::GroupingRecord;
use crate::ids::{AttrId, ClassId, EntityId, GroupingId, SchemaNode};
use crate::literal::{BaseKind, Literal, LiteralKey};
use crate::orderedset::OrderedSet;

/// An ISIS database: classes, attributes, groupings, and entities, with the
/// consistency rules of §2 enforced on every modification.
///
/// `Database` is a single-writer, in-memory structure (matching the paper's
/// one-workstation model); persistence lives in the `isis-store` crate.
///
/// ```
/// use isis_core::{Atom, Clause, CompareOp, Database, Map, Multiplicity, Predicate, Rhs};
///
/// let mut db = Database::new("demo");
/// let people = db.create_baseclass("people")?;
/// let ints = db.predefined(isis_core::BaseKind::Integers);
/// let age = db.create_attribute(people, "age", ints, Multiplicity::Single)?;
///
/// let ada = db.insert_entity(people, "Ada")?;
/// let n36 = db.int(36);
/// db.assign_single(ada, age, n36)?;
///
/// // A query is a derived subclass: age > 30.
/// let n30 = db.int(30);
/// let pred = Predicate::dnf(vec![Clause::new(vec![Atom::new(
///     Map::single(age),
///     CompareOp::Gt,
///     Rhs::constant(ints, [n30]),
/// )])]);
/// let adults = db.create_derived_subclass(people, "over_thirty")?;
/// assert_eq!(db.commit_membership(adults, pred)?, 1);
/// assert!(db.members(adults)?.contains(ada));
/// assert!(db.is_consistent()?);
/// # Ok::<(), isis_core::CoreError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Database {
    /// The database name ("Instrumental_Music", "entertainment", …).
    pub name: String,
    pub(crate) classes: Vec<ClassRecord>,
    pub(crate) attrs: Vec<AttrRecord>,
    pub(crate) groupings: Vec<GroupingRecord>,
    pub(crate) entities: Vec<EntityRecord>,
    /// Interned literal entities of the predefined baseclasses.
    pub(crate) literal_index: HashMap<LiteralKey, EntityId>,
    /// Entity name → id, per baseclass (names are unique within a baseclass).
    pub(crate) entity_names: HashMap<(ClassId, String), EntityId>,
    /// Number of classes+groupings ever created; drives fill assignment.
    pub(crate) fill_counter: u32,
    /// Whether the multiple-inheritance extension (§5) is enabled.
    pub(crate) multi_inheritance: bool,
    /// Integrity constraints (§5 extension), including dead slots.
    pub(crate) constraints: Vec<crate::constraint::ConstraintRecord>,
    /// Log of structural changes, consumed by incremental maintainers.
    /// Not persisted in images: a load is a rebuild boundary.
    pub(crate) delta: crate::change::DeltaLog,
}

impl Database {
    /// Creates an empty database containing only the four predefined
    /// baseclasses and their naming attributes, plus the null entity.
    pub fn new(name: impl Into<String>) -> Database {
        let mut db = Database {
            name: name.into(),
            classes: Vec::new(),
            attrs: Vec::new(),
            groupings: Vec::new(),
            entities: Vec::new(),
            literal_index: HashMap::new(),
            entity_names: HashMap::new(),
            fill_counter: 0,
            multi_inheritance: false,
            constraints: Vec::new(),
            delta: crate::change::DeltaLog::default(),
        };
        // Entity slot 0 is the null entity; it is "a member of every class"
        // conceptually but appears in no extent.
        db.entities.push(EntityRecord {
            name: "(null)".into(),
            base: ClassId::from_raw(0),
            literal: None,
            alive: true,
        });
        for kind in BaseKind::ALL {
            let id = ClassId::from_raw(db.classes.len() as u32);
            let fill = FillPattern::nth(db.fill_counter);
            db.fill_counter += 1;
            db.classes.push(ClassRecord {
                name: kind.name().to_string(),
                parent: None,
                base: id,
                kind: ClassKind::Base(Some(kind)),
                fill,
                own_attrs: Vec::new(),
                children: Vec::new(),
                groupings: Vec::new(),
                members: OrderedSet::new(),
                extra_parents: Vec::new(),
                alive: true,
            });
        }
        // Every baseclass gets a naming attribute into STRINGS.
        for kind in BaseKind::ALL {
            let class = db.predefined(kind);
            db.push_naming_attr(class);
        }
        db
    }

    pub(crate) fn push_naming_attr(&mut self, class: ClassId) -> AttrId {
        let id = AttrId::from_raw(self.attrs.len() as u32);
        self.attrs.push(AttrRecord {
            name: "name".into(),
            owner: class,
            value_class: ValueClass::Class(self.predefined(BaseKind::Strings)),
            multiplicity: Multiplicity::Single,
            naming: true,
            derivation: None,
            values: crate::column::AttrColumn::new(),
            alive: true,
        });
        self.classes[class.index()].own_attrs.push(id);
        id
    }

    /// The id of a predefined baseclass.
    pub fn predefined(&self, kind: BaseKind) -> ClassId {
        // Allocation order in `new` matches BaseKind::ALL.
        let idx = BaseKind::ALL.iter().position(|k| *k == kind).unwrap();
        ClassId::from_raw(idx as u32)
    }

    /// Enables the multiple-inheritance extension (§5: "the system is
    /// currently being extended to handle multiple parent inheritance").
    pub fn enable_multiple_inheritance(&mut self) {
        if !self.multi_inheritance {
            self.multi_inheritance = true;
            self.record_schema(crate::change::SchemaEdit::MultipleInheritanceEnabled);
        }
    }

    /// `true` if the multiple-inheritance extension is enabled.
    pub fn multiple_inheritance_enabled(&self) -> bool {
        self.multi_inheritance
    }

    pub(crate) fn constraint_arena(&self) -> &[crate::constraint::ConstraintRecord] {
        &self.constraints
    }

    pub(crate) fn constraint_arena_mut(&mut self) -> &mut Vec<crate::constraint::ConstraintRecord> {
        &mut self.constraints
    }

    // ------------------------------------------------------------------
    // Record access
    // ------------------------------------------------------------------

    /// The record of a live class.
    pub fn class(&self, id: ClassId) -> Result<&ClassRecord> {
        self.classes
            .get(id.index())
            .filter(|c| c.alive)
            .ok_or(CoreError::NoSuchClass(id))
    }

    pub(crate) fn class_mut(&mut self, id: ClassId) -> Result<&mut ClassRecord> {
        self.classes
            .get_mut(id.index())
            .filter(|c| c.alive)
            .ok_or(CoreError::NoSuchClass(id))
    }

    /// The record of a live attribute.
    pub fn attr(&self, id: AttrId) -> Result<&AttrRecord> {
        self.attrs
            .get(id.index())
            .filter(|a| a.alive)
            .ok_or(CoreError::NoSuchAttr(id))
    }

    pub(crate) fn attr_mut(&mut self, id: AttrId) -> Result<&mut AttrRecord> {
        self.attrs
            .get_mut(id.index())
            .filter(|a| a.alive)
            .ok_or(CoreError::NoSuchAttr(id))
    }

    /// The record of a live grouping.
    pub fn grouping(&self, id: GroupingId) -> Result<&GroupingRecord> {
        self.groupings
            .get(id.index())
            .filter(|g| g.alive)
            .ok_or(CoreError::NoSuchGrouping(id))
    }

    /// The record of a live entity.
    pub fn entity(&self, id: EntityId) -> Result<&EntityRecord> {
        self.entities
            .get(id.index())
            .filter(|e| e.alive)
            .ok_or(CoreError::NoSuchEntity(id))
    }

    /// Iterates all live classes with their ids.
    pub fn classes(&self) -> impl Iterator<Item = (ClassId, &ClassRecord)> {
        self.classes
            .iter()
            .enumerate()
            .filter(|(_, c)| c.alive)
            .map(|(i, c)| (ClassId::from_raw(i as u32), c))
    }

    /// Iterates all live attributes with their ids.
    pub fn attrs(&self) -> impl Iterator<Item = (AttrId, &AttrRecord)> {
        self.attrs
            .iter()
            .enumerate()
            .filter(|(_, a)| a.alive)
            .map(|(i, a)| (AttrId::from_raw(i as u32), a))
    }

    /// Iterates all live groupings with their ids.
    pub fn groupings(&self) -> impl Iterator<Item = (GroupingId, &GroupingRecord)> {
        self.groupings
            .iter()
            .enumerate()
            .filter(|(_, g)| g.alive)
            .map(|(i, g)| (GroupingId::from_raw(i as u32), g))
    }

    /// Iterates all live entities with their ids (excluding the null entity).
    pub fn entities(&self) -> impl Iterator<Item = (EntityId, &EntityRecord)> {
        self.entities
            .iter()
            .enumerate()
            .skip(1)
            .filter(|(_, e)| e.alive)
            .map(|(i, e)| (EntityId::from_raw(i as u32), e))
    }

    /// Total number of live entities (excluding the null entity).
    pub fn entity_count(&self) -> usize {
        self.entities.iter().skip(1).filter(|e| e.alive).count()
    }

    // ------------------------------------------------------------------
    // Name resolution
    // ------------------------------------------------------------------

    /// Finds a class by name.
    pub fn class_by_name(&self, name: &str) -> Result<ClassId> {
        self.classes()
            .find(|(_, c)| c.name == name)
            .map(|(id, _)| id)
            .ok_or_else(|| CoreError::NameNotFound(name.into()))
    }

    /// Finds a grouping by name.
    pub fn grouping_by_name(&self, name: &str) -> Result<GroupingId> {
        self.groupings()
            .find(|(_, g)| g.name == name)
            .map(|(id, _)| id)
            .ok_or_else(|| CoreError::NameNotFound(name.into()))
    }

    /// Finds a schema node (class or grouping) by name.
    pub fn node_by_name(&self, name: &str) -> Result<SchemaNode> {
        self.class_by_name(name)
            .map(SchemaNode::Class)
            .or_else(|_| self.grouping_by_name(name).map(SchemaNode::Grouping))
    }

    /// Finds an attribute visible on `class` (own or inherited) by name.
    pub fn attr_by_name(&self, class: ClassId, name: &str) -> Result<AttrId> {
        for a in self.visible_attrs(class)? {
            if self.attr(a)?.name == name {
                return Ok(a);
            }
        }
        Err(CoreError::NameNotFound(format!(
            "attribute {name:?} on class {}",
            self.class(class)?.name
        )))
    }

    /// Finds an entity of baseclass `base` by name.
    pub fn entity_by_name(&self, base: ClassId, name: &str) -> Result<EntityId> {
        self.entity_names
            .get(&(base, name.to_string()))
            .copied()
            .ok_or_else(|| CoreError::NameNotFound(name.into()))
    }

    /// The display name of a schema node.
    pub fn node_name(&self, node: SchemaNode) -> Result<&str> {
        match node {
            SchemaNode::Class(c) => Ok(&self.class(c)?.name),
            SchemaNode::Grouping(g) => Ok(&self.grouping(g)?.name),
        }
    }

    /// `true` if some live class or grouping already carries `name`.
    pub(crate) fn schema_name_taken(&self, name: &str) -> bool {
        self.classes().any(|(_, c)| c.name == name) || self.groupings().any(|(_, g)| g.name == name)
    }

    // ------------------------------------------------------------------
    // Inheritance
    // ------------------------------------------------------------------

    /// The chain of classes from the baseclass root down to `class`
    /// (inclusive), following primary parents.
    pub fn ancestry(&self, class: ClassId) -> Result<Vec<ClassId>> {
        let mut chain = Vec::new();
        let mut cur = Some(class);
        while let Some(c) = cur {
            chain.push(c);
            cur = self.class(c)?.parent;
            if chain.len() > self.classes.len() {
                return Err(CoreError::Inconsistent("parent cycle detected".into()));
            }
        }
        chain.reverse();
        Ok(chain)
    }

    /// All attributes *visible* on `class`: inherited ones first (from the
    /// baseclass down), then own attributes — the order in which the data
    /// level displays them. With multiple inheritance enabled, secondary
    /// parents' attributes follow the primary chain.
    pub fn visible_attrs(&self, class: ClassId) -> Result<Vec<AttrId>> {
        let mut out = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for c in self.ancestry(class)? {
            self.collect_attrs_of(c, &mut out, &mut seen)?;
        }
        Ok(out)
    }

    fn collect_attrs_of(
        &self,
        class: ClassId,
        out: &mut Vec<AttrId>,
        seen: &mut std::collections::HashSet<AttrId>,
    ) -> Result<()> {
        let rec = self.class(class)?;
        // Secondary parents contribute their full visible sets first.
        for p in rec.extra_parents.clone() {
            for a in self.visible_attrs(p)? {
                if seen.insert(a) {
                    out.push(a);
                }
            }
        }
        for &a in &rec.own_attrs {
            if self.attrs[a.index()].alive && seen.insert(a) {
                out.push(a);
            }
        }
        Ok(())
    }

    /// `true` if attribute `attr` is defined (directly or by inheritance) on
    /// `class`.
    pub fn attr_visible_on(&self, attr: AttrId, class: ClassId) -> Result<bool> {
        Ok(self.visible_attrs(class)?.contains(&attr))
    }

    /// The naming attribute of the baseclass of `class`.
    pub fn naming_attr(&self, class: ClassId) -> Result<AttrId> {
        let base = self.class(class)?.base;
        self.class(base)?
            .own_attrs
            .first()
            .copied()
            .ok_or_else(|| CoreError::Inconsistent("baseclass without naming attribute".into()))
    }

    /// `true` if `descendant` equals `ancestor` or lies below it in the
    /// forest (following primary parents).
    pub fn is_descendant(&self, descendant: ClassId, ancestor: ClassId) -> Result<bool> {
        Ok(self.ancestry(descendant)?.contains(&ancestor))
    }

    // ------------------------------------------------------------------
    // Literals
    // ------------------------------------------------------------------

    /// Interns a literal into its predefined baseclass, returning the entity
    /// that represents it. Idempotent.
    pub fn intern(&mut self, lit: impl Into<Literal>) -> Result<EntityId> {
        let lit = lit.into();
        if let Literal::Real(r) = &lit {
            if r.is_nan() {
                return Err(CoreError::InvalidLiteral("NaN is not a valid REAL".into()));
            }
        }
        let key = lit.intern_key();
        if let Some(&id) = self.literal_index.get(&key) {
            return Ok(id);
        }
        let base = self.predefined(lit.base_kind());
        let id = EntityId::from_raw(self.entities.len() as u32);
        let name = lit.display_name();
        let kind = lit.base_kind();
        self.entities.push(EntityRecord::literal(lit, base));
        self.literal_index.insert(key, id);
        self.entity_names.insert((base, name.clone()), id);
        self.classes[base.index()].members.insert(id);
        self.record_change(crate::change::Change::EntityInserted {
            entity: id,
            base,
            name: name.clone(),
        });
        self.record_change(crate::change::Change::MembershipAdded {
            entity: id,
            class: base,
        });
        // The literal's display name is itself a STRING entity (every
        // entity's naming attribute must resolve to a STRING member).
        if kind != BaseKind::Strings {
            self.intern(Literal::Str(name))?;
        }
        Ok(id)
    }

    /// The entity an already-interned literal resolves to, without
    /// mutating. Lets read paths resolve literal tokens against a pinned
    /// snapshot before falling back to [`Database::intern`].
    pub fn find_literal(&self, lit: impl Into<Literal>) -> Option<EntityId> {
        self.literal_index.get(&lit.into().intern_key()).copied()
    }

    /// Interns an integer (convenience).
    pub fn int(&mut self, v: i64) -> EntityId {
        self.intern(Literal::Int(v))
            .expect("integers always intern")
    }

    /// Interns a string (convenience).
    pub fn str(&mut self, v: &str) -> EntityId {
        self.intern(Literal::Str(v.into()))
            .expect("strings always intern")
    }

    /// Interns a boolean (convenience).
    pub fn boolean(&mut self, v: bool) -> EntityId {
        self.intern(Literal::Bool(v))
            .expect("booleans always intern")
    }

    /// Interns a real.
    pub fn real(&mut self, v: f64) -> Result<EntityId> {
        self.intern(Literal::real(v)?)
    }

    /// The literal behind an entity, if it is an interned literal.
    pub fn literal_of(&self, e: EntityId) -> Option<&Literal> {
        self.entities
            .get(e.index())
            .and_then(|r| r.literal.as_ref())
    }

    /// The display name of an entity (the null entity displays as `(null)`).
    pub fn entity_name(&self, e: EntityId) -> Result<&str> {
        Ok(&self.entity(e)?.name)
    }
}

impl Default for Database {
    fn default() -> Self {
        Database::new("untitled")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_db_has_four_predefined_baseclasses() {
        let db = Database::new("t");
        assert_eq!(db.classes().count(), 4);
        for kind in BaseKind::ALL {
            let id = db.predefined(kind);
            let rec = db.class(id).unwrap();
            assert_eq!(rec.name, kind.name());
            assert!(rec.is_base());
            assert!(rec.is_predefined());
            // Naming attribute present and first.
            let naming = db.naming_attr(id).unwrap();
            assert!(db.attr(naming).unwrap().naming);
        }
    }

    #[test]
    fn null_entity_exists_but_is_in_no_extent() {
        let db = Database::new("t");
        assert!(db.entity(EntityId::NULL).is_ok());
        for (_, c) in db.classes() {
            assert!(!c.members.contains(EntityId::NULL));
        }
    }

    #[test]
    fn interning_is_idempotent() {
        let mut db = Database::new("t");
        let a = db.int(4);
        let b = db.int(4);
        let c = db.int(5);
        assert_eq!(a, b);
        assert_ne!(a, c);
        let ints = db.predefined(BaseKind::Integers);
        assert!(db.class(ints).unwrap().members.contains(a));
        assert_eq!(db.entity_name(a).unwrap(), "4");
    }

    #[test]
    fn interning_separates_baseclasses() {
        let mut db = Database::new("t");
        let i = db.int(4);
        let s = db.str("4");
        assert_ne!(i, s);
        assert_eq!(
            db.entity(i).unwrap().base,
            db.predefined(BaseKind::Integers)
        );
        assert_eq!(db.entity(s).unwrap().base, db.predefined(BaseKind::Strings));
    }

    #[test]
    fn nan_interning_fails() {
        let mut db = Database::new("t");
        assert!(db.real(f64::NAN).is_err());
        assert!(db.real(3.25).is_ok());
    }

    #[test]
    fn bool_entities() {
        let mut db = Database::new("t");
        let yes = db.boolean(true);
        let no = db.boolean(false);
        assert_ne!(yes, no);
        assert_eq!(db.entity_name(yes).unwrap(), "YES");
        assert_eq!(db.entity_name(no).unwrap(), "NO");
    }

    #[test]
    fn lookup_by_name() {
        let db = Database::new("t");
        assert!(db.class_by_name("STRINGS").is_ok());
        assert!(db.class_by_name("nope").is_err());
        assert!(db.node_by_name("YES/NO").is_ok());
    }

    #[test]
    fn dead_ids_error() {
        let db = Database::new("t");
        assert_eq!(
            db.class(ClassId::from_raw(99)).unwrap_err(),
            CoreError::NoSuchClass(ClassId::from_raw(99))
        );
        assert!(db.attr(AttrId::from_raw(99)).is_err());
        assert!(db.grouping(GroupingId::from_raw(0)).is_err());
        assert!(db.entity(EntityId::from_raw(99)).is_err());
    }
}
