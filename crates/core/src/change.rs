//! Structured change notification: every mutation of a [`Database`] is
//! recorded into a bounded [`DeltaLog`] as a sequence of [`Change`] entries,
//! and every mutator that used to return `()` now returns the [`ChangeSet`]
//! it produced.
//!
//! The paper keeps derived subclasses stale between commits (§2); the delta
//! log is what lets the engine do better than the paper without giving up
//! its semantics: consumers (index maintenance, incremental derived-class
//! refresh in `isis-query`/`isis-session`) subscribe by remembering an
//! *epoch* — `Database::delta_epoch` — and later ask for
//! `Database::changes_since(epoch)` to re-evaluate only what a mutation
//! actually touched.
//!
//! Value updates carry exact `(entity, attr, old, new)` transitions, so a
//! consumer can maintain inverted indexes without rescanning; the per-pair
//! sequence of transitions is chained (each `old` equals the previous
//! `new`).

use std::collections::VecDeque;

use crate::attribute::AttrValue;
use crate::ids::{AttrId, ClassId, EntityId, GroupingId};
use crate::Database;

/// A schema-level edit. Consumers generally treat any schema edit as a
/// signal to rebuild derived state from scratch: schema edits are rare and
/// can invalidate predicates, maps and indexes wholesale.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaEdit {
    /// A class (baseclass or subclass) was created.
    ClassCreated(ClassId),
    /// A class was renamed.
    ClassRenamed(ClassId),
    /// A class was deleted.
    ClassDeleted(ClassId),
    /// An attribute was created.
    AttrCreated(AttrId),
    /// An attribute was renamed.
    AttrRenamed(AttrId),
    /// An attribute was deleted (values cleared).
    AttrDeleted(AttrId),
    /// The value class of an attribute was respecified (values cleared).
    ValueClassChanged(AttrId),
    /// A grouping was created.
    GroupingCreated(GroupingId),
    /// A grouping was renamed.
    GroupingRenamed(GroupingId),
    /// A grouping was deleted.
    GroupingDeleted(GroupingId),
    /// A secondary parent was added under the multiple-inheritance
    /// extension.
    SecondaryParentAdded {
        /// The class that gained a parent.
        class: ClassId,
        /// The new secondary parent.
        parent: ClassId,
    },
    /// A membership predicate was installed or replaced on a derived
    /// subclass (`commit_membership` with a *different* predicate; plain
    /// refreshes do not re-record this).
    DerivationChanged(ClassId),
    /// A derivation was installed or replaced on an attribute.
    AttrDerivationChanged(AttrId),
    /// The multiple-inheritance extension (§5) was switched on.
    MultipleInheritanceEnabled,
}

/// One recorded mutation step.
#[derive(Debug, Clone, PartialEq)]
pub enum Change {
    /// A fresh entity entered `base` (user insert or literal intern).
    EntityInserted {
        /// The new entity.
        entity: EntityId,
        /// Its baseclass.
        base: ClassId,
        /// The name it was inserted under (for literals, the display name).
        /// Recorded so a change stream is self-contained: replaying a
        /// commit onto another database line needs the insert-time name,
        /// which later renames would otherwise erase.
        name: String,
    },
    /// An entity was deleted outright. Membership removals and value scrubs
    /// are recorded separately before this entry.
    EntityDeleted {
        /// The deleted entity.
        entity: EntityId,
        /// The baseclass it belonged to.
        base: ClassId,
    },
    /// An entity was renamed. The naming-attribute value transition is also
    /// recorded as an [`Change::AttrAssigned`] on the baseclass's naming
    /// attribute, so index consumers need no special case.
    EntityRenamed {
        /// The renamed entity.
        entity: EntityId,
        /// The new name (self-contained for replay, like
        /// [`Change::EntityInserted::name`]).
        name: String,
    },
    /// `entity` entered the extent of `class`.
    MembershipAdded {
        /// The entity that gained membership.
        entity: EntityId,
        /// The class it entered.
        class: ClassId,
    },
    /// `entity` left the extent of `class`.
    MembershipRemoved {
        /// The entity that lost membership.
        entity: EntityId,
        /// The class it left.
        class: ClassId,
    },
    /// The stored value of `attr` for `entity` went from `old` to `new`
    /// (assignment, unassignment, scrubbing, or derived materialisation).
    /// Only recorded when `old != new`.
    AttrAssigned {
        /// The entity whose value changed.
        entity: EntityId,
        /// The attribute assigned.
        attr: AttrId,
        /// The previous value (default if never assigned).
        old: AttrValue,
        /// The value now stored.
        new: AttrValue,
    },
    /// A schema edit; see [`SchemaEdit`].
    Schema(SchemaEdit),
}

impl Change {
    /// The attribute whose stored values this change affects, if any.
    pub fn touched_attr(&self) -> Option<AttrId> {
        match self {
            Change::AttrAssigned { attr, .. } => Some(*attr),
            _ => None,
        }
    }

    /// `true` for schema-level edits.
    pub fn is_schema(&self) -> bool {
        matches!(self, Change::Schema(_))
    }
}

/// An ordered batch of changes — what one mutator call (or one
/// `changes_since` window) produced.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChangeSet {
    /// The recorded changes, in application order.
    pub changes: Vec<Change>,
}

impl ChangeSet {
    /// An empty change set.
    pub fn new() -> ChangeSet {
        ChangeSet::default()
    }

    /// `true` if no changes were recorded.
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }

    /// Number of recorded changes.
    pub fn len(&self) -> usize {
        self.changes.len()
    }

    /// Iterates over the changes in application order.
    pub fn iter(&self) -> std::slice::Iter<'_, Change> {
        self.changes.iter()
    }

    /// `true` if any entry is a schema edit (consumers should rebuild).
    pub fn has_schema_changes(&self) -> bool {
        self.changes.iter().any(Change::is_schema)
    }

    /// The distinct attributes whose stored values changed, in first-touch
    /// order.
    pub fn touched_attrs(&self) -> Vec<AttrId> {
        let mut out = Vec::new();
        for c in &self.changes {
            if let Some(a) = c.touched_attr() {
                if !out.contains(&a) {
                    out.push(a);
                }
            }
        }
        out
    }

    /// Appends all changes of `other`.
    pub fn merge(&mut self, other: ChangeSet) {
        self.changes.extend(other.changes);
    }
}

impl IntoIterator for ChangeSet {
    type Item = Change;
    type IntoIter = std::vec::IntoIter<Change>;
    fn into_iter(self) -> Self::IntoIter {
        self.changes.into_iter()
    }
}

impl<'a> IntoIterator for &'a ChangeSet {
    type Item = &'a Change;
    type IntoIter = std::slice::Iter<'a, Change>;
    fn into_iter(self) -> Self::IntoIter {
        self.changes.iter()
    }
}

/// Default bound on retained entries; older entries are evicted and
/// consumers whose epoch predates the window fall back to a full rebuild.
pub const DELTA_LOG_DEFAULT_CAPACITY: usize = 1 << 16;

/// Bounded in-memory log of every change applied to a database, addressed
/// by monotonically increasing epochs. Epoch `e` denotes the state after
/// the first `e` changes ever recorded; the log retains a sliding window
/// of the most recent entries.
#[derive(Debug, Clone)]
pub struct DeltaLog {
    /// Epoch of the oldest retained entry.
    base: u64,
    entries: VecDeque<Change>,
    capacity: usize,
}

impl Default for DeltaLog {
    fn default() -> Self {
        DeltaLog {
            base: 0,
            entries: VecDeque::new(),
            capacity: DELTA_LOG_DEFAULT_CAPACITY,
        }
    }
}

impl DeltaLog {
    /// An empty log retaining at most `capacity` entries (a capacity of 0
    /// retains nothing: every consumer always rebuilds).
    pub fn with_capacity(capacity: usize) -> DeltaLog {
        DeltaLog {
            capacity,
            ..DeltaLog::default()
        }
    }

    /// The retention bound: how many entries the sliding window keeps.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Changes the retention bound. Shrinking evicts the oldest entries
    /// immediately (consumers with epochs in the evicted range fall back
    /// to a rebuild); growing simply allows the window to fill further.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
        while self.entries.len() > self.capacity {
            self.entries.pop_front();
            self.base += 1;
        }
    }

    /// The epoch after the most recent change.
    pub fn epoch(&self) -> u64 {
        self.base + self.entries.len() as u64
    }

    /// The oldest epoch still addressable by [`DeltaLog::since`].
    pub fn base_epoch(&self) -> u64 {
        self.base
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no entries are retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub(crate) fn record(&mut self, change: Change) {
        self.entries.push_back(change);
        while self.entries.len() > self.capacity {
            self.entries.pop_front();
            self.base += 1;
        }
    }

    /// The changes recorded at or after `epoch`, or `None` if the window
    /// has slid past it (the consumer must rebuild).
    pub fn since(&self, epoch: u64) -> Option<ChangeSet> {
        if epoch < self.base || epoch > self.epoch() {
            return None;
        }
        let skip = (epoch - self.base) as usize;
        Some(ChangeSet {
            changes: self.entries.iter().skip(skip).cloned().collect(),
        })
    }
}

impl Database {
    /// The current delta epoch: remember it, mutate, then ask
    /// [`Database::changes_since`] for everything that happened in between.
    pub fn delta_epoch(&self) -> u64 {
        self.delta.epoch()
    }

    /// The changes recorded at or after `epoch`, or `None` if the log has
    /// evicted that window (or `epoch` is from a different database line,
    /// e.g. after an undo restored an older clone) — rebuild in that case.
    pub fn changes_since(&self, epoch: u64) -> Option<ChangeSet> {
        self.delta.since(epoch)
    }

    /// Read access to the delta log itself.
    pub fn delta_log(&self) -> &DeltaLog {
        &self.delta
    }

    /// The delta log's retention bound.
    pub fn delta_capacity(&self) -> usize {
        self.delta.capacity()
    }

    /// Rebounds the delta log window (see [`DeltaLog::set_capacity`]).
    /// Databases that never use incremental consumers can shrink it;
    /// long-lived interactive sessions with many maintained views can
    /// grow it to avoid rebuild storms.
    pub fn set_delta_capacity(&mut self, capacity: usize) {
        self.delta.set_capacity(capacity);
    }

    pub(crate) fn record_change(&mut self, change: Change) {
        self.delta.record(change);
    }

    pub(crate) fn record_schema(&mut self, edit: SchemaEdit) {
        self.delta.record(Change::Schema(edit));
    }

    /// The suffix of the log recorded since `mark` (taken from
    /// [`Database::delta_epoch`] at the start of a mutator). Falls back to
    /// the whole retained window in the pathological case where a single
    /// mutation overflowed the log capacity.
    pub(crate) fn delta_suffix(&self, mark: u64) -> ChangeSet {
        self.delta.since(mark).unwrap_or_else(|| {
            self.delta
                .since(self.delta.base_epoch())
                .unwrap_or_default()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn change(i: u32) -> Change {
        Change::MembershipAdded {
            entity: EntityId::from_raw(i),
            class: ClassId::from_raw(0),
        }
    }

    #[test]
    fn epochs_advance_and_windows_slice() {
        let mut log = DeltaLog::default();
        assert_eq!(log.epoch(), 0);
        let mark = log.epoch();
        log.record(change(1));
        log.record(change(2));
        assert_eq!(log.epoch(), 2);
        let cs = log.since(mark).unwrap();
        assert_eq!(cs.len(), 2);
        let cs = log.since(1).unwrap();
        assert_eq!(cs.changes, vec![change(2)]);
        assert!(log.since(2).unwrap().is_empty());
        assert_eq!(log.since(3), None);
    }

    #[test]
    fn capacity_evicts_and_invalidates_old_epochs() {
        let mut log = DeltaLog {
            capacity: 4,
            ..DeltaLog::default()
        };
        for i in 0..10 {
            log.record(change(i));
        }
        assert_eq!(log.epoch(), 10);
        assert_eq!(log.base_epoch(), 6);
        assert_eq!(log.len(), 4);
        assert_eq!(log.since(0), None);
        assert_eq!(log.since(5), None);
        assert_eq!(log.since(6).unwrap().len(), 4);
    }

    #[test]
    fn capacity_is_configurable_and_shrinking_evicts() {
        let mut log = DeltaLog::with_capacity(8);
        assert_eq!(log.capacity(), 8);
        for i in 0..8 {
            log.record(change(i));
        }
        assert_eq!(log.len(), 8);
        log.set_capacity(3);
        assert_eq!(log.len(), 3);
        assert_eq!(log.base_epoch(), 5);
        assert_eq!(log.since(4), None);
        assert_eq!(log.since(5).unwrap().len(), 3);
        log.set_capacity(5);
        log.record(change(8));
        log.record(change(9));
        assert_eq!(log.len(), 5);
        assert_eq!(log.epoch(), 10);
    }

    #[test]
    fn changeset_helpers() {
        let mut cs = ChangeSet::new();
        assert!(cs.is_empty());
        cs.changes.push(Change::AttrAssigned {
            entity: EntityId::from_raw(1),
            attr: AttrId::from_raw(3),
            old: AttrValue::Single(EntityId::NULL),
            new: AttrValue::Single(EntityId::from_raw(2)),
        });
        cs.changes.push(Change::AttrAssigned {
            entity: EntityId::from_raw(2),
            attr: AttrId::from_raw(3),
            old: AttrValue::Single(EntityId::NULL),
            new: AttrValue::Single(EntityId::from_raw(2)),
        });
        cs.changes
            .push(Change::Schema(SchemaEdit::AttrRenamed(AttrId::from_raw(3))));
        assert_eq!(cs.touched_attrs(), vec![AttrId::from_raw(3)]);
        assert!(cs.has_schema_changes());
        assert_eq!(cs.len(), 3);
    }
}
