//! Characteristic fill patterns.
//!
//! In ISIS every class gets "a characteristic fill pattern unique to the
//! class, which is provided automatically by the system" (§3.2). Attributes
//! show the fill pattern of their value class; set-valued things (multivalued
//! attributes, groupings) show the pattern with a white border.
//!
//! We reproduce this with a deterministic sequence of pattern indices, each
//! of which maps to an ASCII glyph (for the text renderer) and an SVG pattern
//! definition (for the vector renderer).

/// A characteristic fill pattern, identified by a dense index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FillPattern(pub u32);

/// The glyph alphabet used by the ASCII renderer. Patterns cycle through
/// these glyphs; after one full cycle the renderer doubles them (`##`, …) via
/// [`FillPattern::ascii_swatch`], so patterns stay visually distinct far
/// beyond the alphabet size.
const GLYPHS: &[char] = &[
    '#', ':', '%', '+', 'x', 'o', '/', '\\', '=', '*', '.', '~', '^', 'v', '<', '>',
];

impl FillPattern {
    /// The pattern assigned to the `i`-th created class.
    pub fn nth(i: u32) -> FillPattern {
        FillPattern(i)
    }

    /// The base glyph for the ASCII renderer.
    pub fn glyph(self) -> char {
        GLYPHS[(self.0 as usize) % GLYPHS.len()]
    }

    /// A short swatch (1–3 chars) distinguishing patterns even after the
    /// glyph alphabet wraps around.
    pub fn ascii_swatch(self) -> String {
        let g = self.glyph();
        let reps = 1 + (self.0 as usize) / GLYPHS.len();
        std::iter::repeat_n(g, reps.min(3)).collect()
    }

    /// The SVG `<pattern>` id for this fill.
    pub fn svg_id(self) -> String {
        format!("fill{}", self.0)
    }

    /// Emits the SVG `<pattern>` definition for this fill. Patterns vary in
    /// stroke angle, spacing and colour so that neighbouring classes remain
    /// distinguishable.
    pub fn svg_def(self) -> String {
        let i = self.0;
        let spacing = 4 + (i % 4) as i32; // 4..=7 px
        let angle = match i % 4 {
            0 => 45,
            1 => -45,
            2 => 0,
            _ => 90,
        };
        let shade = 40 + ((i * 53) % 160); // deterministic grey level
        let colour = format!("rgb({shade},{shade},{shade})");
        format!(
            concat!(
                "<pattern id=\"{id}\" patternUnits=\"userSpaceOnUse\" ",
                "width=\"{sp}\" height=\"{sp}\" patternTransform=\"rotate({ang})\">",
                "<line x1=\"0\" y1=\"0\" x2=\"0\" y2=\"{sp}\" ",
                "stroke=\"{col}\" stroke-width=\"1.5\"/></pattern>"
            ),
            id = self.svg_id(),
            sp = spacing,
            ang = angle,
            col = colour,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn swatches_distinct_for_first_48_classes() {
        let swatches: HashSet<String> = (0..48)
            .map(|i| FillPattern::nth(i).ascii_swatch())
            .collect();
        assert_eq!(swatches.len(), 48);
    }

    #[test]
    fn glyph_cycles() {
        assert_eq!(FillPattern::nth(0).glyph(), '#');
        assert_eq!(FillPattern::nth(16).glyph(), '#');
        assert_eq!(FillPattern::nth(16).ascii_swatch(), "##");
    }

    #[test]
    fn svg_def_references_own_id() {
        let p = FillPattern::nth(5);
        assert!(p.svg_def().contains(&p.svg_id()));
        assert!(p.svg_def().starts_with("<pattern"));
    }

    #[test]
    fn svg_defs_vary() {
        let a = FillPattern::nth(0).svg_def();
        let b = FillPattern::nth(1).svg_def();
        assert_ne!(a, b);
    }
}
