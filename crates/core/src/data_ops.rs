//! Data-level modification operations: inserting, deleting and updating
//! entities, class membership, and attribute assignment (§2).
//!
//! "We allow arbitrary modifications of the data and/or the schema … as long
//! as the data remains consistent with the schema." Each operation here
//! either preserves consistency (cascading membership, scrubbing dangling
//! values) or is refused.

use crate::attribute::{AttrValue, Multiplicity, ValueClass};
use crate::change::{Change, ChangeSet};
use crate::entity::EntityRecord;
use crate::error::{CoreError, Result};
use crate::grouping::GroupingSet;
use crate::ids::{AttrId, ClassId, EntityId, GroupingId};
use crate::orderedset::OrderedSet;
use crate::Database;

impl Database {
    /// Creates a new entity named `name` in the user baseclass `base`.
    ///
    /// "We can insert an entity in a class, provided we also insert it in
    /// its parent and specify a value for its naming attribute."
    pub fn insert_entity(&mut self, base: ClassId, name: &str) -> Result<EntityId> {
        let rec = self.class(base)?;
        if !rec.is_base() {
            return Err(CoreError::Inconsistent(format!(
                "{} is not a baseclass; insert into the baseclass and add_to_class",
                rec.name
            )));
        }
        if rec.is_predefined() {
            return Err(CoreError::Predefined);
        }
        if name.is_empty() {
            return Err(CoreError::InvalidLiteral("empty entity name".into()));
        }
        if self.entity_names.contains_key(&(base, name.to_string())) {
            return Err(CoreError::DuplicateEntityName {
                base,
                name: name.into(),
            });
        }
        // The name is a STRING entity ("entity names are determined by a
        // special singlevalued naming attribute"); intern it so the naming
        // attribute always resolves when used in maps.
        self.intern(crate::literal::Literal::Str(name.to_string()))?;
        let id = EntityId::from_raw(self.entities.len() as u32);
        self.entities.push(EntityRecord::user(name, base));
        self.entity_names.insert((base, name.to_string()), id);
        self.classes[base.index()].members.insert(id);
        self.record_change(Change::EntityInserted {
            entity: id,
            base,
            name: name.to_string(),
        });
        self.record_change(Change::MembershipAdded {
            entity: id,
            class: base,
        });
        Ok(id)
    }

    /// Adds an existing entity to a subclass, cascading the insertion into
    /// every (primary and secondary) ancestor so that each subclass stays a
    /// subset of its parent.
    ///
    /// Direct insertion into a derived subclass is refused — its membership
    /// is defined by its predicate (§2). (Cascaded insertion *through* a
    /// derived ancestor is permitted: derivation predicates "do not (at
    /// present) form part of the consistency requirements".)
    ///
    /// Returns the [`ChangeSet`] of memberships actually gained (empty if
    /// the entity was already a member everywhere).
    pub fn add_to_class(&mut self, entity: EntityId, class: ClassId) -> Result<ChangeSet> {
        if self.class(class)?.is_derived() {
            return Err(CoreError::DerivedClass(class));
        }
        let mark = self.delta_epoch();
        self.add_to_class_unchecked(entity, class)?;
        Ok(self.delta_suffix(mark))
    }

    /// Membership insertion bypassing the derived-class guard, for derived-
    /// class *maintainers* (code that re-evaluates a predicate and installs
    /// the result, e.g. incremental maintenance in `isis-query`). Regular
    /// callers should use [`Database::add_to_class`].
    pub fn force_membership(&mut self, entity: EntityId, class: ClassId) -> Result<ChangeSet> {
        let mark = self.delta_epoch();
        self.add_to_class_unchecked(entity, class)?;
        Ok(self.delta_suffix(mark))
    }

    /// Membership insertion without the derived-class guard; used by the
    /// predicate evaluator when it materialises a derived subclass, and by
    /// cascades.
    pub(crate) fn add_to_class_unchecked(
        &mut self,
        entity: EntityId,
        class: ClassId,
    ) -> Result<()> {
        let erec = self.entity(entity)?;
        let crec = self.class(class)?;
        if erec.base != crec.base {
            return Err(CoreError::NotAMember {
                entity,
                class: crec.base,
            });
        }
        if self.classes[class.index()].members.contains(entity) {
            return Ok(());
        }
        self.classes[class.index()].members.insert(entity);
        self.record_change(Change::MembershipAdded { entity, class });
        for p in self.class(class)?.all_parents().collect::<Vec<_>>() {
            self.add_to_class_unchecked(entity, p)?;
        }
        Ok(())
    }

    /// Removes an entity from a subclass, cascading the removal down through
    /// every descendant (subset consistency), and scrubbing any attribute
    /// values that drew on the classes the entity left.
    ///
    /// Returns the [`ChangeSet`] of memberships lost and values scrubbed.
    pub fn remove_from_class(&mut self, entity: EntityId, class: ClassId) -> Result<ChangeSet> {
        let crec = self.class(class)?;
        if crec.is_base() {
            return Err(CoreError::Inconsistent(
                "removing from a baseclass deletes the entity; use delete_entity".into(),
            ));
        }
        self.entity(entity)?;
        let mark = self.delta_epoch();
        let mut left = Vec::new();
        self.remove_from_class_rec(entity, class, &mut left)?;
        self.scrub_values(entity, &left)?;
        Ok(self.delta_suffix(mark))
    }

    fn remove_from_class_rec(
        &mut self,
        entity: EntityId,
        class: ClassId,
        left: &mut Vec<ClassId>,
    ) -> Result<()> {
        if !self.classes[class.index()].members.contains(entity) {
            return Ok(());
        }
        self.classes[class.index()].members.remove(entity);
        self.record_change(Change::MembershipRemoved { entity, class });
        left.push(class);
        // Cascade into subclasses (primary children) …
        for child in self.class(class)?.children.clone() {
            self.remove_from_class_rec(entity, child, left)?;
        }
        // … and into classes that list `class` as a secondary parent.
        let secondary: Vec<ClassId> = self
            .classes()
            .filter(|(_, c)| c.extra_parents.contains(&class))
            .map(|(id, _)| id)
            .collect();
        for c in secondary {
            self.remove_from_class_rec(entity, c, left)?;
        }
        Ok(())
    }

    /// Deletes an entity outright: removes it from every class extent, every
    /// attribute value that references it, and every value it carries.
    /// Interned literals are immutable and cannot be deleted.
    ///
    /// Returns the [`ChangeSet`]: one membership removal per extent the
    /// entity occupied, one value transition per scrubbed assignment, then
    /// the final [`Change::EntityDeleted`].
    pub fn delete_entity(&mut self, entity: EntityId) -> Result<ChangeSet> {
        let rec = self.entity(entity)?;
        if rec.is_literal() {
            return Err(CoreError::LiteralEntity(entity));
        }
        let base = rec.base;
        let name = rec.name.clone();
        let mark = self.delta_epoch();
        for c in self.descendants(base)? {
            if self.classes[c.index()].members.remove(entity) {
                self.record_change(Change::MembershipRemoved { entity, class: c });
            }
        }
        // Scrub both the values the entity carried and references to it.
        for a in 0..self.attrs.len() {
            if !self.attrs[a].alive {
                continue;
            }
            let attr = AttrId::from_raw(a as u32);
            if let Some(old) = self.attrs[a].values.remove(entity) {
                let new = self.attrs[a].default_value();
                if old != new {
                    self.record_change(Change::AttrAssigned {
                        entity,
                        attr,
                        old,
                        new,
                    });
                }
            }
            self.scrub_attr_references(attr, entity);
        }
        self.entity_names.remove(&(base, name));
        self.entities[entity.index()].alive = false;
        self.record_change(Change::EntityDeleted { entity, base });
        Ok(self.delta_suffix(mark))
    }

    /// After `entity` left the classes in `left`, remove references to it
    /// from attributes whose value class is one of those classes (or a
    /// grouping indexed by one of them).
    fn scrub_values(&mut self, entity: EntityId, left: &[ClassId]) -> Result<()> {
        let affected: Vec<AttrId> = self
            .attrs()
            .filter(|(_, a)| match a.value_class {
                ValueClass::Class(c) => left.contains(&c),
                ValueClass::Grouping(g) => self
                    .grouping(g)
                    .and_then(|gr| self.attr(gr.on_attr))
                    .map(|ar| match ar.value_class {
                        ValueClass::Class(c) => left.contains(&c),
                        ValueClass::Grouping(_) => false,
                    })
                    .unwrap_or(false),
            })
            .map(|(id, _)| id)
            .collect();
        for a in affected {
            self.scrub_attr_references(a, entity);
        }
        Ok(())
    }

    fn scrub_attr_references(&mut self, attr: AttrId, entity: EntityId) {
        let rec = &mut self.attrs[attr.index()];
        // Collect the hits first (the column cannot be mutated mid-scan),
        // then rewrite each through the canonicalising column API: a
        // scrubbed single becomes the default (entry removed), a scrubbed
        // multi keeps its remaining members.
        let hits: Vec<(EntityId, AttrValue)> = rec
            .values
            .iter()
            .filter(|(_, v)| match v {
                crate::column::ValueRef::Single(e) => *e == entity,
                crate::column::ValueRef::Multi(s) => s.contains(entity),
            })
            .map(|(owner, v)| (owner, v.to_owned()))
            .collect();
        let mut scrubbed: Vec<(EntityId, AttrValue, AttrValue)> = Vec::new();
        for (owner, old) in hits {
            let new = match &old {
                AttrValue::Single(_) => AttrValue::Single(EntityId::NULL),
                AttrValue::Multi(s) => {
                    let mut s = s.clone();
                    s.remove(entity);
                    AttrValue::Multi(s)
                }
            };
            rec.values.set(owner, new.clone());
            scrubbed.push((owner, old, new));
        }
        for (owner, old, new) in scrubbed {
            self.record_change(Change::AttrAssigned {
                entity: owner,
                attr,
                old,
                new,
            });
        }
    }

    /// Renames an entity (assigning its naming attribute). Names must stay
    /// unique within the baseclass; literals are immutable.
    ///
    /// The returned [`ChangeSet`] carries the naming-attribute value
    /// transition (old string entity → new string entity) so index
    /// consumers see renames as ordinary assignments.
    pub fn rename_entity(&mut self, entity: EntityId, name: &str) -> Result<ChangeSet> {
        let rec = self.entity(entity)?;
        if rec.is_literal() {
            return Err(CoreError::LiteralEntity(entity));
        }
        if name.is_empty() {
            return Err(CoreError::InvalidLiteral("empty entity name".into()));
        }
        let base = rec.base;
        let old = rec.name.clone();
        if old == name {
            return Ok(ChangeSet::new());
        }
        if self.entity_names.contains_key(&(base, name.to_string())) {
            return Err(CoreError::DuplicateEntityName {
                base,
                name: name.into(),
            });
        }
        let mark = self.delta_epoch();
        let new_str = self.intern(crate::literal::Literal::Str(name.to_string()))?;
        let strings = self.predefined(crate::literal::BaseKind::Strings);
        let old_str = self
            .entity_names
            .get(&(strings, old.clone()))
            .copied()
            .unwrap_or(EntityId::NULL);
        self.entity_names.remove(&(base, old));
        self.entity_names.insert((base, name.to_string()), entity);
        self.entities[entity.index()].name = name.to_string();
        let naming = self.naming_attr(base)?;
        self.record_change(Change::AttrAssigned {
            entity,
            attr: naming,
            old: AttrValue::Single(old_str),
            new: AttrValue::Single(new_str),
        });
        self.record_change(Change::EntityRenamed {
            entity,
            name: name.to_string(),
        });
        Ok(self.delta_suffix(mark))
    }

    fn check_value_membership(&self, attr: AttrId, value: EntityId) -> Result<()> {
        if value.is_null() {
            return Ok(());
        }
        self.entity(value)?;
        let ok = match self.attr(attr)?.value_class {
            ValueClass::Class(c) => self.class(c)?.members.contains(value),
            // A grouping-ranged attribute stores *index* entities: each value
            // names one of the grouping's sets (a member of the grouping).
            ValueClass::Grouping(g) => {
                let idx_class = self.grouping_index_class(g)?;
                self.class(idx_class)?.members.contains(value)
            }
        };
        if ok {
            Ok(())
        } else {
            Err(CoreError::ValueNotInValueClass { attr, value })
        }
    }

    /// The class whose entities index the sets of grouping `g` (the value
    /// class `V` of the attribute the grouping is on).
    pub fn grouping_index_class(&self, g: GroupingId) -> Result<ClassId> {
        let gr = self.grouping(g)?;
        match self.attr(gr.on_attr)?.value_class {
            ValueClass::Class(c) => Ok(c),
            ValueClass::Grouping(_) => Err(CoreError::Inconsistent(
                "grouping defined on a grouping-ranged attribute".into(),
            )),
        }
    }

    fn check_assignable(&self, entity: EntityId, attr: AttrId) -> Result<()> {
        let owner = self.attr(attr)?.owner;
        if !self.class(owner)?.members.contains(entity) {
            return Err(CoreError::NotAMember {
                entity,
                class: owner,
            });
        }
        if self.attr(attr)?.is_derived() {
            // Derived attribute values are computed, not assigned; but the
            // engine materialises them through this same path internally.
            // External assignment is allowed only to non-derived attributes.
            return Err(CoreError::Inconsistent(
                "attribute is derived; use refresh_derived_attr".into(),
            ));
        }
        Ok(())
    }

    /// Records the `old → new` transition of `attr` on `entity`, unless the
    /// value did not actually change.
    fn record_assignment(&mut self, entity: EntityId, attr: AttrId, old: AttrValue) {
        let new = self
            .attr(attr)
            .map(|rec| rec.value_of(entity))
            .unwrap_or(AttrValue::Single(EntityId::NULL));
        if old != new {
            self.record_change(Change::AttrAssigned {
                entity,
                attr,
                old,
                new,
            });
        }
    }

    /// Assigns a single value to an attribute for `entity` ("(re)assign att.
    /// value"). On a multivalued attribute this installs a singleton set.
    /// Assigning the naming attribute renames the entity.
    ///
    /// Returns the [`ChangeSet`] carrying the `(entity, attr, old, new)`
    /// transition (empty if the value was unchanged).
    pub fn assign_single(
        &mut self,
        entity: EntityId,
        attr: AttrId,
        value: EntityId,
    ) -> Result<ChangeSet> {
        if self.attr(attr)?.naming {
            let name = self.entity(value)?.name.clone();
            return self.rename_entity(entity, &name);
        }
        self.check_assignable(entity, attr)?;
        self.check_value_membership(attr, value)?;
        let mark = self.delta_epoch();
        let rec = self.attr(attr)?;
        let old = rec.value_of(entity);
        let v = match rec.multiplicity {
            Multiplicity::Single => AttrValue::Single(value),
            Multiplicity::Multi => AttrValue::Multi(if value.is_null() {
                OrderedSet::new()
            } else {
                [value].into_iter().collect()
            }),
        };
        self.attr_mut(attr)?.values.set(entity, v);
        self.record_assignment(entity, attr, old);
        Ok(self.delta_suffix(mark))
    }

    /// Assigns a set of values to a multivalued attribute for `entity`.
    pub fn assign_multi(
        &mut self,
        entity: EntityId,
        attr: AttrId,
        values: impl IntoIterator<Item = EntityId>,
    ) -> Result<ChangeSet> {
        self.check_assignable(entity, attr)?;
        if self.attr(attr)?.multiplicity == Multiplicity::Single {
            return Err(CoreError::SingleValuedAttr(attr));
        }
        let set: OrderedSet = values.into_iter().collect();
        for v in set.iter() {
            self.check_value_membership(attr, v)?;
        }
        let mark = self.delta_epoch();
        let old = self.attr(attr)?.value_of(entity);
        self.attr_mut(attr)?
            .values
            .set(entity, AttrValue::Multi(set));
        self.record_assignment(entity, attr, old);
        Ok(self.delta_suffix(mark))
    }

    /// Adds one value to a multivalued attribute without replacing the set.
    pub fn add_value(
        &mut self,
        entity: EntityId,
        attr: AttrId,
        value: EntityId,
    ) -> Result<ChangeSet> {
        self.check_assignable(entity, attr)?;
        if self.attr(attr)?.multiplicity == Multiplicity::Single {
            return Err(CoreError::SingleValuedAttr(attr));
        }
        self.check_value_membership(attr, value)?;
        let mark = self.delta_epoch();
        let old = self.attr(attr)?.value_of(entity);
        let rec = self.attr_mut(attr)?;
        rec.values.multi_entry(entity).insert(value);
        self.record_assignment(entity, attr, old);
        Ok(self.delta_suffix(mark))
    }

    /// Applies many attribute assignments under ONE delta suffix.
    ///
    /// The per-call [`ChangeSet`] materialisation of
    /// [`Database::assign_single`] / [`Database::assign_multi`] dominates
    /// bulk loads, so loaders batch thousands of assignments and take a
    /// single suffix per batch. Per-item semantics — validation order,
    /// naming renames, recorded changes — are identical to the scalar
    /// calls; on error the items already applied remain applied (exactly
    /// as the equivalent scalar sequence would leave them) and the first
    /// failing item's error is returned.
    pub fn assign_batch(
        &mut self,
        items: impl IntoIterator<Item = (EntityId, AttrId, AttrValue)>,
    ) -> Result<ChangeSet> {
        let mark = self.delta_epoch();
        for (entity, attr, value) in items {
            match value {
                AttrValue::Single(v) => {
                    if self.attr(attr)?.naming {
                        let name = self.entity(v)?.name.clone();
                        self.rename_entity(entity, &name)?;
                        continue;
                    }
                    self.check_assignable(entity, attr)?;
                    self.check_value_membership(attr, v)?;
                    let rec = self.attr(attr)?;
                    let old = rec.value_of(entity);
                    let val = match rec.multiplicity {
                        Multiplicity::Single => AttrValue::Single(v),
                        Multiplicity::Multi => AttrValue::Multi(if v.is_null() {
                            OrderedSet::new()
                        } else {
                            [v].into_iter().collect()
                        }),
                    };
                    self.attr_mut(attr)?.values.set(entity, val);
                    self.record_assignment(entity, attr, old);
                }
                AttrValue::Multi(set) => {
                    self.check_assignable(entity, attr)?;
                    if self.attr(attr)?.multiplicity == Multiplicity::Single {
                        return Err(CoreError::SingleValuedAttr(attr));
                    }
                    for v in set.iter() {
                        self.check_value_membership(attr, v)?;
                    }
                    let old = self.attr(attr)?.value_of(entity);
                    self.attr_mut(attr)?
                        .values
                        .set(entity, AttrValue::Multi(set));
                    self.record_assignment(entity, attr, old);
                }
            }
        }
        Ok(self.delta_suffix(mark))
    }

    /// Bulk entity insertion: validates the baseclass once, reserves
    /// arena capacity up front, and inserts every name with the same
    /// per-entity semantics (and recorded changes) as
    /// [`Database::insert_entity`]. Returns the new ids in input order.
    pub fn insert_entities(
        &mut self,
        base: ClassId,
        names: impl IntoIterator<Item = String>,
    ) -> Result<Vec<EntityId>> {
        let rec = self.class(base)?;
        if !rec.is_base() {
            return Err(CoreError::Inconsistent(format!(
                "{} is not a baseclass; insert into the baseclass and add_to_class",
                rec.name
            )));
        }
        if rec.is_predefined() {
            return Err(CoreError::Predefined);
        }
        let names: Vec<String> = names.into_iter().collect();
        self.entities.reserve(names.len());
        self.entity_names.reserve(names.len());
        let mut ids = Vec::with_capacity(names.len());
        for name in names {
            if name.is_empty() {
                return Err(CoreError::InvalidLiteral("empty entity name".into()));
            }
            if self.entity_names.contains_key(&(base, name.clone())) {
                return Err(CoreError::DuplicateEntityName { base, name });
            }
            self.intern(crate::literal::Literal::Str(name.clone()))?;
            let id = EntityId::from_raw(self.entities.len() as u32);
            self.entities.push(EntityRecord::user(&name, base));
            self.entity_names.insert((base, name.clone()), id);
            self.classes[base.index()].members.insert(id);
            self.record_change(Change::EntityInserted {
                entity: id,
                base,
                name: name.clone(),
            });
            self.record_change(Change::MembershipAdded {
                entity: id,
                class: base,
            });
            ids.push(id);
        }
        Ok(ids)
    }

    /// Resets an attribute to its default (null / empty set) for `entity`.
    pub fn unassign(&mut self, entity: EntityId, attr: AttrId) -> Result<ChangeSet> {
        self.check_assignable(entity, attr)?;
        let mark = self.delta_epoch();
        let old = self.attr(attr)?.value_of(entity);
        self.attr_mut(attr)?.values.remove(entity);
        self.record_assignment(entity, attr, old);
        Ok(self.delta_suffix(mark))
    }

    /// The stored (or default) value of `attr` for `entity`. The naming
    /// attribute reads back the entity's name.
    pub fn attr_value(&self, entity: EntityId, attr: AttrId) -> Result<AttrValue> {
        let rec = self.attr(attr)?;
        if rec.naming {
            // Naming reads through to the entity record.
            let name = self.entity(entity)?.name.clone();
            let id = self
                .entity_names
                .get(&(self.predefined(crate::literal::BaseKind::Strings), name))
                .copied();
            return Ok(AttrValue::Single(id.unwrap_or(EntityId::NULL)));
        }
        let owner = rec.owner;
        if !self.class(owner)?.members.contains(entity) {
            return Err(CoreError::NotAMember {
                entity,
                class: owner,
            });
        }
        Ok(rec.value_of(entity))
    }

    /// The value of `attr` for `entity` as a set of entities, expanding
    /// grouping-ranged attributes into the union of the named sets (the
    /// `B: S ↔ parent(G)` reading of §2).
    pub fn attr_value_set(&self, entity: EntityId, attr: AttrId) -> Result<OrderedSet> {
        let rec = self.attr(attr)?;
        if rec.naming {
            // The name string as an interned entity, if it has been interned.
            let raw = self.attr_value(entity, attr)?;
            return Ok(raw.as_set());
        }
        let raw = self.attr_value(entity, attr)?.as_set();
        match rec.value_class {
            ValueClass::Class(_) => Ok(raw),
            ValueClass::Grouping(g) => {
                let mut out = OrderedSet::new();
                for idx in raw.iter() {
                    out.extend_from(&self.grouping_set_members(g, idx)?);
                }
                Ok(out)
            }
        }
    }

    /// The members of a class.
    pub fn members(&self, class: ClassId) -> Result<&OrderedSet> {
        Ok(&self.class(class)?.members)
    }

    /// Computes the family of sets of grouping `g` (§2): one set per index
    /// entity, ordered by the index class's extent order.
    ///
    /// For groupings indexed by a *user* class every extent member yields a
    /// set (possibly empty); for groupings indexed by a predefined baseclass
    /// (conceptually infinite) only non-empty sets are produced.
    pub fn grouping_sets(&self, g: GroupingId) -> Result<Vec<GroupingSet>> {
        let gr = self.grouping(g)?;
        let parent = gr.parent;
        let attr = gr.on_attr;
        let idx_class = self.grouping_index_class(g)?;
        let include_empty = !self.class(idx_class)?.is_predefined();
        let mut sets: Vec<GroupingSet> = Vec::new();
        let mut pos: std::collections::HashMap<EntityId, usize> = std::collections::HashMap::new();
        for idx in self.class(idx_class)?.members.iter() {
            if include_empty {
                pos.insert(idx, sets.len());
                sets.push(GroupingSet {
                    index: idx,
                    members: OrderedSet::new(),
                });
            }
        }
        for x in self.class(parent)?.members.iter().collect::<Vec<_>>() {
            for e in self.attr_value(x, attr)?.as_set().iter() {
                let slot = match pos.get(&e) {
                    Some(&i) => i,
                    None => {
                        pos.insert(e, sets.len());
                        sets.push(GroupingSet {
                            index: e,
                            members: OrderedSet::new(),
                        });
                        sets.len() - 1
                    }
                };
                sets[slot].members.insert(x);
            }
        }
        Ok(sets)
    }

    /// The members of the grouping set named by `index` (empty if the index
    /// entity names no set).
    pub fn grouping_set_members(&self, g: GroupingId, index: EntityId) -> Result<OrderedSet> {
        let gr = self.grouping(g)?;
        let parent = gr.parent;
        let attr = gr.on_attr;
        let mut out = OrderedSet::new();
        for x in self.class(parent)?.members.iter() {
            if self.attr_value(x, attr)?.as_set().contains(index) {
                out.insert(x);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::literal::BaseKind;

    struct Fixture {
        db: Database,
        musicians: ClassId,
        instruments: ClassId,
        plays: AttrId,
        union: AttrId,
        soloists: ClassId,
    }

    fn fixture() -> Fixture {
        let mut db = Database::new("t");
        let musicians = db.create_baseclass("musicians").unwrap();
        let instruments = db.create_baseclass("instruments").unwrap();
        let yn = db.predefined(BaseKind::Booleans);
        let plays = db
            .create_attribute(musicians, "plays", instruments, Multiplicity::Multi)
            .unwrap();
        let union = db
            .create_attribute(musicians, "union", yn, Multiplicity::Single)
            .unwrap();
        let soloists = db.create_subclass(musicians, "soloists").unwrap();
        Fixture {
            db,
            musicians,
            instruments,
            plays,
            union,
            soloists,
        }
    }

    #[test]
    fn insert_entity_into_baseclass_only() {
        let mut f = fixture();
        let edith = f.db.insert_entity(f.musicians, "Edith").unwrap();
        assert!(f.db.members(f.musicians).unwrap().contains(edith));
        assert!(f.db.insert_entity(f.soloists, "Bob").is_err());
        assert!(f
            .db
            .insert_entity(f.db.predefined(BaseKind::Integers), "7")
            .is_err());
        // Duplicate names within a baseclass are refused …
        assert!(f.db.insert_entity(f.musicians, "Edith").is_err());
        // … but the same name in a different baseclass is fine.
        assert!(f.db.insert_entity(f.instruments, "Edith").is_ok());
    }

    #[test]
    fn add_to_class_cascades_up() {
        let mut f = fixture();
        let sub = f.db.create_subclass(f.soloists, "star_soloists").unwrap();
        let edith = f.db.insert_entity(f.musicians, "Edith").unwrap();
        f.db.add_to_class(edith, sub).unwrap();
        assert!(f.db.members(sub).unwrap().contains(edith));
        assert!(f.db.members(f.soloists).unwrap().contains(edith));
        assert!(f.db.members(f.musicians).unwrap().contains(edith));
    }

    #[test]
    fn add_to_class_wrong_base_rejected() {
        let mut f = fixture();
        let oboe = f.db.insert_entity(f.instruments, "oboe").unwrap();
        assert!(matches!(
            f.db.add_to_class(oboe, f.soloists).unwrap_err(),
            CoreError::NotAMember { .. }
        ));
    }

    #[test]
    fn remove_from_class_cascades_down() {
        let mut f = fixture();
        let sub = f.db.create_subclass(f.soloists, "star_soloists").unwrap();
        let edith = f.db.insert_entity(f.musicians, "Edith").unwrap();
        f.db.add_to_class(edith, sub).unwrap();
        f.db.remove_from_class(edith, f.soloists).unwrap();
        assert!(!f.db.members(f.soloists).unwrap().contains(edith));
        assert!(!f.db.members(sub).unwrap().contains(edith));
        assert!(f.db.members(f.musicians).unwrap().contains(edith));
        // Removing from a baseclass is refused.
        assert!(f.db.remove_from_class(edith, f.musicians).is_err());
    }

    #[test]
    fn assignment_validates_membership_and_value_class() {
        let mut f = fixture();
        let edith = f.db.insert_entity(f.musicians, "Edith").unwrap();
        let viola = f.db.insert_entity(f.instruments, "viola").unwrap();
        f.db.assign_multi(edith, f.plays, [viola]).unwrap();
        assert_eq!(
            f.db.attr_value_set(edith, f.plays).unwrap().as_slice(),
            &[viola]
        );
        // A musician is not in the value class of plays.
        let bob = f.db.insert_entity(f.musicians, "Bob").unwrap();
        assert!(matches!(
            f.db.assign_multi(edith, f.plays, [bob]).unwrap_err(),
            CoreError::ValueNotInValueClass { .. }
        ));
        // The value target must be a member of the attribute's owner.
        assert!(matches!(
            f.db.assign_multi(viola, f.plays, [viola]).unwrap_err(),
            CoreError::NotAMember { .. }
        ));
        // Boolean attribute takes interned YES/NO.
        let yes = f.db.boolean(true);
        f.db.assign_single(edith, f.union, yes).unwrap();
        assert_eq!(
            f.db.attr_value(edith, f.union).unwrap(),
            AttrValue::Single(yes)
        );
    }

    #[test]
    fn single_vs_multi_discipline() {
        let mut f = fixture();
        let edith = f.db.insert_entity(f.musicians, "Edith").unwrap();
        let viola = f.db.insert_entity(f.instruments, "viola").unwrap();
        // assign_multi on a singlevalued attribute is refused.
        let yes = f.db.boolean(true);
        assert_eq!(
            f.db.assign_multi(edith, f.union, [yes]).unwrap_err(),
            CoreError::SingleValuedAttr(f.union)
        );
        // assign_single on a multivalued attribute installs a singleton.
        f.db.assign_single(edith, f.plays, viola).unwrap();
        assert_eq!(
            f.db.attr_value(edith, f.plays).unwrap(),
            AttrValue::Multi([viola].into_iter().collect())
        );
        // add_value accumulates.
        let violin = f.db.insert_entity(f.instruments, "violin").unwrap();
        f.db.add_value(edith, f.plays, violin).unwrap();
        assert_eq!(
            f.db.attr_value_set(edith, f.plays).unwrap().as_slice(),
            &[viola, violin]
        );
        // unassign restores the default.
        f.db.unassign(edith, f.plays).unwrap();
        assert!(f.db.attr_value_set(edith, f.plays).unwrap().is_empty());
    }

    #[test]
    fn defaults_are_null_and_empty() {
        let mut f = fixture();
        let edith = f.db.insert_entity(f.musicians, "Edith").unwrap();
        assert_eq!(
            f.db.attr_value(edith, f.union).unwrap(),
            AttrValue::Single(EntityId::NULL)
        );
        assert!(f.db.attr_value_set(edith, f.plays).unwrap().is_empty());
    }

    #[test]
    fn inherited_attr_assignable_on_subclass_member() {
        let mut f = fixture();
        let edith = f.db.insert_entity(f.musicians, "Edith").unwrap();
        f.db.add_to_class(edith, f.soloists).unwrap();
        let viola = f.db.insert_entity(f.instruments, "viola").unwrap();
        // plays is owned by musicians; Edith (a soloist) can be assigned it.
        f.db.assign_multi(edith, f.plays, [viola]).unwrap();
        assert!(f.db.attr_value_set(edith, f.plays).unwrap().contains(viola));
    }

    #[test]
    fn delete_entity_scrubs_references() {
        let mut f = fixture();
        let edith = f.db.insert_entity(f.musicians, "Edith").unwrap();
        let viola = f.db.insert_entity(f.instruments, "viola").unwrap();
        f.db.assign_multi(edith, f.plays, [viola]).unwrap();
        f.db.delete_entity(viola).unwrap();
        assert!(f.db.entity(viola).is_err());
        assert!(f.db.attr_value_set(edith, f.plays).unwrap().is_empty());
        // The freed name can be reused.
        assert!(f.db.insert_entity(f.instruments, "viola").is_ok());
        // Literals cannot be deleted.
        let four = f.db.int(4);
        assert_eq!(
            f.db.delete_entity(four).unwrap_err(),
            CoreError::LiteralEntity(four)
        );
    }

    #[test]
    fn removal_from_value_subclass_scrubs_attr_values() {
        let mut f = fixture();
        // An attribute whose value class is a *subclass* of instruments.
        let strings = f.db.create_subclass(f.instruments, "stringed").unwrap();
        let fav =
            f.db.create_attribute(f.musicians, "favourite", strings, Multiplicity::Single)
                .unwrap();
        let edith = f.db.insert_entity(f.musicians, "Edith").unwrap();
        let viola = f.db.insert_entity(f.instruments, "viola").unwrap();
        f.db.add_to_class(viola, strings).unwrap();
        f.db.assign_single(edith, fav, viola).unwrap();
        // Viola leaves `stringed`; the favourite value must not dangle.
        f.db.remove_from_class(viola, strings).unwrap();
        assert_eq!(
            f.db.attr_value(edith, fav).unwrap(),
            AttrValue::Single(EntityId::NULL)
        );
    }

    #[test]
    fn rename_entity_updates_index() {
        let mut f = fixture();
        let edith = f.db.insert_entity(f.musicians, "Edith").unwrap();
        f.db.rename_entity(edith, "Edith Smith").unwrap();
        assert_eq!(f.db.entity_name(edith).unwrap(), "Edith Smith");
        assert!(f.db.entity_by_name(f.musicians, "Edith").is_err());
        assert_eq!(
            f.db.entity_by_name(f.musicians, "Edith Smith").unwrap(),
            edith
        );
        // Renaming onto an existing name is refused.
        let bob = f.db.insert_entity(f.musicians, "Bob").unwrap();
        assert!(f.db.rename_entity(bob, "Edith Smith").is_err());
        // Renaming an interned literal is refused.
        let four = f.db.int(4);
        assert!(f.db.rename_entity(four, "five").is_err());
    }

    #[test]
    fn grouping_sets_partition_by_attribute() {
        let mut f = fixture();
        let families = f.db.create_baseclass("families").unwrap();
        let family =
            f.db.create_attribute(f.instruments, "family", families, Multiplicity::Single)
                .unwrap();
        let by_family =
            f.db.create_grouping(f.instruments, "by_family", family)
                .unwrap();
        let brass = f.db.insert_entity(families, "brass").unwrap();
        let wood = f.db.insert_entity(families, "woodwind").unwrap();
        let flute = f.db.insert_entity(f.instruments, "flute").unwrap();
        let oboe = f.db.insert_entity(f.instruments, "oboe").unwrap();
        let tuba = f.db.insert_entity(f.instruments, "tuba").unwrap();
        f.db.assign_single(flute, family, wood).unwrap();
        f.db.assign_single(oboe, family, wood).unwrap();
        f.db.assign_single(tuba, family, brass).unwrap();
        let sets = f.db.grouping_sets(by_family).unwrap();
        // Ordered by the families extent (brass first), empty sets included.
        assert_eq!(sets.len(), 2);
        assert_eq!(sets[0].index, brass);
        assert_eq!(sets[0].members.as_slice(), &[tuba]);
        assert_eq!(sets[1].index, wood);
        assert_eq!(sets[1].members.as_slice(), &[flute, oboe]);
        assert_eq!(
            f.db.grouping_set_members(by_family, wood)
                .unwrap()
                .as_slice(),
            &[flute, oboe]
        );
    }

    #[test]
    fn grouping_on_boolean_attr_shows_nonempty_only() {
        let mut f = fixture();
        let work_status =
            f.db.create_grouping(f.musicians, "work_status", f.union)
                .unwrap();
        let edith = f.db.insert_entity(f.musicians, "Edith").unwrap();
        let yes = f.db.boolean(true);
        f.db.boolean(false); // interned but unused by any musician
        f.db.assign_single(edith, f.union, yes).unwrap();
        let sets = f.db.grouping_sets(work_status).unwrap();
        assert_eq!(sets.len(), 1);
        assert_eq!(sets[0].index, yes);
        assert_eq!(sets[0].members.as_slice(), &[edith]);
    }

    #[test]
    fn grouping_ranged_attribute_stores_index_and_expands() {
        let mut f = fixture();
        let families = f.db.create_baseclass("families").unwrap();
        let family =
            f.db.create_attribute(f.instruments, "family", families, Multiplicity::Single)
                .unwrap();
        let by_family =
            f.db.create_grouping(f.instruments, "by_family", family)
                .unwrap();
        // music_groups.includes: musicians → grouping by_family, i.e. each
        // value names a family's instrument set.
        let groups = f.db.create_baseclass("music_groups").unwrap();
        let includes =
            f.db.create_attribute(groups, "includes", by_family, Multiplicity::Multi)
                .unwrap();
        let wood = f.db.insert_entity(families, "woodwind").unwrap();
        let flute = f.db.insert_entity(f.instruments, "flute").unwrap();
        f.db.assign_single(flute, family, wood).unwrap();
        let q = f.db.insert_entity(groups, "quartet1").unwrap();
        // The stored value is the *index* entity (the family)…
        f.db.assign_multi(q, includes, [wood]).unwrap();
        // …and expansion yields the set's members (instruments).
        assert_eq!(
            f.db.attr_value_set(q, includes).unwrap().as_slice(),
            &[flute]
        );
        // A non-index entity is rejected.
        assert!(f.db.assign_multi(q, includes, [flute]).is_err());
    }

    #[test]
    fn direct_insert_into_derived_class_refused() {
        let mut f = fixture();
        let derived =
            f.db.create_derived_subclass(f.musicians, "quartet_players")
                .unwrap();
        let edith = f.db.insert_entity(f.musicians, "Edith").unwrap();
        assert_eq!(
            f.db.add_to_class(edith, derived).unwrap_err(),
            CoreError::DerivedClass(derived)
        );
    }
}
