//! Scalar literals and the four predefined baseclasses.
//!
//! The paper assumes that "the standard baseclasses, Integers, Booleans,
//! Reals, and Strings, are always in our schema and contain as data all
//! integers, booleans, reals and strings of interest". These classes are
//! conceptually infinite; the engine *interns* each literal into an entity
//! of the corresponding baseclass on first use.

use std::fmt;

use crate::error::CoreError;

/// The four predefined baseclasses of every ISIS schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BaseKind {
    /// The `STRINGS` baseclass.
    Strings,
    /// The `INTEGERS` baseclass.
    Integers,
    /// The `REALS` baseclass.
    Reals,
    /// The `BOOLEANS` (`YES/NO`) baseclass.
    Booleans,
}

impl BaseKind {
    /// All predefined baseclasses, in the fixed order in which every
    /// database allocates them.
    pub const ALL: [BaseKind; 4] = [
        BaseKind::Strings,
        BaseKind::Integers,
        BaseKind::Reals,
        BaseKind::Booleans,
    ];

    /// The display name of the predefined baseclass.
    pub fn name(self) -> &'static str {
        match self {
            BaseKind::Strings => "STRINGS",
            BaseKind::Integers => "INTEGERS",
            BaseKind::Reals => "REALS",
            BaseKind::Booleans => "YES/NO",
        }
    }
}

impl fmt::Display for BaseKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A scalar value drawn from one of the predefined baseclasses.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// A string of the `STRINGS` baseclass.
    Str(String),
    /// An integer of the `INTEGERS` baseclass.
    Int(i64),
    /// A real of the `REALS` baseclass. NaN is rejected at construction.
    Real(f64),
    /// A boolean of the `YES/NO` baseclass.
    Bool(bool),
}

impl Literal {
    /// The predefined baseclass this literal belongs to.
    pub fn base_kind(&self) -> BaseKind {
        match self {
            Literal::Str(_) => BaseKind::Strings,
            Literal::Int(_) => BaseKind::Integers,
            Literal::Real(_) => BaseKind::Reals,
            Literal::Bool(_) => BaseKind::Booleans,
        }
    }

    /// Builds a `Real` literal, rejecting NaN (which would break interning
    /// and ordering).
    pub fn real(v: f64) -> Result<Literal, CoreError> {
        if v.is_nan() {
            Err(CoreError::InvalidLiteral("NaN is not a valid REAL".into()))
        } else {
            Ok(Literal::Real(v))
        }
    }

    /// The entity name displayed for this literal; also the key under which
    /// the literal is interned in its baseclass.
    pub fn display_name(&self) -> String {
        match self {
            Literal::Str(s) => s.clone(),
            Literal::Int(i) => i.to_string(),
            Literal::Real(r) => {
                // Keep integral reals distinguishable from INTEGER entities.
                if r.fract() == 0.0 && r.is_finite() {
                    format!("{r:.1}")
                } else {
                    format!("{r}")
                }
            }
            Literal::Bool(b) => {
                if *b {
                    "YES".into()
                } else {
                    "NO".into()
                }
            }
        }
    }

    /// A hashable, equality-stable key for interning (reals keyed by bit
    /// pattern; `-0.0` is normalised to `0.0`).
    pub fn intern_key(&self) -> LiteralKey {
        match self {
            Literal::Str(s) => LiteralKey::Str(s.clone()),
            Literal::Int(i) => LiteralKey::Int(*i),
            Literal::Real(r) => {
                let norm = if *r == 0.0 { 0.0f64 } else { *r };
                LiteralKey::Real(norm.to_bits())
            }
            Literal::Bool(b) => LiteralKey::Bool(*b),
        }
    }

    /// Numeric view shared by `Int` and `Real`, used by ordering operators.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Literal::Int(i) => Some(*i as f64),
            Literal::Real(r) => Some(*r),
            _ => None,
        }
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.display_name())
    }
}

impl From<i64> for Literal {
    fn from(v: i64) -> Self {
        Literal::Int(v)
    }
}

impl From<bool> for Literal {
    fn from(v: bool) -> Self {
        Literal::Bool(v)
    }
}

impl From<&str> for Literal {
    fn from(v: &str) -> Self {
        Literal::Str(v.to_string())
    }
}

impl From<String> for Literal {
    fn from(v: String) -> Self {
        Literal::Str(v)
    }
}

/// Interning key for literals; see [`Literal::intern_key`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum LiteralKey {
    /// Key of a string literal.
    Str(String),
    /// Key of an integer literal.
    Int(i64),
    /// Key of a real literal (IEEE bit pattern, `-0.0` normalised).
    Real(u64),
    /// Key of a boolean literal.
    Bool(bool),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_kind_names() {
        assert_eq!(BaseKind::Strings.name(), "STRINGS");
        assert_eq!(BaseKind::Integers.name(), "INTEGERS");
        assert_eq!(BaseKind::Reals.name(), "REALS");
        assert_eq!(BaseKind::Booleans.name(), "YES/NO");
        assert_eq!(BaseKind::ALL.len(), 4);
    }

    #[test]
    fn literal_base_kinds() {
        assert_eq!(Literal::from("oboe").base_kind(), BaseKind::Strings);
        assert_eq!(Literal::from(4i64).base_kind(), BaseKind::Integers);
        assert_eq!(Literal::real(1.5).unwrap().base_kind(), BaseKind::Reals);
        assert_eq!(Literal::from(true).base_kind(), BaseKind::Booleans);
    }

    #[test]
    fn nan_rejected() {
        assert!(Literal::real(f64::NAN).is_err());
        assert!(Literal::real(f64::INFINITY).is_ok());
    }

    #[test]
    fn display_names() {
        assert_eq!(Literal::from("piano").display_name(), "piano");
        assert_eq!(Literal::from(4i64).display_name(), "4");
        assert_eq!(Literal::real(2.0).unwrap().display_name(), "2.0");
        assert_eq!(Literal::real(2.5).unwrap().display_name(), "2.5");
        assert_eq!(Literal::from(true).display_name(), "YES");
        assert_eq!(Literal::from(false).display_name(), "NO");
    }

    #[test]
    fn intern_key_normalises_negative_zero() {
        let a = Literal::real(0.0).unwrap().intern_key();
        let b = Literal::real(-0.0).unwrap().intern_key();
        assert_eq!(a, b);
    }

    #[test]
    fn intern_keys_distinguish_types() {
        // The integer 4 and the string "4" are different entities.
        assert_ne!(
            Literal::from(4i64).intern_key(),
            Literal::from("4").intern_key()
        );
    }

    #[test]
    fn as_f64_numeric_only() {
        assert_eq!(Literal::from(3i64).as_f64(), Some(3.0));
        assert_eq!(Literal::real(2.5).unwrap().as_f64(), Some(2.5));
        assert_eq!(Literal::from("x").as_f64(), None);
        assert_eq!(Literal::from(true).as_f64(), None);
    }
}
