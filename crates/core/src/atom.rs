//! Predicate atoms (§2).
//!
//! For a derived subclass `S ⊆ V` defined by `P(e)`, atoms take the forms
//!
//! * (a) `<map_V(e)> <operator> <map_V'(e)>` — two maps from the candidate
//!   entity `e`;
//! * (b) `<map_V(e)> <operator> <map_C(w)>, w ∈ C` — a map from `e` against
//!   a map applied to a *constant* `w` picked (or created) at the data level.
//!
//! For a derived attribute `A: C → V` defined per source entity `x` by
//! `P_x(e)`, form (c) is additionally available:
//!
//! * (c) `<map_V(e)> <operator> <map_C(x)>` — a map from `e` against a map
//!   applied to the source entity `x`.

use std::fmt;

use crate::ids::{ClassId, EntityId};
use crate::map::Map;
use crate::op::Operator;
use crate::orderedset::OrderedSet;

/// The right-hand side of an atom.
#[derive(Debug, Clone, PartialEq)]
pub enum Rhs {
    /// Form (a): a map applied to the candidate entity `e` itself.
    SelfMap(Map),
    /// Form (b): a map applied to a constant set of entities anchored in
    /// `class` (the worksheet's *constant* / *constant starting at class*
    /// options; the anchor entities are picked at the data level).
    Constant {
        /// The class the constant entities were selected from.
        class: ClassId,
        /// The selected constant entities.
        anchors: OrderedSet,
        /// A further map applied to the anchors (identity for a plain
        /// constant such as `{4}` or `{piano}`).
        map: Map,
    },
    /// Form (c): a map applied to the *source* entity `x` (derived
    /// attributes only; rejected when validating a subclass predicate).
    SourceMap(Map),
}

impl Rhs {
    /// A plain constant: the identity map over the given anchors.
    pub fn constant(class: ClassId, anchors: impl IntoIterator<Item = EntityId>) -> Rhs {
        Rhs::Constant {
            class,
            anchors: anchors.into_iter().collect(),
            map: Map::identity(),
        }
    }
}

/// A single atom: `lhs-map(e) op rhs`.
///
/// The left-hand side is always a map from the candidate entity, per the
/// grammar of §2.
#[derive(Debug, Clone, PartialEq)]
pub struct Atom {
    /// Map applied to the candidate entity `e` of the value class `V`.
    pub lhs: Map,
    /// The (possibly negated) comparison operator.
    pub op: Operator,
    /// The right-hand side.
    pub rhs: Rhs,
}

impl Atom {
    /// Builds an atom.
    pub fn new(lhs: Map, op: impl Into<Operator>, rhs: Rhs) -> Atom {
        Atom {
            lhs,
            op: op.into(),
            rhs,
        }
    }

    /// `true` if the atom uses form (c) and therefore only makes sense in a
    /// derived-attribute predicate.
    pub fn references_source(&self) -> bool {
        matches!(self.rhs, Rhs::SourceMap(_))
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(e) {} ", self.lhs, self.op)?;
        match &self.rhs {
            Rhs::SelfMap(m) => write!(f, "{m}(e)"),
            Rhs::Constant { anchors, map, .. } => {
                if map.is_identity() {
                    write!(f, "{anchors}")
                } else {
                    write!(f, "{map}({anchors})")
                }
            }
            Rhs::SourceMap(m) => write!(f, "{m}(x)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::AttrId;
    use crate::op::CompareOp;

    fn a(i: u32) -> AttrId {
        AttrId::from_raw(i)
    }

    #[test]
    fn constant_atom_display() {
        let atom = Atom::new(
            Map::single(a(1)),
            CompareOp::SetEq,
            Rhs::constant(ClassId::from_raw(1), [EntityId::from_raw(9)]),
        );
        assert_eq!(atom.to_string(), "a1(e) = {e9}");
        assert!(!atom.references_source());
    }

    #[test]
    fn source_map_atom_display() {
        let atom = Atom::new(
            Map::identity(),
            CompareOp::Match,
            Rhs::SourceMap(Map::new(vec![a(2), a(3)])),
        );
        assert_eq!(atom.to_string(), "·(e) ~ a2 a3(x)");
        assert!(atom.references_source());
    }

    #[test]
    fn mapped_constant_display() {
        let atom = Atom::new(
            Map::single(a(1)),
            CompareOp::Superset,
            Rhs::Constant {
                class: ClassId::from_raw(2),
                anchors: [EntityId::from_raw(3)].into_iter().collect(),
                map: Map::single(a(4)),
            },
        );
        assert_eq!(atom.to_string(), "a1(e) ⊇ a4({e3})");
    }
}
