//! The semantic network (§2).
//!
//! "The semantic network, with arc (X,Y) labeled A iff A is attribute of
//! class X with value class Y … a single arrow for singlevalued and a double
//! one for multivalued attributes. In it no grouping node has outgoing arcs.
//! The outgoing arcs of a class node correspond to its attributes, including
//! those that are inherited. If a grouping node corresponds to a grouping on
//! attribute A, we label it with A."

use crate::attribute::{Multiplicity, ValueClass};
use crate::error::Result;
use crate::ids::{AttrId, ClassId, SchemaNode};
use crate::Database;

/// One labeled arc of the semantic network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetworkArc {
    /// The source class.
    pub from: ClassId,
    /// The target node (class or grouping).
    pub to: SchemaNode,
    /// The attribute labeling the arc.
    pub attr: AttrId,
    /// `true` when the arc came to `from` by inheritance rather than being
    /// owned by it.
    pub inherited: bool,
    /// Single arrow or double arrow.
    pub multiplicity: Multiplicity,
}

impl Database {
    /// The outgoing semantic-network arcs of `class`, including inherited
    /// attributes, in display order (inherited first).
    pub fn network_arcs_of(&self, class: ClassId) -> Result<Vec<NetworkArc>> {
        let own: std::collections::HashSet<AttrId> =
            self.class(class)?.own_attrs.iter().copied().collect();
        let mut arcs = Vec::new();
        for a in self.visible_attrs(class)? {
            let rec = self.attr(a)?;
            let to = match rec.value_class {
                ValueClass::Class(c) => SchemaNode::Class(c),
                ValueClass::Grouping(g) => SchemaNode::Grouping(g),
            };
            arcs.push(NetworkArc {
                from: class,
                to,
                attr: a,
                inherited: !own.contains(&a),
                multiplicity: rec.multiplicity,
            });
        }
        Ok(arcs)
    }

    /// Every arc of the semantic network, grouped by source class.
    pub fn semantic_network(&self) -> Result<Vec<NetworkArc>> {
        let mut arcs = Vec::new();
        for (id, _) in self.classes() {
            arcs.extend(self.network_arcs_of(id)?);
        }
        Ok(arcs)
    }

    /// The classes whose attributes point *at* `node` (used for reverse
    /// navigation in the network view).
    pub fn network_sources_of(&self, node: SchemaNode) -> Result<Vec<NetworkArc>> {
        Ok(self
            .semantic_network()?
            .into_iter()
            .filter(|a| a.to == node)
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arcs_include_inherited_and_label_grouping_targets() {
        let mut db = Database::new("t");
        let m = db.create_baseclass("musicians").unwrap();
        let i = db.create_baseclass("instruments").unwrap();
        let plays = db
            .create_attribute(m, "plays", i, Multiplicity::Multi)
            .unwrap();
        let by_instrument = db.create_grouping(m, "by_instrument", plays).unwrap();
        let groups = db.create_baseclass("music_groups").unwrap();
        let section = db
            .create_attribute(groups, "section", by_instrument, Multiplicity::Single)
            .unwrap();
        let soloists = db.create_subclass(m, "soloists").unwrap();

        let arcs = db.network_arcs_of(soloists).unwrap();
        // naming (inherited) + plays (inherited).
        assert_eq!(arcs.len(), 2);
        let plays_arc = arcs.iter().find(|a| a.attr == plays).unwrap();
        assert!(plays_arc.inherited);
        assert_eq!(plays_arc.to, SchemaNode::Class(i));
        assert_eq!(plays_arc.multiplicity, Multiplicity::Multi);

        let garcs = db.network_arcs_of(groups).unwrap();
        let section_arc = garcs.iter().find(|a| a.attr == section).unwrap();
        assert_eq!(section_arc.to, SchemaNode::Grouping(by_instrument));
        assert!(!section_arc.inherited);

        // No grouping has outgoing arcs (arcs only originate at classes).
        for a in db.semantic_network().unwrap() {
            let _ = db.class(a.from).unwrap();
        }

        // Reverse navigation.
        let into_i = db.network_sources_of(SchemaNode::Class(i)).unwrap();
        assert!(into_i.iter().any(|a| a.from == m && a.attr == plays));
        assert!(into_i.iter().any(|a| a.from == soloists));
    }
}
