//! A plain-data image of a database, for persistence.
//!
//! `isis-store` serialises databases without reaching into engine
//! internals: [`Database::to_image`] exports the full state (including
//! tombstoned slots, so ids stay stable across save/load) and
//! [`Database::from_image`] reconstructs a database, rebuilding the derived
//! indexes (literal interning table, entity-name index) and verifying
//! consistency.

use crate::attribute::AttrRecord;
use crate::class::ClassRecord;
use crate::entity::EntityRecord;
use crate::error::{CoreError, Result};
use crate::grouping::GroupingRecord;
use crate::ids::{ClassId, EntityId};
use crate::Database;

/// The complete persistent state of a database.
#[derive(Debug, Clone, PartialEq)]
pub struct DatabaseImage {
    /// Database name.
    pub name: String,
    /// Class arena, including dead slots.
    pub classes: Vec<ClassRecord>,
    /// Attribute arena, including dead slots.
    pub attrs: Vec<AttrRecord>,
    /// Grouping arena, including dead slots.
    pub groupings: Vec<GroupingRecord>,
    /// Entity arena, including dead slots (slot 0 is the null entity).
    pub entities: Vec<EntityRecord>,
    /// Fill-pattern allocation counter.
    pub fill_counter: u32,
    /// Whether the multiple-inheritance extension is enabled.
    pub multi_inheritance: bool,
    /// Integrity constraints, including dead slots.
    pub constraints: Vec<crate::constraint::ConstraintRecord>,
}

impl Database {
    /// Exports the full state of the database.
    pub fn to_image(&self) -> DatabaseImage {
        DatabaseImage {
            name: self.name.clone(),
            classes: self.classes.clone(),
            attrs: self.attrs.clone(),
            groupings: self.groupings.clone(),
            entities: self.entities.clone(),
            fill_counter: self.fill_counter,
            multi_inheritance: self.multi_inheritance,
            constraints: self.constraints.clone(),
        }
    }

    /// Reconstructs a database from an image, rebuilding the literal and
    /// name indexes and checking consistency. Rejects images whose data
    /// violates the §2 rules.
    pub fn from_image(image: DatabaseImage) -> Result<Database> {
        let mut literal_index = std::collections::HashMap::new();
        let mut entity_names = std::collections::HashMap::new();
        for (i, e) in image.entities.iter().enumerate() {
            if i == 0 || !e.alive {
                continue;
            }
            let id = EntityId::from_raw(i as u32);
            if let Some(lit) = &e.literal {
                literal_index.insert(lit.intern_key(), id);
            }
            if entity_names.insert((e.base, e.name.clone()), id).is_some() {
                return Err(CoreError::DuplicateEntityName {
                    base: e.base,
                    name: e.name.clone(),
                });
            }
        }
        // Entity slot 0 must exist (the null entity).
        if image.entities.is_empty() {
            return Err(CoreError::Inconsistent(
                "image has no null entity slot".into(),
            ));
        }
        let db = Database {
            name: image.name,
            classes: image.classes,
            attrs: image.attrs,
            groupings: image.groupings,
            entities: image.entities,
            literal_index,
            entity_names,
            fill_counter: image.fill_counter,
            multi_inheritance: image.multi_inheritance,
            constraints: image.constraints,
            delta: crate::change::DeltaLog::default(),
        };
        // The four predefined baseclasses must be present at their slots.
        for kind in crate::literal::BaseKind::ALL {
            let id = db.predefined(kind);
            let rec = db.class(id)?;
            if rec.kind.predefined() != Some(kind) {
                return Err(CoreError::Inconsistent(format!(
                    "slot {id} does not hold predefined baseclass {kind}"
                )));
            }
        }
        let violations = db.check_consistency()?;
        if let Some(v) = violations.first() {
            return Err(CoreError::Inconsistent(format!(
                "image fails consistency: {v} ({} violations)",
                violations.len()
            )));
        }
        Ok(db)
    }
}

/// Classes listed with their ids (helper for encoders that need stable
/// iteration including dead slots).
pub fn class_slots(image: &DatabaseImage) -> impl Iterator<Item = (ClassId, &ClassRecord)> {
    image
        .classes
        .iter()
        .enumerate()
        .map(|(i, c)| (ClassId::from_raw(i as u32), c))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute::Multiplicity;

    fn sample() -> Database {
        let mut db = Database::new("img");
        let m = db.create_baseclass("musicians").unwrap();
        let i = db.create_baseclass("instruments").unwrap();
        let plays = db
            .create_attribute(m, "plays", i, Multiplicity::Multi)
            .unwrap();
        let s = db.create_subclass(m, "soloists").unwrap();
        let e = db.insert_entity(m, "Edith").unwrap();
        let v = db.insert_entity(i, "viola").unwrap();
        db.add_to_class(e, s).unwrap();
        db.assign_multi(e, plays, [v]).unwrap();
        db.int(4);
        // Leave a tombstone behind.
        let dead = db.insert_entity(i, "kazoo").unwrap();
        db.delete_entity(dead).unwrap();
        db
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let db = sample();
        let img = db.to_image();
        let back = Database::from_image(img.clone()).unwrap();
        assert_eq!(back.to_image(), img);
        assert!(back.is_consistent().unwrap());
        // Ids still resolve identically.
        let m = back.class_by_name("musicians").unwrap();
        assert_eq!(m, db.class_by_name("musicians").unwrap());
        let e = back.entity_by_name(m, "Edith").unwrap();
        assert_eq!(back.entity_name(e).unwrap(), "Edith");
        // Interning still dedups after reload.
        let mut back = back;
        let four_again = back.int(4);
        assert_eq!(
            db.literal_of(four_again).cloned(),
            back.literal_of(four_again).cloned()
        );
    }

    #[test]
    fn tombstones_keep_ids_stable() {
        let db = sample();
        let img = db.to_image();
        let back = Database::from_image(img).unwrap();
        // A fresh insert allocates past the tombstone, not into it.
        let mut back = back;
        let i = back.class_by_name("instruments").unwrap();
        let fresh = back.insert_entity(i, "ocarina").unwrap();
        // The dead slot is never reused (the name string interns first, so
        // the fresh id lands past the old arena length).
        assert!(fresh.raw() as usize >= db.to_image().entities.len());
    }

    #[test]
    fn corrupted_image_rejected() {
        let db = sample();
        let mut img = db.to_image();
        // Sever a subclass membership invariant.
        let m = db.class_by_name("musicians").unwrap();
        let e = db.entity_by_name(m, "Edith").unwrap();
        img.classes[m.index()].members.remove(e);
        assert!(matches!(
            Database::from_image(img).unwrap_err(),
            CoreError::Inconsistent(_)
        ));
    }

    #[test]
    fn duplicate_names_rejected() {
        let db = sample();
        let mut img = db.to_image();
        let m = db.class_by_name("musicians").unwrap();
        // Forge a second Edith.
        img.entities
            .push(crate::entity::EntityRecord::user("Edith", m));
        img.classes[m.index()]
            .members
            .insert(EntityId::from_raw((img.entities.len() - 1) as u32));
        assert!(Database::from_image(img).is_err());
    }

    #[test]
    fn empty_image_rejected() {
        let img = DatabaseImage {
            name: "x".into(),
            classes: vec![],
            attrs: vec![],
            groupings: vec![],
            entities: vec![],
            fill_counter: 0,
            multi_inheritance: false,
            constraints: vec![],
        };
        assert!(Database::from_image(img).is_err());
    }
}
