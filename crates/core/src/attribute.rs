//! Attribute records.

use crate::column::{AttrColumn, ValueRef};
use crate::ids::{ClassId, EntityId, GroupingId};
use crate::orderedset::OrderedSet;
use crate::predicate::AttrDerivation;

/// Whether an attribute maps each member to one value or to a set (§2):
/// "attribute A of C with value class V is a function from C to the subsets
/// of V … unless this function is constrained to map each element of C to a
/// singleton subset".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Multiplicity {
    /// `A: C → V` — one value per member (the null entity by default).
    Single,
    /// `A: C ↔ V` — a set of values per member (empty by default).
    Multi,
}

/// The range of an attribute: a class, or a grouping (§2 allows "attribute B
/// to be a function from a class S to a grouping G", treated as
/// `B: S ↔ parent(G)` when composed in maps).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueClass {
    /// The attribute draws its values from a class.
    Class(ClassId),
    /// The attribute draws its values from a grouping; each value denotes
    /// one of the grouping's sets, indexed by an entity of the grouping's
    /// index class.
    Grouping(GroupingId),
}

/// The stored value of an attribute for one entity.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// A singlevalued assignment.
    Single(EntityId),
    /// A multivalued assignment.
    Multi(OrderedSet),
}

impl AttrValue {
    /// The value as a set (singletons become one-element sets; the null
    /// entity becomes the empty set for evaluation purposes).
    pub fn as_set(&self) -> OrderedSet {
        match self {
            AttrValue::Single(e) => {
                if e.is_null() {
                    OrderedSet::new()
                } else {
                    [*e].into_iter().collect()
                }
            }
            AttrValue::Multi(s) => s.clone(),
        }
    }
}

/// A stored attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct AttrRecord {
    /// The attribute name, unique among the attributes visible on the owner
    /// (own + inherited).
    pub name: String,
    /// The class this attribute is defined on; subclasses inherit it.
    pub owner: ClassId,
    /// Where values are drawn from.
    pub value_class: ValueClass,
    /// Single- or multi-valued.
    pub multiplicity: Multiplicity,
    /// `true` for the naming attribute of a baseclass (always the first
    /// attribute, singlevalued into STRINGS).
    pub naming: bool,
    /// The derivation, for derived attributes ((re)define derivation).
    pub derivation: Option<AttrDerivation>,
    /// Stored values, in hybrid columnar layout. Absence means the
    /// default: the null entity for singlevalued, the empty set for
    /// multivalued (defaults are never stored — see [`AttrColumn`]).
    pub values: AttrColumn,
    /// Tombstone flag.
    pub alive: bool,
}

impl AttrRecord {
    /// `true` if this attribute maps to sets.
    pub fn is_multi(&self) -> bool {
        self.multiplicity == Multiplicity::Multi
    }

    /// `true` if this attribute has a stored derivation.
    pub fn is_derived(&self) -> bool {
        self.derivation.is_some()
    }

    /// The default value for an unassigned member.
    pub fn default_value(&self) -> AttrValue {
        match self.multiplicity {
            Multiplicity::Single => AttrValue::Single(EntityId::NULL),
            Multiplicity::Multi => AttrValue::Multi(OrderedSet::new()),
        }
    }

    /// The stored (or default) value for `entity`, cloned. Hot paths that
    /// only need to *read* the value should use
    /// [`AttrRecord::value_ref`], which borrows instead.
    pub fn value_of(&self, entity: EntityId) -> AttrValue {
        self.values
            .get(entity)
            .map(ValueRef::to_owned)
            .unwrap_or_else(|| self.default_value())
    }

    /// The stored (or default) value for `entity`, borrowed: multivalued
    /// reads cost nothing instead of cloning the whole set. The default
    /// resolves to `Single(NULL)` / a borrow of the shared empty set
    /// according to the attribute's multiplicity.
    pub fn value_ref(&self, entity: EntityId) -> ValueRef<'_> {
        match self.values.get(entity) {
            Some(v) => v,
            None => match self.multiplicity {
                Multiplicity::Single => ValueRef::Single(EntityId::NULL),
                Multiplicity::Multi => ValueRef::Multi(crate::column::empty_set()),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attr(m: Multiplicity) -> AttrRecord {
        AttrRecord {
            name: "plays".into(),
            owner: ClassId::from_raw(4),
            value_class: ValueClass::Class(ClassId::from_raw(5)),
            multiplicity: m,
            naming: false,
            derivation: None,
            values: AttrColumn::new(),
            alive: true,
        }
    }

    #[test]
    fn defaults() {
        let s = attr(Multiplicity::Single);
        assert_eq!(s.default_value(), AttrValue::Single(EntityId::NULL));
        let m = attr(Multiplicity::Multi);
        assert_eq!(m.default_value(), AttrValue::Multi(OrderedSet::new()));
        assert!(m.is_multi());
        assert!(!s.is_multi());
    }

    #[test]
    fn value_of_falls_back_to_default() {
        let mut a = attr(Multiplicity::Single);
        assert_eq!(
            a.value_of(EntityId::from_raw(7)),
            AttrValue::Single(EntityId::NULL)
        );
        a.values.set(
            EntityId::from_raw(7),
            AttrValue::Single(EntityId::from_raw(9)),
        );
        assert_eq!(
            a.value_of(EntityId::from_raw(7)),
            AttrValue::Single(EntityId::from_raw(9))
        );
        assert_eq!(
            a.value_ref(EntityId::from_raw(7)),
            ValueRef::Single(EntityId::from_raw(9))
        );
        assert_eq!(
            a.value_ref(EntityId::from_raw(8)),
            ValueRef::Single(EntityId::NULL)
        );
    }

    #[test]
    fn null_single_projects_to_empty_set() {
        assert!(AttrValue::Single(EntityId::NULL).as_set().is_empty());
        let s = AttrValue::Single(EntityId::from_raw(3)).as_set();
        assert_eq!(s.as_slice(), &[EntityId::from_raw(3)]);
    }
}
