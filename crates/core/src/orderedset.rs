//! An insertion-ordered set of [`EntityId`]s.
//!
//! Class extents and multivalued attribute values are sets, but the data
//! level of the interface shows them as *pannable lists*, so insertion order
//! must be preserved deterministically. `OrderedSet` pairs a vector (order)
//! with a hash set (membership).

use std::collections::HashSet;
use std::fmt;

use crate::ids::EntityId;

/// An insertion-ordered set of entity ids.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OrderedSet {
    order: Vec<EntityId>,
    members: HashSet<EntityId>,
}

impl OrderedSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a set with capacity for `n` members.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            order: Vec::with_capacity(n),
            members: HashSet::with_capacity(n),
        }
    }

    /// Inserts `e`, returning `true` if it was not already present.
    pub fn insert(&mut self, e: EntityId) -> bool {
        if self.members.insert(e) {
            self.order.push(e);
            true
        } else {
            false
        }
    }

    /// Removes `e`, returning `true` if it was present. O(n) in the order
    /// list; extents are interactive-scale so this is acceptable, and order
    /// of the remaining members is preserved (the UI requirement).
    pub fn remove(&mut self, e: EntityId) -> bool {
        if self.members.remove(&e) {
            if let Some(pos) = self.order.iter().position(|&x| x == e) {
                self.order.remove(pos);
            }
            true
        } else {
            false
        }
    }

    /// Membership test.
    pub fn contains(&self, e: EntityId) -> bool {
        self.members.contains(&e)
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// `true` if the set has no members.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Iterates members in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = EntityId> + '_ {
        self.order.iter().copied()
    }

    /// The members as an ordered slice.
    pub fn as_slice(&self) -> &[EntityId] {
        &self.order
    }

    /// `true` if every member of `self` is in `other`.
    pub fn is_subset(&self, other: &OrderedSet) -> bool {
        self.order.iter().all(|e| other.contains(*e))
    }

    /// `true` if the two sets share at least one member (the paper's weak
    /// match operator `~`).
    pub fn intersects(&self, other: &OrderedSet) -> bool {
        let (small, large) = if self.len() <= other.len() {
            (self, other)
        } else {
            (other, self)
        };
        small.order.iter().any(|e| large.contains(*e))
    }

    /// Set equality (order-insensitive).
    pub fn set_eq(&self, other: &OrderedSet) -> bool {
        self.len() == other.len() && self.is_subset(other)
    }

    /// Removes all members.
    pub fn clear(&mut self) {
        self.order.clear();
        self.members.clear();
    }

    /// If the set is a singleton, returns its sole member.
    pub fn as_singleton(&self) -> Option<EntityId> {
        if self.order.len() == 1 {
            Some(self.order[0])
        } else {
            None
        }
    }

    /// Inserts every member of `other`.
    pub fn extend_from(&mut self, other: &OrderedSet) {
        for e in other.iter() {
            self.insert(e);
        }
    }
}

impl FromIterator<EntityId> for OrderedSet {
    fn from_iter<I: IntoIterator<Item = EntityId>>(iter: I) -> Self {
        let mut s = OrderedSet::new();
        for e in iter {
            s.insert(e);
        }
        s
    }
}

impl<'a> IntoIterator for &'a OrderedSet {
    type Item = EntityId;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, EntityId>>;

    fn into_iter(self) -> Self::IntoIter {
        self.order.iter().copied()
    }
}

impl fmt::Display for OrderedSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, e) in self.order.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(i: u32) -> EntityId {
        EntityId::from_raw(i)
    }

    #[test]
    fn insert_preserves_order_and_dedups() {
        let mut s = OrderedSet::new();
        assert!(s.insert(e(3)));
        assert!(s.insert(e(1)));
        assert!(!s.insert(e(3)));
        assert_eq!(s.as_slice(), &[e(3), e(1)]);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn remove_keeps_relative_order() {
        let mut s: OrderedSet = [e(1), e(2), e(3)].into_iter().collect();
        assert!(s.remove(e(2)));
        assert!(!s.remove(e(2)));
        assert_eq!(s.as_slice(), &[e(1), e(3)]);
        assert!(!s.contains(e(2)));
    }

    #[test]
    fn subset_and_equality() {
        let a: OrderedSet = [e(1), e(2)].into_iter().collect();
        let b: OrderedSet = [e(2), e(1), e(3)].into_iter().collect();
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        let c: OrderedSet = [e(2), e(1)].into_iter().collect();
        assert!(a.set_eq(&c));
        assert!(!a.set_eq(&b));
        // set_eq ignores insertion order, Eq (derived) does not.
        assert_ne!(a, c);
    }

    #[test]
    fn weak_match() {
        let a: OrderedSet = [e(1), e(2)].into_iter().collect();
        let b: OrderedSet = [e(2), e(9)].into_iter().collect();
        let c: OrderedSet = [e(7)].into_iter().collect();
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert!(!OrderedSet::new().intersects(&a));
    }

    #[test]
    fn singleton_projection() {
        let one: OrderedSet = [e(5)].into_iter().collect();
        let two: OrderedSet = [e(5), e(6)].into_iter().collect();
        assert_eq!(one.as_singleton(), Some(e(5)));
        assert_eq!(two.as_singleton(), None);
        assert_eq!(OrderedSet::new().as_singleton(), None);
    }

    #[test]
    fn display_format() {
        let s: OrderedSet = [e(1), e(2)].into_iter().collect();
        assert_eq!(s.to_string(), "{e1, e2}");
        assert_eq!(OrderedSet::new().to_string(), "{}");
    }

    #[test]
    fn extend_from_unions() {
        let mut a: OrderedSet = [e(1)].into_iter().collect();
        let b: OrderedSet = [e(1), e(2)].into_iter().collect();
        a.extend_from(&b);
        assert_eq!(a.as_slice(), &[e(1), e(2)]);
    }
}
