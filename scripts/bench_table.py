#!/usr/bin/env python3
"""Parses criterion output (bench_output.txt) into a median-time table."""
import re, sys

path = sys.argv[1] if len(sys.argv) > 1 else "bench_output.txt"
text = open(path).read()
rows = []
# Two shapes: "name\n  time: [lo mid hi]"  and  "name  time: [lo mid hi]"
pat = re.compile(
    r"^(\S+?)(?:\s*\n\s+|\s+)time:\s+\[[\d.]+ \w+ ([\d.]+) (\w+) [\d.]+ \w+\]", re.M
)
for m in pat.finditer(text):
    name = m.group(1).strip()
    if name.startswith("Benchmarking"):
        continue
    rows.append((name, f"{m.group(2)} {m.group(3)}"))
width = max(len(n) for n, _ in rows) if rows else 0
for n, t in rows:
    print(f"{n:<{width}}  {t}")
