#!/usr/bin/env python3
"""Regenerates the E-1..E-9 tables in EXPERIMENTS.md from bench_output.txt."""
import re, sys

def medians(path="bench_output.txt"):
    text = open(path).read()
    pat = re.compile(r"^(\S+?)(?:\s*\n\s+|\s+)time:\s+\[[\d.]+ \w+ ([\d.]+) (\w+) [\d.]+ \w+\]", re.M)
    out = {}
    for m in pat.finditer(text):
        name = m.group(1).strip()
        if name.startswith("Benchmarking"):
            continue
        val, unit = float(m.group(2)), m.group(3)
        out[name] = (val, unit)
    return out

def us(entry):
    """Format as a human-friendly time string."""
    if entry is None:
        return "—"
    v, unit = entry
    mult = {"ns": 1e-3, "µs": 1.0, "us": 1.0, "ms": 1e3, "s": 1e6}[unit]
    x = v * mult  # µs
    if x < 1:
        return f"{x*1000:.0f} ns"
    if x < 1000:
        return f"{x:.3g} µs"
    return f"{x/1000:.3g} ms"

M = medians()
g = lambda k: us(M.get(k))
lines = []
A = lines.append

A("### E-1 Predicate evaluation (`benches/predicate_eval.rs`)")
A("")
A("| candidates (groups) | `size = {4}` | quartets query (map ⊇ ∧ size =) |")
A("|---|---|---|")
for n in [100, 400, 1600, 6400]:
    A(f"| {n//4} (n={n}) | {g(f'predicate_eval/class_size/size4/{n}')} | {g(f'predicate_eval/class_size/quartets/{n}')} |")
A("")
A("Linear in the candidate class across a 64× sweep. Clause-shape results")
A("(same 400-musician fixture):")
A("")
A("| layout | DNF | CNF |")
A("|---|---|---|")
for shape in ["1c1a", "1c4a", "4c1a", "4c4a"]:
    A(f"| {shape[0]} clause(s) × {shape[2]} atom(s) | {g(f'predicate_eval/shape/eval/{shape}_dnf')} | {g(f'predicate_eval/shape/eval/{shape}_cnf')} |")
A("")
A("Short-circuiting shows directly: AND-of-clauses (CNF, 4c1a) fails fast on")
A("unselective atoms while OR-of-clauses (DNF) must try every clause.")
A("")
A("### E-2 Derived-class maintenance (`benches/derived_class.rs`)")
A("")
A("| n | full refresh | incremental (1 changed musician, incl. index rebuild) | affected-candidate analysis |")
A("|---|---|---|---|")
for n in [100, 400, 1600]:
    A(f"| {n} | {g(f'derived_class/full_refresh/{n}')} | {g(f'derived_class/incremental_one_change/{n}')} | {g(f'derived_class/affected_candidates/{n}')} |")
A("")
A("The incremental arm re-clones the database and rebuilds its inverted")
A("indexes every iteration; even so it overtakes full refresh by n=1600. The")
A("*analysis itself* — which candidates can a change affect — is")
A("sub-microsecond and flat, so a long-lived `DerivedMaintainer` reduces")
A("maintenance to re-evaluating a handful of groups.")
A("")
A("### E-3 Query engine baselines (`benches/baselines.rs`)")
A("")
A("Same quartets query, identical answers (equivalence property-tested):")
A("")
A("| n | ISIS eval | + indexes | + optimizer | parallel ×4 | RA plan | RA cached | RA encode | QBE naive | QBE compiled |")
A("|---|---|---|---|---|---|---|---|---|---|")
for n in [100, 400, 1600]:
    A("| {} | {} | {} | {} | {} | {} | {} | {} | {} | {} |".format(
        n,
        g(f'baselines/isis_eval/{n}'), g(f'baselines/isis_indexed/{n}'),
        g(f'baselines/isis_optimized/{n}'), g(f'baselines/isis_parallel4/{n}'),
        g(f'baselines/ra_plan_eval/{n}'), g(f'baselines/ra_plan_cached/{n}'),
        g(f'baselines/ra_encode/{n}'), g(f'baselines/qbe_eval/{n}'),
        g(f'baselines/qbe_compiled/{n}')))
A("")
A("Shape: the navigational per-candidate evaluator beats the materialising")
A("relational plan (even memoised) and the QBE unifier by growing factors;")
A("compiling QBE templates to hash joins closes most of QBE's gap; index")
A("pruning and atom reordering stack further wins on top of ISIS evaluation;")
A("the parallel evaluator only pays off once per-candidate work dominates")
A("its thread setup (visible in the trend across n).")
A("")
A("### E-4 Navigation / follow (`benches/navigation.rs`, n=1600)")
A("")
A("| map | from one entity | from the whole class (400 groups) |")
A("|---|---|---|")
A(f"| `members` | {g('navigation/map/from_one/len1_members')} | {g('navigation/map/from_all/len1_members')} |")
A(f"| `members plays` | {g('navigation/map/from_one/len2_members_plays')} | {g('navigation/map/from_all/len2_members_plays')} |")
A(f"| `members plays family` | {g('navigation/map/from_one/len3_members_plays_family')} | {g('navigation/map/from_all/len3_members_plays_family')} |")
A("")
A(f"A full session `follow` (command + page push) costs {g('navigation/session_follow/follow_plays_from_edith')};")
A(f"rebuilding the scene after it, {g('navigation/session_follow/scene_after_follow')}. Replaying the")
A(f"**entire §4.2 session** — ~60 commands and 12 scene captures — takes {g('navigation/replay/holiday_party_full')},")
A("orders of magnitude inside an interactive frame (the paper's implicit")
A("responsiveness requirement).")
A("")
A("### E-5 Groupings vs indexes (`benches/grouping.rs`)")
A("")
A("| n | full grouping family | one set by scan | index build | one set by index |")
A("|---|---|---|---|---|")
for n in [100, 400, 1600]:
    A(f"| {n} | {g(f'grouping/grouping_sets/{n}')} | {g(f'grouping/one_set_scan/{n}')} | {g(f'grouping/index_build/{n}')} | {g(f'grouping/one_set_index/{n}')} |")
A("")
A("The paper's groupings are \"completely determined from the parent class")
A("and an attribute\" — recomputed on demand they cost O(|C|); one index")
A("build (≈ one family computation) then answers set lookups in constant")
A("time.")
A("")
A("### E-6 Storage (`benches/storage.rs`)")
A("")
A("| n | snapshot save | snapshot load |")
A("|---|---|---|")
for n in [100, 400, 1600]:
    A(f"| {n} | {g(f'storage/snapshot/save/{n}')} | {g(f'storage/snapshot/load/{n}')} |")
A("")
A(f"WAL append: {g('storage/wal/append/osflush')} with OS flushing, {g('storage/wal/append/fsync')} with")
A(f"per-op fsync (durability is fsync-bound, as it must be). Recovery replays")
A(f"5 000 logged operations in {g('storage/wal/replay_5000_ops')}, so crashed-session recovery is")
A("effectively free at interactive scales.")
A("")
A("### E-7 Rendering (`benches/render.rs`)")
A("")
A("| baseclasses | forest build | ASCII render | SVG render |")
A("|---|---|---|---|")
for n in [4, 16, 64]:
    A(f"| {n} | {g(f'render/build/forest_view/{n}')} | {g(f'render/backend/ascii/{n}')} | {g(f'render/backend/svg/{n}')} |")
A("")
A(f"The network view builds in {g('render/build/network_view_instruments')} and a two-page data view in")
A(f"{g('render/build/data_view_two_pages')}; whole-view latency stays well under a millisecond at 64")
A("baseclasses — far beyond the schemas the figures show.")
A("")
A("### E-8 Constraint enforcement ablation (`benches/constraints.rs`)")
A("")
A("| employees | check one constraint | raw assign (incl. clone) | checked assign |")
A("|---|---|---|---|")
for n in [100, 400, 1600]:
    A(f"| {n} | {g(f'constraints/check/{n}')} | {g(f'constraints/raw_assign/{n}')} | {g(f'constraints/checked_assign/{n}')} |")
A("")
A("`apply_checked` ≈ raw + 2 × check + rollback copy: linear in the")
A("constrained class — right for interactive edits (the §5 use case); bulk")
A("loads should check once at the end.")
A("")
A("### E-9 Inheritance ablation (`benches/inheritance.rs`)")
A("")
A("| chain depth | visible attrs (single parent) | visible attrs (+ secondary chain) | ancestry walk | insert cascade (incl. clone) |")
A("|---|---|---|---|---|")
for d in [2, 8, 32]:
    A(f"| {d} | {g(f'inheritance/visible_attrs_single/{d}')} | {g(f'inheritance/visible_attrs_multi/{d}')} | {g(f'inheritance/ancestry/{d}')} | {g(f'inheritance/insert_cascade/{d}')} |")
A("")
A("Visibility resolution is linear in chain depth, and a secondary parent")
A("chain roughly doubles it (one extra walk) — supporting §2's case that")
A("single-parent trees keep the representation cheap, while showing the §5")
A("extension costs no blow-up.")

table = "\n".join(lines)
doc = open("EXPERIMENTS.md").read()
start = doc.index("### E-1 ")
end = doc.index("## 3. Deviations")
doc = doc[:start] + table + "\n\n" + doc[end:]
open("EXPERIMENTS.md", "w").write(doc)
print("EXPERIMENTS.md tables regenerated;", len(M), "bench entries parsed")
