//! Concurrent sessions over one shared database — the MVCC layer.
//!
//! The paper's ISIS is one workstation, one user. This example shows the
//! multi-session extension (DESIGN.md §6): a [`SharedDatabase`] handle that
//! several [`Session`]s open at once. Each session works against a *pinned
//! snapshot*; writers publish atomically with first-committer-wins conflict
//! detection, and readers see nothing until they explicitly pull.
//!
//! Run with `cargo run --example concurrent_sessions`.

use isis::prelude::*;
use isis_session::SessionError;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A little shared world: people with an age.
    let mut db = Database::new("shared_world");
    let people = db.create_baseclass("people")?;
    let ints = db.predefined(BaseKind::Integers);
    let age = db.create_attribute(people, "age", ints, Multiplicity::Single)?;
    let ada = db.insert_entity(people, "Ada")?;
    let forty = db.int(40);
    db.assign_single(ada, age, forty)?;

    // 1. One database, many sessions. The handle is cheap to clone; every
    //    `Session::open` pins a snapshot of the current head.
    let shared = SharedDatabase::new(db);
    let mut alice = Session::open(&shared).build();
    let mut bob = Session::open(&shared).build();
    println!("both sessions pinned at epoch {}", alice.pinned_epoch());

    // 2. Alice edits locally. Bob sees *nothing* — his snapshot is stable
    //    no matter what other sessions buffer or even commit.
    alice.apply(Command::PickByName("people".into()))?;
    alice.apply(Command::ViewContents)?; // entity creation is a data-level gesture
    alice.apply(Command::CreateEntity("Grace".into()))?;
    let before = bob.database().entity_count();

    // 3. Publishing is explicit. The receipt says what the head accepted.
    let receipt = alice.commit_changes()?;
    println!(
        "alice committed {} change(s) as commit {}",
        receipt.changes, receipt.commits
    );
    assert_eq!(bob.database().entity_count(), before, "bob is isolated");

    // 4. So is catching up: Bob pulls when *he* is ready.
    bob.apply(Command::Pull)?;
    bob.database().entity_by_name(people, "Grace")?;
    println!(
        "bob pulled and now sees Grace (epoch {})",
        bob.pinned_epoch()
    );

    // 5. Non-conflicting concurrent commits rebase automatically: Alice and
    //    Bob both start from the same head, write *different* entities, and
    //    both commits land.
    let mut carol = Session::open(&shared).build();
    alice.transact(|db| db.insert_entity(people, "Edsger").map(|_| ()))?;
    carol.transact(|db| db.insert_entity(people, "Barbara").map(|_| ()))?;
    alice.commit_changes()?;
    let receipt = carol.commit_changes()?; // replayed onto Alice's commit
    println!(
        "carol's commit rebased={} — disjoint writes merge",
        receipt.rebased
    );

    // 6. Conflicting writes don't: first committer wins, the loser gets a
    //    typed conflict naming the contested key.
    let mut dave = Session::open(&shared).build();
    let mut erin = Session::open(&shared).build();
    let bump = |s: &mut Session, n: i64| -> Result<(), SessionError> {
        s.transact(|db| {
            let ada = db.entity_by_name(people, "Ada")?;
            let v = db.int(n);
            db.assign_single(ada, age, v).map(|_| ())
        })
    };
    bump(&mut dave, 41)?;
    bump(&mut erin, 42)?;
    dave.commit_changes()?;
    match erin.commit_changes() {
        Err(SessionError::Conflict(CommitConflict::Value { .. })) => {
            println!("erin's write conflicted on Ada.age — first committer won");
        }
        other => panic!("expected a value conflict, got {other:?}"),
    }
    // The standard recovery: discard (or keep notes), pull, retry.
    erin.discard_changes()?;
    erin.apply(Command::Pull)?;
    bump(&mut erin, 42)?;
    erin.commit_changes()?;
    println!("after pull + retry, erin's commit landed");

    let final_count = shared.read(|db| db.entity_count());
    println!(
        "shared head: {} entities after {} commits",
        final_count,
        shared.commits()
    );
    Ok(())
}
