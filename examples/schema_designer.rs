//! Designing a schema from scratch through the interface — "the techniques
//! used in section 4.2 for adding to and modifying the database may be used
//! equally well for schema definition and data entry" (§4).
//!
//! A university database is built entirely through session commands (as a
//! user would, with mouse picks and menu commands), exercising create
//! subclass / create attribute / (re)specify value class / groupings /
//! undo / multiple inheritance, and rendering the forest as it grows.
//!
//! Run with `cargo run --example schema_designer`.

use isis::prelude::*;
use isis::session::Command as C;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut session = Session::builder(Database::new("university")).build();

    // Baseclasses are created directly on the database through the explicit
    // write-transaction entry point (the forest view's create-class
    // gesture); everything else goes through commands.
    let people = session.transact(|db| db.create_baseclass("people"))?;
    let courses = session.transact(|db| db.create_baseclass("courses"))?;
    let rooms = session.transact(|db| db.create_baseclass("rooms"))?;

    // people: attributes and subclasses.
    session.apply(C::Pick(SchemaNode::Class(people)))?;
    session.apply(C::CreateAttribute {
        name: "teaches".into(),
        multiplicity: Multiplicity::Multi,
    })?;
    session.apply(C::SpecifyValueClass(SchemaNode::Class(courses)))?;
    session.apply(C::Pick(SchemaNode::Class(people)))?;
    session.apply(C::CreateSubclass("students".into()))?;
    session.apply(C::Pick(SchemaNode::Class(people)))?;
    session.apply(C::CreateSubclass("staff".into()))?;

    // A misstep, undone: the designer creates a class and thinks better.
    session.apply(C::Pick(SchemaNode::Class(people)))?;
    session.apply(C::CreateSubclass("wizards".into()))?;
    session.apply(C::Undo)?;
    assert!(session.database().class_by_name("wizards").is_err());
    println!("(created and undid the 'wizards' subclass)");

    // courses: a room attribute, and a grouping of courses by room.
    session.apply(C::PickByName("courses".into()))?;
    session.apply(C::CreateAttribute {
        name: "held_in".into(),
        multiplicity: Multiplicity::Single,
    })?;
    session.apply(C::SpecifyValueClass(SchemaNode::Class(rooms)))?;
    let held_in = session.database().attr_by_name(courses, "held_in")?;
    session.apply(C::PickByName("courses".into()))?;
    session.apply(C::CreateGrouping {
        name: "by_room".into(),
        attr: held_in,
    })?;

    // Multiple inheritance — the paper's §5 extension: teaching assistants
    // are both students and staff.
    let (tas, students, staff) = session.transact(|db| {
        db.enable_multiple_inheritance();
        let students = db.class_by_name("students")?;
        let staff = db.class_by_name("staff")?;
        let tas = db.create_subclass(students, "teaching_assistants")?;
        db.add_secondary_parent(tas, staff)?;
        Ok((tas, students, staff))
    })?;

    // Data entry through the data level.
    session.apply(C::PickByName("rooms".into()))?;
    session.apply(C::ViewContents)?;
    session.apply(C::CreateEntity("Barus 166".into()))?;
    session.apply(C::CreateEntity("CIT 368".into()))?;
    session.apply(C::Pop)?;
    session.apply(C::PickByName("teaching_assistants".into()))?;
    session.apply(C::ViewContents)?;
    session.apply(C::CreateEntity("Kenneth".into()))?;
    session.apply(C::Pop)?;

    // A TA is in students, staff and people (cascaded memberships).
    let db = session.database();
    let kenneth = db.entity_by_name(people, "Kenneth")?;
    for class in [tas, students, staff, people] {
        assert!(db.members(class)?.contains(kenneth));
    }
    // And sees attributes from both parents (just `teaches` here, via
    // people; the visible set contains no duplicates).
    let visible = db.visible_attrs(tas)?;
    println!(
        "teaching_assistants sees {} attributes: {:?}",
        visible.len(),
        visible
            .iter()
            .map(|a| db.attr(*a).map(|r| r.name.clone()))
            .collect::<Result<Vec<_>, _>>()?
    );

    // The finished schema, verified consistent and rendered.
    assert!(db.is_consistent()?);
    session.apply(C::PickByName("people".into()))?;
    println!("\n{}", render::ascii::render(&session.scene()?));
    Ok(())
}
