//! Browsing at both levels — §3's claim that one interface serves schema
//! browsing, data browsing, and navigation, with "uniform graphical
//! representations and consistent user interaction techniques".
//!
//! Walks the Instrumental_Music database: forest → network → data pages →
//! follow chains → groupings, printing each ASCII view as it goes.
//!
//! Run with `cargo run --example browse_explore`.

use isis::prelude::*;
use isis::session::Command as C;

fn show(title: &str, session: &Session) -> Result<(), Box<dyn std::error::Error>> {
    println!("\n───────────────────────── {title} ─────────────────────────");
    println!("{}", render::ascii::render(&session.scene()?));
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let im = isis::sample::instrumental_music()?;
    let mut s = Session::builder(im.db.clone()).build();

    // Schema browsing: the forest, then associations of music_groups.
    s.apply(C::Pick(SchemaNode::Class(im.music_groups)))?;
    show("inheritance forest (music_groups selected)", &s)?;
    s.apply(C::ViewAssociations)?;
    show("semantic network of music_groups", &s)?;

    // Navigate the network: members leads to musicians.
    s.apply(C::Pick(SchemaNode::Class(im.musicians)))?;
    show("semantic network of musicians", &s)?;

    // Data browsing: contents of musicians, pick Amy, follow plays, then
    // family — a three-page chain.
    s.apply(C::Pop)?;
    s.apply(C::ViewContents)?;
    let amy = s.database().entity_by_name(im.musicians, "Amy")?;
    s.apply(C::SelectEntity(amy))?;
    s.apply(C::Follow(im.plays))?;
    s.apply(C::Follow(im.family))?;
    show("data level: musicians → plays → family", &s)?;
    println!(
        "Amy's instruments land in families: {:?}",
        s.pages()
            .last()
            .unwrap()
            .selected
            .iter()
            .map(|e| s.database().entity_name(*e).unwrap().to_string())
            .collect::<Vec<_>>()
    );

    // Grouping browsing: work_status partitions musicians by union flag.
    s.apply(C::Pop)?;
    s.apply(C::Pop)?;
    s.apply(C::Pop)?;
    s.apply(C::Pick(SchemaNode::Grouping(im.work_status)))?;
    s.apply(C::DisplayPredicate)?;
    s.apply(C::ViewContents)?;
    let yes = s
        .database()
        .find_literal(true)
        .expect("booleans are pre-interned");
    s.apply(C::SelectEntity(yes))?;
    show("the work_status grouping (union members selected)", &s)?;
    s.apply(C::FollowGrouping)?;
    let members = s.pages().last().unwrap().selected.len();
    println!("{members} union musicians found by following the grouping.");

    // Scrolling a long member list.
    s.apply(C::Pop)?;
    s.apply(C::Pop)?;
    s.apply(C::Pick(SchemaNode::Class(im.instruments)))?;
    s.apply(C::ViewContents)?;
    s.apply(C::Scroll(6))?;
    show("instruments, panned down 6 rows", &s)?;
    Ok(())
}
