//! The complete §4.2 session: finding entertainment for the department
//! holiday party, exactly as the paper narrates it — browsing, correcting
//! the flute/oboe error, building the quartets query on the predicate
//! worksheet, deriving all_inst, focusing on Edith, creating edith_plays,
//! and saving the database as *entertainment*.
//!
//! Run with `cargo run --example holiday_party`. Pass `--figures` to print
//! every captured figure as ASCII.

use isis::holiday::{run_holiday_party, FIGURES};
use isis::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let show_figures = std::env::args().any(|a| a == "--figures");
    let dir = std::env::temp_dir().join(format!("isis_holiday_{}", std::process::id()));
    let store = StoreDir::open(&dir)?;

    println!("Loading Instrumental_Music and replaying the §4.2 session…\n");
    let (session, transcript) = run_holiday_party(Some(store.clone()))?;

    // Narrate the transcript.
    for step in &transcript.steps {
        for m in &step.messages {
            println!("  [text window] {m}");
        }
    }
    println!("\nCaptured figures:");
    for name in FIGURES {
        let scene = transcript.scene(name).expect("captured");
        println!("  {name}: {} scene elements", scene.elements.len());
        if show_figures {
            println!("{}", render::ascii::render(scene));
        }
    }

    // The session's outcome, verified.
    let db = session.database();
    let quartets = db.class_by_name("quartets")?;
    let groups: Vec<String> = db
        .members(quartets)?
        .iter()
        .map(|e| db.entity_name(e).map(str::to_string))
        .collect::<Result<_, _>>()?;
    println!("\nQuartets found: {groups:?}");
    assert_eq!(groups, vec!["LaBelle Musique".to_string()]);

    let edith_plays = db.class_by_name("edith_plays")?;
    let instruments: Vec<String> = db
        .members(edith_plays)?
        .iter()
        .map(|e| db.entity_name(e).map(str::to_string))
        .collect::<Result<_, _>>()?;
    println!("edith_plays remembers: {instruments:?}");

    // The database was saved as "entertainment" — load it back.
    let saved = store.load("entertainment")?;
    assert!(saved.class_by_name("quartets").is_ok());
    println!("\nSaved databases: {:?}", store.list()?);
    println!("…time to phone LaBelle Musique.");
    std::fs::remove_dir_all(&dir)?;
    Ok(())
}
