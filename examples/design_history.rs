//! Design history and crash recovery — the paper's §5 wish, "it would be
//! useful to be able to keep track of the history of a database design",
//! answered by the write-ahead log: every design decision is durably
//! recorded, narratable, time-travellable, and diffable.
//!
//! Run with `cargo run --example design_history`.

use isis::prelude::*;
use isis::store::{DesignHistory, StoreDir, SyncPolicy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let root = std::env::temp_dir().join(format!("isis_design_history_{}", std::process::id()));
    let dir = StoreDir::open(&root)?;

    // A design session, through the logged database: every operation is
    // WAL-durable the moment it succeeds.
    {
        let mut db = dir.open_logged("orchestra", SyncPolicy::EverySync)?;
        let musicians = db.create_baseclass("musicians")?;
        let instruments = db.create_baseclass("instruments")?;
        let plays = db.create_attribute(musicians, "plays", instruments, Multiplicity::Multi)?;
        db.create_grouping(musicians, "by_instrument", plays)?;
        let edith = db.insert_entity(musicians, "Edith")?;
        let viola = db.insert_entity(instruments, "viola")?;
        db.assign_multi(edith, plays, [viola])?;
        // A design change of heart.
        db.rename_class(instruments, "axes")?;
        db.rename_class(instruments, "instruments")?;
        // The session "crashes" here: no checkpoint, the WAL is the record.
    }

    // Narrate the design history.
    let hist = DesignHistory::load(&dir, "orchestra")?;
    println!("design history ({} operations):", hist.len());
    for entry in hist.narrate()? {
        println!(
            "  {:>3} {} {}",
            entry.seq,
            if entry.schema_level {
                "[schema]"
            } else {
                "[data]  "
            },
            entry.description
        );
    }

    // Time travel: the database as it was three operations in.
    let early = hist.state_at(3)?;
    println!(
        "\nafter 3 operations the schema had classes: {:?}",
        early
            .classes()
            .filter(|(_, c)| !c.is_predefined())
            .map(|(_, c)| c.name.clone())
            .collect::<Vec<_>>()
    );

    // What changed, schema-wise, across the whole session?
    println!("\nschema diff from start to finish:");
    for line in hist.schema_diff(0, hist.len())? {
        println!("  {line}");
    }

    // And the crashed session recovers losslessly.
    let recovered = dir.load("orchestra")?;
    assert!(recovered.is_consistent()?);
    let m = recovered.class_by_name("musicians")?;
    assert!(recovered.entity_by_name(m, "Edith").is_ok());
    println!("\nrecovered database is consistent; Edith survived the crash.");
    std::fs::remove_dir_all(&root)?;
    Ok(())
}
