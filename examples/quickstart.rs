//! Quickstart: build a small semantic database, pose a query as a derived
//! subclass, and look at the result — the ISIS workflow in thirty lines.
//!
//! Run with `cargo run --example quickstart`.

use isis::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A schema: people work in departments; departments have budgets.
    let mut db = Database::new("company");
    let people = db.create_baseclass("people")?;
    let departments = db.create_baseclass("departments")?;
    let ints = db.predefined(BaseKind::Integers);
    let works_in = db.create_attribute(people, "works_in", departments, Multiplicity::Single)?;
    let budget = db.create_attribute(departments, "budget", ints, Multiplicity::Single)?;

    // 2. Data — consistency (entities in one baseclass, values in the value
    // class, singlevalued attributes functional) is enforced on every call.
    let eng = db.insert_entity(departments, "engineering")?;
    let sales = db.insert_entity(departments, "sales")?;
    let big = db.int(1_000_000);
    let small = db.int(50_000);
    db.assign_single(eng, budget, big)?;
    db.assign_single(sales, budget, small)?;
    for (name, dept) in [("Ada", eng), ("Grace", eng), ("Edsger", sales)] {
        let p = db.insert_entity(people, name)?;
        db.assign_single(p, works_in, dept)?;
    }

    // 3. A query is a *derived subclass*: people whose department's budget
    // exceeds 100 000 — the map `works_in budget` compared to a constant.
    let threshold = db.int(100_000);
    let pred = Predicate::dnf(vec![Clause::new(vec![Atom::new(
        Map::new(vec![works_in, budget]),
        CompareOp::Gt,
        Rhs::constant(ints, [threshold]),
    )])]);
    let well_funded = db.create_derived_subclass(people, "well_funded")?;
    let n = db.commit_membership(well_funded, pred)?;
    println!("well_funded has {n} members:");
    for e in db.members(well_funded)?.iter() {
        println!("  - {}", db.entity_name(e)?);
    }
    assert_eq!(n, 2);

    // 4. Browse it the ISIS way: the inheritance forest view.
    let view = isis::views::forest_view(
        &db,
        &isis::views::ForestViewOptions {
            selection: Some(SchemaNode::Class(well_funded)),
            ..Default::default()
        },
    )?;
    println!("\n{}", render::ascii::render(&view.scene));
    Ok(())
}
