//! The query language in depth: every operator, DNF vs CNF, negation,
//! derived attributes — and the same query answered three more ways
//! (compiled relational algebra, QBE templates, index-pruned evaluation),
//! all agreeing. This is the paper's "full power of relational algebra"
//! claim, exercised.
//!
//! Run with `cargo run --example query_builder`.

use isis::prelude::*;
use isis::query::{compile_and_eval, compile_subclass_predicate, encode_database};

fn names(db: &Database, set: impl IntoIterator<Item = EntityId>) -> Vec<String> {
    set.into_iter()
        .map(|e| db.entity_name(e).unwrap().to_string())
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut im = isis::sample::instrumental_music()?;

    // ---- 1. The Figure-9 query, four ways -------------------------------
    let quartets = isis::sample::quartets_predicate(&mut im);
    let db = &im.db;
    let a = db.evaluate_derived_members(im.music_groups, &quartets)?;
    println!("ISIS evaluator      : {:?}", names(db, a.iter()));

    let ra = compile_and_eval(db, im.music_groups, &quartets)?;
    println!("relational algebra  : {:?}", names(db, ra.iter().copied()));
    let plan = compile_subclass_predicate(db, im.music_groups, &quartets)?;
    println!("  (plan: {} operator nodes)", plan.node_count());

    let four = im.db.int(4);
    let rdb = encode_database(&im.db)?;
    let qbe = QbeQuery::new(
        vec![
            isis_query::TemplateRow {
                relation: "attr_music_groups_size".into(),
                cells: vec![
                    isis_query::Cell::Var("g".into()),
                    isis_query::Cell::Const(four),
                ],
            },
            isis_query::TemplateRow {
                relation: "attr_music_groups_members".into(),
                cells: vec![
                    isis_query::Cell::Var("g".into()),
                    isis_query::Cell::Var("m".into()),
                ],
            },
            isis_query::TemplateRow {
                relation: "attr_musicians_plays".into(),
                cells: vec![
                    isis_query::Cell::Var("m".into()),
                    isis_query::Cell::Const(im.piano),
                ],
            },
        ],
        vec![],
        "g",
    )?;
    let q = qbe.eval(&rdb, &im.db)?;
    println!(
        "QBE baseline        : {:?}",
        names(&im.db, q.iter().copied())
    );
    println!("QBE template:\n{qbe}");

    let mut indexed = IndexedEvaluator::new();
    indexed.add_index(&im.db, im.size)?;
    indexed.add_index(&im.db, im.plays)?;
    let i = indexed.evaluate(&im.db, im.music_groups, &quartets)?;
    println!("index-pruned        : {:?}", names(&im.db, i.iter()));
    assert!(a.set_eq(&i));

    // ---- 2. Operators on parade ------------------------------------------
    let db = &mut im.db;
    println!("\nOperators over musicians.plays vs {{viola, violin}}:");
    for op in CompareOp::ALL {
        if op.is_ordering() {
            continue;
        }
        let pred = Predicate::dnf(vec![Clause::new(vec![Atom::new(
            Map::single(im.plays),
            op,
            Rhs::constant(im.instruments, [im.viola, im.violin]),
        )])]);
        let sel = db.evaluate_derived_members(im.musicians, &pred)?;
        println!(
            "  plays {} {{viola, violin}} -> {:?}",
            op,
            names(db, sel.iter())
        );
    }
    // Ordering on a singlevalued map: groups larger than a trio.
    let three = db.int(3);
    let ints = db.predefined(BaseKind::Integers);
    let big = Predicate::dnf(vec![Clause::new(vec![Atom::new(
        Map::single(im.size),
        CompareOp::Gt,
        Rhs::constant(ints, [three]),
    )])]);
    let sel = db.evaluate_derived_members(im.music_groups, &big)?;
    println!("  size > 3 -> {:?}", names(db, sel.iter()));
    // Negation.
    let nonunion = Predicate::dnf(vec![Clause::new(vec![Atom::new(
        Map::single(im.union_attr),
        Operator::negated(CompareOp::Match),
        Rhs::constant(db.predefined(BaseKind::Booleans), [db.boolean(true)]),
    )])]);
    let sel = db.evaluate_derived_members(im.musicians, &nonunion)?;
    println!("  NOT union ~ {{YES}} -> {:?}", names(db, sel.iter()));

    // ---- 3. switch and/or on one layout -----------------------------------
    let two = db.int(2);
    let four = db.int(4);
    let a2 = Atom::new(
        Map::single(im.size),
        CompareOp::SetEq,
        Rhs::constant(ints, [two]),
    );
    let a4 = Atom::new(
        Map::single(im.size),
        CompareOp::SetEq,
        Rhs::constant(ints, [four]),
    );
    let mut layout = Predicate::dnf(vec![Clause::new(vec![a4]), Clause::new(vec![a2])]);
    let dnf = db.evaluate_derived_members(im.music_groups, &layout)?;
    layout.switch_and_or();
    let cnf = db.evaluate_derived_members(im.music_groups, &layout)?;
    println!(
        "\nSame clause layout: DNF selects {}, CNF selects {}",
        dnf.len(),
        cnf.len()
    );
    assert!(cnf.is_empty());

    // ---- 4. A derived attribute with a per-source predicate ---------------
    // bandmates: for each musician x, the musicians sharing a group with x.
    let bandmates =
        db.create_attribute(im.musicians, "bandmates", im.musicians, Multiplicity::Multi)?;
    // e is a bandmate of x iff some group lists both: here expressed with
    // form (c): members⁻¹ is not directly expressible, so we use the
    // existential reading through music_groups — e ∈ members(g) ∧ x ∈
    // members(g). ISIS atoms compare maps from e and x; the weak match on
    // the *inverse* direction is phrased from the groups side in practice,
    // so we approximate as in the paper's in_group: via plays overlap.
    let deriv = AttrDerivation::Predicate(Predicate::dnf(vec![Clause::new(vec![Atom::new(
        Map::single(im.plays),
        CompareOp::Match,
        Rhs::SourceMap(Map::single(im.plays)),
    )])]));
    db.commit_derivation(bandmates, deriv)?;
    let edith_mates = db.attr_value_set(im.edith, bandmates)?;
    println!(
        "\nmusicians sharing an instrument with Edith: {:?}",
        names(db, edith_mates.iter())
    );

    // ---- 5. Queries are saved with the schema ------------------------------
    let saved_pred = isis::sample::quartets_predicate(&mut im);
    let quartets_class = im.db.create_derived_subclass(im.music_groups, "quartets")?;
    im.db.commit_membership(quartets_class, saved_pred)?;
    let dir = std::env::temp_dir().join(format!("isis_qb_{}", std::process::id()));
    let store = StoreDir::open(&dir)?;
    store.save(&im.db, "with_query")?;
    let mut back = store.load("with_query")?;
    let q2 = back.class_by_name("quartets")?;
    // The predicate survived the round-trip and re-evaluates.
    back.refresh_derived_class(q2)?;
    println!(
        "reloaded database still answers the saved query: {:?}",
        names(&back, back.members(q2)?.iter())
    );
    std::fs::remove_dir_all(&dir)?;
    Ok(())
}
